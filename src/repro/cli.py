"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``rates`` — print the rate table (Table 2) and operating modes
  (Table 3).
* ``trace`` — generate a fading link trace and save it as ``.npz``
  (walking mobility or fixed mean SNR).
* ``inspect`` — summarise a saved trace (per-rate delivery, BER).
* ``thresholds`` — print SoftRate's optimal (alpha, beta) thresholds
  for a frame size / recovery model / separation factor.
* ``simulate`` — run a TCP uplink simulation over generated traces
  with a chosen rate adaptation protocol.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.tables import format_table
from repro.phy.rates import MODES, RATE_TABLE

__all__ = ["main"]


def _cmd_rates(_args) -> int:
    rows = [[r.modulation, str(r.code_rate), f"{r.mbps:g} Mbps",
             "Yes" if r.in_prototype else "No"] for r in RATE_TABLE]
    print(format_table(["Modulation", "Code Rate", "802.11 Rate",
                        "Implemented"], rows))
    print()
    rows = [[m.name, f"{m.bandwidth_hz / 1e6:g} MHz", m.n_subcarriers,
             f"{m.symbol_time * 1e6:g} us"] for m in MODES.values()]
    print(format_table(["Mode", "Bandwidth", "Tones", "Symbol time"],
                       rows))
    return 0


def _cmd_trace(args) -> int:
    from repro.channel.mobility import WalkingTrajectory
    from repro.traces.generate import generate_fading_trace

    rng = np.random.default_rng(args.seed)
    if args.walking:
        trajectory = WalkingTrajectory(rng,
                                       start_distance=args.distance)
        mean_snr = trajectory.mean_snr_db
    else:
        mean_snr = lambda t: args.snr    # noqa: E731 - tiny closure
    trace = generate_fading_trace(rng, duration=args.duration,
                                  mean_snr_db=mean_snr,
                                  doppler_hz=args.doppler)
    trace.save(args.output)
    print(f"wrote {args.output}: {trace.n_rates} rates x "
          f"{trace.n_slots} slots ({trace.duration:.1f} s)")
    return 0


def _cmd_inspect(args) -> int:
    from repro.traces.format import LinkTrace

    trace = LinkTrace.load(args.trace)
    print(f"{args.trace}: {trace.n_slots} slots x "
          f"{trace.slot_duration * 1e3:.1f} ms "
          f"({trace.duration:.1f} s), detected "
          f"{trace.detected.mean():.0%}")
    rows = []
    for r in range(trace.n_rates):
        rows.append([trace.rate_names[r],
                     f"{trace.delivered[r].mean():.0%}",
                     f"{np.median(trace.ber_true[r]):.2e}",
                     f"{trace.loss_prob[r].mean():.2f}"])
    print(format_table(["rate", "delivered", "median BER",
                        "mean loss prob"], rows))
    return 0


def _cmd_thresholds(args) -> int:
    from repro.core.thresholds import (FrameLevelArq, PartialBitArq,
                                       compute_thresholds)

    rates = RATE_TABLE.prototype_subset()
    if args.recovery == "arq":
        recovery = FrameLevelArq(args.frame_bits)
    else:
        recovery = PartialBitArq(args.cost_per_error)
    table = compute_thresholds(rates, recovery,
                               separation=args.separation)
    rows = [[rates[i].name, f"{table[i].alpha:.2e}",
             f"{table[i].beta:.2e}"] for i in range(len(rates))]
    print(format_table(["rate", "alpha (move up below)",
                        "beta (move down above)"], rows))
    return 0


def _cmd_simulate(args) -> int:
    from repro.experiments.common import (omniscient_factory,
                                          rraa_factory,
                                          samplerate_factory,
                                          snr_trained_factory,
                                          softrate_factory)
    from repro.sim.topology import run_tcp_uplink
    from repro.traces.workloads import walking_traces

    uplinks = walking_traces(args.clients, seed=args.seed)
    downlinks = walking_traces(args.clients, seed=args.seed + 50)
    factories = {
        "softrate": softrate_factory,
        "samplerate": samplerate_factory,
        "rraa": rraa_factory,
        "snr": snr_trained_factory(uplinks[0]),
        "omniscient": omniscient_factory,
    }
    factory = factories[args.protocol]
    result = run_tcp_uplink(uplinks, downlinks, factory,
                            n_clients=args.clients,
                            duration=args.duration, seed=args.seed)
    print(f"{args.protocol}: {result.aggregate_mbps:.2f} Mbps "
          f"aggregate over {args.duration:g} s "
          f"({args.clients} clients)")
    for flow, mbps in enumerate(result.per_flow_mbps):
        print(f"  flow {flow}: {mbps:.2f} Mbps")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SoftRate (SIGCOMM 2009) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("rates", help="print the rate table")

    p = sub.add_parser("trace", help="generate a fading link trace")
    p.add_argument("output", help="output .npz path")
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--doppler", type=float, default=40.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--walking", action="store_true",
                   help="walking-mobility SNR trajectory")
    p.add_argument("--distance", type=float, default=5.0,
                   help="walking start distance (m)")
    p.add_argument("--snr", type=float, default=15.0,
                   help="mean SNR (dB) when not walking")

    p = sub.add_parser("inspect", help="summarise a saved trace")
    p.add_argument("trace", help=".npz trace path")

    p = sub.add_parser("thresholds",
                       help="print SoftRate's optimal thresholds")
    p.add_argument("--recovery", choices=["arq", "harq"],
                   default="arq")
    p.add_argument("--frame-bits", type=int, default=11232)
    p.add_argument("--cost-per-error", type=float, default=500.0)
    p.add_argument("--separation", type=float, default=10.0)

    p = sub.add_parser("simulate", help="run a TCP uplink simulation")
    p.add_argument("--protocol",
                   choices=["softrate", "samplerate", "rraa", "snr",
                            "omniscient"], default="softrate")
    p.add_argument("--clients", type=int, default=1)
    p.add_argument("--duration", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=1)
    return parser


_HANDLERS = {
    "rates": _cmd_rates,
    "trace": _cmd_trace,
    "inspect": _cmd_inspect,
    "thresholds": _cmd_thresholds,
    "simulate": _cmd_simulate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an
        # error from the user's point of view.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
