"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``rates`` — print the rate table (Table 2) and operating modes
  (Table 3).
* ``trace`` — generate a fading link trace and save it as ``.npz``
  (walking mobility or fixed mean SNR).
* ``inspect`` — summarise a saved trace (per-rate delivery, BER).
* ``thresholds`` — print SoftRate's optimal (alpha, beta) thresholds
  for a frame size / recovery model / separation factor.
* ``simulate`` — run a TCP uplink simulation over generated traces
  with a chosen rate adaptation protocol (``--phy-backend`` selects
  how frame fates are computed).
* ``list`` — enumerate the registered paper experiments.
* ``run`` — run one registered experiment (``--set key=val``
  overrides, ``--jobs N`` parallelism, ``--seeds``/``--replicates``
  fan-out, ``--phy-backend full|surrogate``, cached results,
  JSON/npz output).
* ``sweep`` — run one experiment across a parameter sweep.
* ``campaign`` — thousand-scenario sweeps: ``campaign list`` shows the
  registered matrices, ``campaign run`` executes one (sharded via
  ``--shard I/N``, resumable from checkpoints, supervised via
  ``--timeout``/``--retries``, record backend via ``--store
  jsonl|columnar``; exits 0 complete / 3 partial / 4 quarantined
  failures), ``campaign status`` reports progress, ``campaign
  report`` builds tidy summary tables, ``campaign verify`` audits
  checkpoint integrity (CRC) and the quarantine, ``campaign chaos``
  runs the deterministic fault-injection wall (docs/resilience.md).
  Service mode (docs/service.md): ``campaign serve`` starts the
  long-running submission server, ``campaign submit`` sends a
  campaign to it and (by default) waits, mapping the final state to
  the same 0/3/4 exit contract, and ``campaign results`` fetches the
  summary from the live server or straight off the store.
* ``calibrate`` — regenerate the surrogate PHY backend's calibration
  table from the full bit-exact pipeline.
* ``bench`` — measure PHY and campaign-engine throughput and write
  the committed ``BENCH_phy.json`` / ``BENCH_campaigns.json``
  baselines; ``bench --check`` re-measures with each baseline's
  embedded config and fails on >10% gate-ratio drops (the CI
  regression gate).

See ``docs/`` for the architecture and the figure-by-figure
reproduction guide.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.phy.rates import RATE_TABLE

__all__ = ["main"]

#: Mirrors ``repro.experiments.common.PROTOCOL_NAMES`` (kept literal
#: so building the parser doesn't import the simulation stack; a test
#: asserts the two stay in sync).
_PROTOCOL_CHOICES = ("softrate", "samplerate", "rraa", "snr", "charm",
                     "snr-untrained", "omniscient")


def _parse_value(text: str) -> Any:
    """``--set``/``--values`` literal: python literal, else string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"--set expects KEY=VALUE, got {pair!r}")
        overrides[key] = _parse_value(value)
    return overrides


def _split_top_level(text: str) -> List[str]:
    """Split on commas outside brackets/parens, so one comma-bearing
    literal (``(100,1400)``) stays one piece."""
    pieces, depth, current = [], 0, []
    for char in text:
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == "," and depth == 0:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    pieces.append("".join(current))
    return [p.strip() for p in pieces if p.strip()]


def _parse_values(text: str) -> List[Any]:
    """Sweep values: one per top-level comma, each parsed as a python
    literal when possible (``--values 1,2`` -> two ints; ``--values
    "(100,1400)"`` -> one tuple; ``--values "(1,),(2,)"`` -> two
    tuples; ``--values softrate,rraa`` -> two strings)."""
    return [_parse_value(v) for v in _split_top_level(text)]


def _parse_seeds(args) -> Optional[List[int]]:
    from repro.experiments.api import derive_seeds

    if args.seeds:
        return [int(s) for s in args.seeds.split(",") if s]
    if args.replicates:
        return derive_seeds(args.base_seed, args.replicates)
    return None


def _print_result(result) -> None:
    origin = "cache" if result.cached else \
        f"{result.elapsed_s:.2f} s"
    seeds = "-" if result.seeds == [None] else \
        ",".join(str(s) for s in result.seeds)
    print(f"{result.experiment} [{result.cache_key}] "
          f"seeds={seeds} ({origin})")
    rows = [[key, f"{value:.6g}"]
            for key, value in sorted(result.aggregates.items())]
    if rows:
        print(format_table(["metric", "mean"], rows))


def _cmd_rates(_args) -> int:
    from repro.experiments.tab02_rates import run_tab02

    print(run_tab02().render())
    return 0


def _cmd_trace(args) -> int:
    from repro.channel.mobility import WalkingTrajectory
    from repro.traces.generate import generate_fading_trace

    rng = np.random.default_rng(args.seed)
    if args.walking:
        trajectory = WalkingTrajectory(rng,
                                       start_distance=args.distance)
        mean_snr = trajectory.mean_snr_db
    else:
        mean_snr = lambda t: args.snr    # noqa: E731 - tiny closure
    trace = generate_fading_trace(rng, duration=args.duration,
                                  mean_snr_db=mean_snr,
                                  doppler_hz=args.doppler)
    trace.save(args.output)
    print(f"wrote {args.output}: {trace.n_rates} rates x "
          f"{trace.n_slots} slots ({trace.duration:.1f} s)")
    return 0


def _cmd_inspect(args) -> int:
    from repro.traces.format import LinkTrace

    trace = LinkTrace.load(args.trace)
    print(f"{args.trace}: {trace.n_slots} slots x "
          f"{trace.slot_duration * 1e3:.1f} ms "
          f"({trace.duration:.1f} s), detected "
          f"{trace.detected.mean():.0%}")
    rows = []
    for r in range(trace.n_rates):
        rows.append([trace.rate_names[r],
                     f"{trace.delivered[r].mean():.0%}",
                     f"{np.median(trace.ber_true[r]):.2e}",
                     f"{trace.loss_prob[r].mean():.2f}"])
    print(format_table(["rate", "delivered", "median BER",
                        "mean loss prob"], rows))
    return 0


def _cmd_thresholds(args) -> int:
    from repro.core.thresholds import (FrameLevelArq, PartialBitArq,
                                       compute_thresholds)

    rates = RATE_TABLE.prototype_subset()
    if args.recovery == "arq":
        recovery = FrameLevelArq(args.frame_bits)
    else:
        recovery = PartialBitArq(args.cost_per_error)
    table = compute_thresholds(rates, recovery,
                               separation=args.separation)
    rows = [[rates[i].name, f"{table[i].alpha:.2e}",
             f"{table[i].beta:.2e}"] for i in range(len(rates))]
    print(format_table(["rate", "alpha (move up below)",
                        "beta (move down above)"], rows))
    return 0


def _cmd_simulate(args) -> int:
    from repro.experiments.common import protocol_factory
    from repro.sim.topology import run_mac_contention, run_tcp_uplink
    from repro.traces.workloads import walking_traces

    if args.engine == "slot" and args.workload != "mac":
        raise SystemExit("error: --engine slot requires "
                         "--workload mac (see docs/slotmac.md)")
    uplinks = walking_traces(args.clients, seed=args.seed)
    factory = protocol_factory(args.protocol,
                               training_trace=uplinks[0])
    backend = None if args.phy_backend == "trace" else args.phy_backend
    if args.workload == "mac":
        if args.engine == "slot":
            from repro.sim.slotmac import run_slot_contention
            run_contention = run_slot_contention
        else:
            run_contention = run_mac_contention
        result = run_contention(uplinks, factory,
                                n_clients=args.clients,
                                duration=args.duration,
                                seed=args.seed, phy_backend=backend)
        per_flow = result.per_client_mbps
        label = f"mac/{args.engine}"
    else:
        downlinks = walking_traces(args.clients, seed=args.seed + 50)
        result = run_tcp_uplink(uplinks, downlinks, factory,
                                n_clients=args.clients,
                                duration=args.duration,
                                seed=args.seed, phy_backend=backend)
        per_flow = result.per_flow_mbps
        label = "tcp"
    print(f"{args.protocol} [{label}]: "
          f"{result.aggregate_mbps:.2f} Mbps "
          f"aggregate over {args.duration:g} s "
          f"({args.clients} clients)")
    for flow, mbps in enumerate(per_flow):
        print(f"  flow {flow}: {mbps:.2f} Mbps")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.phy.calibrate import calibrate

    if args.snr_step <= 0:
        raise SystemExit("error: --snr-step must be positive")
    if args.frames_per_point < 1:
        raise SystemExit("error: --frames-per-point must be >= 1")
    grid = None
    if args.snr_min is not None or args.snr_max is not None \
            or args.snr_step != 1.0:
        lo = args.snr_min if args.snr_min is not None else -2.0
        hi = args.snr_max if args.snr_max is not None else 26.0
        grid = np.arange(lo, hi + args.snr_step / 2, args.snr_step)
    table = calibrate(snr_grid_db=grid,
                      frames_per_point=args.frames_per_point,
                      payload_bits=args.payload_bits, seed=args.seed,
                      batch_size=args.batch_size,
                      progress=lambda line: print(line, flush=True))
    table.save(args.output)
    print(f"wrote {args.output}: {table.n_rates} rates x "
          f"{table.snr_grid_db.size} SNR points "
          f"(estimator noise {table.est_noise_decades:.2f} decades)")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import check_benchmarks, write_benchmarks

    if args.tolerance < 0:
        raise SystemExit("error: --tolerance must be >= 0")
    if args.check:
        return check_benchmarks(output_dir=args.output_dir,
                                only=args.only,
                                tolerance=args.tolerance)
    write_benchmarks(output_dir=args.output_dir, only=args.only)
    return 0


def _cmd_list(_args) -> int:
    from repro.experiments.api import list_experiments

    rows = []
    for spec in list_experiments():
        rows.append([spec.name, spec.description,
                     ",".join(sorted(spec.params)) or "-",
                     ",".join(spec.algorithms) or "-"])
    print(format_table(["experiment", "description", "parameters",
                        "algorithms"], rows))
    print(f"\n{len(rows)} experiments registered")
    return 0


def _invoke_runner(args, call):
    """Build a Runner from CLI args and run ``call(runner)``, mapping
    registry errors to the (exit-2, message-on-stderr) contract.

    Returns ``(outcome, None)`` on success or ``(None, exit_code)``.
    """
    from repro.experiments.api import (Runner, UnknownExperimentError,
                                       UnknownParameterError)

    try:
        runner = Runner(jobs=args.jobs, cache_dir=args.cache_dir,
                        use_cache=not args.no_cache,
                        batch_size=args.batch_size,
                        phy_backend=args.phy_backend)
        return call(runner), None
    except UnknownExperimentError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return None, 2
    except (ValueError, UnknownParameterError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, 2


def _cmd_run(args) -> int:
    result, code = _invoke_runner(
        args, lambda runner: runner.run(
            args.experiment, _parse_overrides(args.overrides),
            seeds=_parse_seeds(args)))
    if result is None:
        return code
    _print_result(result)
    if args.output:
        result.save(args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_sweep(args) -> int:
    results, code = _invoke_runner(
        args, lambda runner: runner.sweep(
            args.experiment, args.param, _parse_values(args.values),
            _parse_overrides(args.overrides),
            seeds=_parse_seeds(args)))
    if results is None:
        return code
    metrics = sorted({k for r in results for k in r.aggregates})
    rows = [[f"{args.param}={r.params[args.param]!r}"]
            + [f"{r.aggregates.get(m, float('nan')):.6g}"
               for m in metrics] for r in results]
    print(format_table([args.param] + metrics, rows))
    if args.output:
        import json
        with open(args.output, "w") as fh:
            json.dump([r.to_dict() for r in results], fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0


def _campaign_matrix(args):
    """Resolve the campaign name, mapping unknowns to exit code 2."""
    from repro.campaigns import get_campaign
    from repro.campaigns.stock import UnknownCampaignError

    try:
        return get_campaign(args.campaign), None
    except UnknownCampaignError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return None, 2


def _cmd_campaign_list(_args) -> int:
    from repro.campaigns import list_campaigns

    rows = [[m.name, m.experiment, str(m.total_scenarios()),
             m.digest(), m.description]
            for m in list_campaigns()]
    print(format_table(["campaign", "experiment", "scenarios",
                        "digest", "description"], rows))
    print(f"\n{len(rows)} campaigns registered")
    return 0


def _cmd_campaign_run(args) -> int:
    from repro.campaigns import CampaignRunner
    from repro.campaigns.runner import parse_shard

    matrix, code = _campaign_matrix(args)
    if matrix is None:
        return code
    try:
        shard = parse_shard(args.shard)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    runner = CampaignRunner(
        jobs=args.jobs, cache_dir=args.cache_dir, shard=shard,
        timeout_s=args.timeout, max_retries=args.retries,
        store=args.store,
        progress=lambda line: print(line, flush=True))
    status = runner.run(matrix, limit=args.limit)
    print(f"{status.name}: {status.completed}/{status.total} "
          f"scenarios checkpointed in {status.directory}")
    # Exit-code contract: 0 = every scenario checkpointed, 3 =
    # scenarios remain pending (sharded/limited/interrupted run),
    # 4 = pending scenarios are quarantined (see `campaign verify`).
    if status.done:
        return 0
    if status.failed:
        print(f"error: {status.quarantined} scenario(s) quarantined "
              f"after repeated failures — see "
              f"{status.directory}/quarantine.jsonl",
              file=sys.stderr)
        return 4
    return 3


def _cmd_campaign_verify(args) -> int:
    from repro.campaigns import CampaignRunner, CampaignStore

    matrix, code = _campaign_matrix(args)
    if matrix is None:
        return code
    store = CampaignStore(matrix, cache_dir=args.cache_dir)
    records, issues = store.scan()
    current = {s.scenario_id for s in matrix.expand()}
    valid = len(set(records) & current)
    stale = len(set(records) - current)
    torn = sum(1 for i in issues if i.kind == "torn")
    corrupt = [i for i in issues if i.kind != "torn"]
    print(f"{matrix.name} [{matrix.digest()}]: "
          f"{valid}/{matrix.total_scenarios()} valid records"
          + (f", {stale} stale" if stale else "")
          + (f", {torn} torn tail(s)" if torn else "")
          + (f", {len(corrupt)} corrupt line(s)" if corrupt else ""))
    for issue in corrupt:
        import os as _os
        print(f"  corrupt: {_os.path.basename(issue.path)}:"
              f"{issue.line_no} [{issue.kind}] {issue.detail}")
    quarantine = CampaignRunner(cache_dir=args.cache_dir) \
        ._status(matrix, store)
    entries = store.load_quarantine()
    if entries:
        done = set(records) & current
        print(f"quarantine: {quarantine.quarantined} active entry(s)")
        for entry in entries:
            state = "recovered" if entry["scenario_id"] in done \
                else "active"
            print(f"  #{entry['index']} ({entry['scenario_id']}) "
                  f"[{state}] {entry.get('kind', '?')}: "
                  f"{entry.get('error', '')}")
    if corrupt or quarantine.quarantined:
        return 1
    return 0


def _cmd_campaign_chaos(args) -> int:
    from repro.campaigns import chaos_wall
    from repro.campaigns.faults import FAULT_KINDS

    matrix, code = _campaign_matrix(args)
    if matrix is None:
        return code
    kinds = [k for k in (args.faults or "").split(",") if k] or None
    if kinds:
        unknown = sorted(set(kinds) - set(FAULT_KINDS))
        if unknown:
            print(f"error: unknown fault kind(s) {unknown}; known: "
                  f"{sorted(FAULT_KINDS)}", file=sys.stderr)
            return 2
    outcome = chaos_wall(
        matrix, kinds=kinds, seed=args.seed, jobs=args.jobs,
        timeout_s=args.timeout, max_retries=args.retries,
        cache_root=args.cache_root,
        emit=lambda line: print(line, flush=True))
    for result in outcome["results"]:
        verdict = "PASS" if result["passed"] else "FAIL"
        quarantined = result["quarantined_during_fault"]
        print(f"{result['kind']:>15}: {verdict}  "
              f"(quarantined during fault: "
              f"{quarantined if quarantined else 'none'})")
    if outcome["passed"]:
        print(f"{matrix.name}: chaos wall PASSED — every fault class "
              f"resumed to the fault-free summary bytes")
        return 0
    print(f"error: chaos wall FAILED for {matrix.name}",
          file=sys.stderr)
    return 1


def _cmd_campaign_status(args) -> int:
    from repro.campaigns import CampaignRunner

    matrix, code = _campaign_matrix(args)
    if matrix is None:
        return code
    status = CampaignRunner(cache_dir=args.cache_dir).status(matrix)
    if not status.started:
        # A never-run campaign is a clean answer, not a pile of
        # missing-checkpoint caveats — and asking must not create
        # the directory it reports on.
        print(f"{status.name} [{status.digest}]: not started "
              f"(0/{status.total} complete; `campaign run` or "
              f"`campaign submit` to begin)")
        return 0
    state = "done" if status.done else \
        f"{status.pending} pending"
    if status.quarantined:
        state += f", {status.quarantined} quarantined"
    print(f"{status.name} [{status.digest}]: "
          f"{status.completed}/{status.total} complete ({state})")
    print(f"checkpoints: {status.directory}")
    return 0


def _cmd_campaign_report(args) -> int:
    from repro.campaigns import CampaignRunner

    matrix, code = _campaign_matrix(args)
    if matrix is None:
        return code
    group_by = [g for g in (args.group_by or "").split(",") if g]
    runner = CampaignRunner(cache_dir=args.cache_dir)
    try:
        summary = runner.report(matrix, group_by=group_by or None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{summary['campaign']}: {summary['completed']}/"
          f"{summary['total_scenarios']} scenarios summarized")
    metrics = summary["metrics"]
    if group_by and summary.get("groups"):
        headers = group_by + ["n"] + metrics
        rows = [[str(g.get(k)) for k in group_by] + [str(g["n"])]
                + [_format_cell(g.get(m)) for m in metrics]
                for g in summary["groups"]]
        print(format_table(headers, rows))
    elif summary["aggregates"]:
        rows = [[key, _format_cell(summary["aggregates"][key])]
                for key in metrics]
        print(format_table(["metric", "mean"], rows))
    if args.output:
        from repro.campaigns.checkpoint import write_json_atomic
        write_json_atomic(args.output, summary)
        print(f"wrote {args.output}")
    return 0


def _cmd_campaign_serve(args) -> int:
    from repro.campaigns.service import CampaignService

    try:
        service = CampaignService(
            cache_dir=args.cache_dir, host=args.host, port=args.port,
            jobs=args.jobs, timeout_s=args.timeout,
            max_retries=args.retries, store=args.store,
            chunk_records=args.chunk_records, once=args.once,
            emit=lambda line: print(line, flush=True))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        service.serve()
    except KeyboardInterrupt:
        print("interrupted; submissions resume on the next serve",
              flush=True)
    return 0


def _submission_options(args) -> Dict[str, Any]:
    """Per-submission runner overrides from the submit flags."""
    options: Dict[str, Any] = {}
    if args.jobs is not None:
        options["jobs"] = args.jobs
    if args.timeout is not None:
        options["timeout_s"] = args.timeout
    if args.retries is not None:
        options["max_retries"] = args.retries
    if args.store is not None:
        options["store"] = args.store
    if args.limit is not None:
        options["limit"] = args.limit
    if args.fault is not None:
        options["fault"] = args.fault
        options["fault_seed"] = args.fault_seed
        if args.hang is not None:
            options["hang_s"] = args.hang
    return options


def _cmd_campaign_submit(args) -> int:
    from repro.campaigns.service import (ServiceError,
                                         ServiceUnavailable, request,
                                         state_exit_code,
                                         wait_for_submission)

    try:
        response = request(args.cache_dir, {
            "op": "submit", "campaign": args.campaign,
            "options": _submission_options(args)})
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not response.get("ok"):
        print(f"error: {response.get('error', 'submit failed')}",
              file=sys.stderr)
        return 2 if response.get("unknown_campaign") else 1
    sub_id = response["id"]
    print(f"{sub_id}: {args.campaign} queued")
    if args.no_wait:
        return 0
    try:
        final = wait_for_submission(
            args.cache_dir, sub_id, poll_s=args.poll,
            emit=lambda line: print(line, flush=True))
    except ServiceUnavailable:
        # The server exited between polls (e.g. `serve --once`
        # draining the queue).  The store outlives the server, so
        # answer from it rather than failing a finished run.
        print(f"{sub_id}: server exited; reading local results")
        return _local_results(args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    state = final.get("state", "error")
    print(f"{sub_id}: {state} ({final.get('completed', 0)}/"
          f"{final.get('total', 0)} scenarios)")
    if state == "error" and final.get("error"):
        print(f"error: {final['error']}", file=sys.stderr)
    if state == "quarantined":
        print(f"error: {final.get('quarantined', 0)} scenario(s) "
              f"quarantined — see `campaign verify "
              f"{args.campaign}`", file=sys.stderr)
    # Same contract as `campaign run`: 0 complete / 3 partial /
    # 4 quarantined (submission harness errors exit 1).
    return state_exit_code(state)


def _cmd_campaign_results(args) -> int:
    from repro.campaigns.service import (ServiceError,
                                         ServiceUnavailable, request)

    try:
        response = request(args.cache_dir, {
            "op": "results", "campaign": args.campaign})
    except ServiceUnavailable:
        # No live server: answer straight off the shared store —
        # the record formats are the same either way.
        return _local_results(args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not response.get("ok"):
        print(f"error: {response.get('error', 'results failed')}",
              file=sys.stderr)
        return 2 if response.get("unknown_campaign") else 1
    return _print_results(args.campaign, response)


def _local_results(args) -> int:
    from repro.campaigns import CampaignRunner

    matrix, code = _campaign_matrix(args)
    if matrix is None:
        return code
    runner = CampaignRunner(cache_dir=args.cache_dir)
    status = runner.status(matrix)
    if not status.started:
        return _print_results(args.campaign, {
            "state": "not-started", "completed": 0,
            "total": status.total})
    summary = runner.report(matrix)
    state = "complete" if status.done else \
        ("quarantined" if status.failed else "partial")
    return _print_results(args.campaign, {
        "state": state, "completed": status.completed,
        "total": status.total, "quarantined": status.quarantined,
        "summary": summary})


def _print_results(campaign: str, response: Dict[str, Any]) -> int:
    """Render a results payload; exit code mirrors ``campaign run``
    (not-started counts as partial — nothing is complete yet)."""
    from repro.campaigns.service import state_exit_code

    state = response.get("state", "error")
    print(f"{campaign}: {response.get('completed', 0)}/"
          f"{response.get('total', 0)} scenarios ({state})")
    summary = response.get("summary")
    if summary and summary.get("aggregates"):
        rows = [[key, _format_cell(summary["aggregates"][key])]
                for key in summary["metrics"]]
        print(format_table(["metric", "mean"], rows))
    if state == "not-started":
        return 3
    return state_exit_code(state)


def _format_cell(value) -> str:
    """One summary-table cell: floats compact, None as ``nan``."""
    if value is None:
        return "nan"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _add_runner_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--set", action="append", dest="overrides",
                   default=[], metavar="KEY=VALUE",
                   help="override a declared experiment parameter")
    p.add_argument("--seeds", help="comma-separated replicate seeds")
    p.add_argument("--replicates", type=int,
                   help="derive N deterministic replicate seeds")
    p.add_argument("--base-seed", type=int, default=0,
                   help="base for --replicates seed derivation")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the replicate/sweep fan")
    p.add_argument("--batch-size", type=int, default=None,
                   help="frames decoded per batched-PHY call, for "
                        "experiments that declare the knob (results "
                        "are identical at any value; higher = faster, "
                        "more memory)")
    p.add_argument("--phy-backend", default=None,
                   help="PHY backend (full|surrogate) for experiments "
                        "that declare the knob; the surrogate is "
                        "calibrated, not bit-exact, so it changes "
                        "results and is part of the cache key")
    p.add_argument("--output", help="write result (.json or .npz)")
    p.add_argument("--cache-dir", default=".repro-cache")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the result cache")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SoftRate (SIGCOMM 2009) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("rates", help="print the rate table")

    p = sub.add_parser("trace", help="generate a fading link trace")
    p.add_argument("output", help="output .npz path")
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--doppler", type=float, default=40.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--walking", action="store_true",
                   help="walking-mobility SNR trajectory")
    p.add_argument("--distance", type=float, default=5.0,
                   help="walking start distance (m)")
    p.add_argument("--snr", type=float, default=15.0,
                   help="mean SNR (dB) when not walking")

    p = sub.add_parser("inspect", help="summarise a saved trace")
    p.add_argument("trace", help=".npz trace path")

    p = sub.add_parser("thresholds",
                       help="print SoftRate's optimal thresholds")
    p.add_argument("--recovery", choices=["arq", "harq"],
                   default="arq")
    p.add_argument("--frame-bits", type=int, default=11232)
    p.add_argument("--cost-per-error", type=float, default=500.0)
    p.add_argument("--separation", type=float, default=10.0)

    p = sub.add_parser("simulate", help="run a TCP uplink simulation")
    p.add_argument("--workload", choices=["tcp", "mac"],
                   default="tcp",
                   help="TCP uplink (default) or saturated MAC flood")
    p.add_argument("--engine", choices=["event", "slot"],
                   default="event",
                   help="MAC engine for --workload mac: the "
                        "event-driven oracle or the slot-synchronous "
                        "large-cell engine")
    p.add_argument("--protocol", choices=list(_PROTOCOL_CHOICES),
                   default="softrate")
    p.add_argument("--clients", type=int, default=1)
    p.add_argument("--duration", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--phy-backend",
                   choices=["trace", "full", "surrogate"],
                   default="trace",
                   help="frame-fate source: precomputed trace columns "
                        "(default), the bit-exact PHY, or the "
                        "calibrated surrogate")

    p = sub.add_parser(
        "calibrate",
        help="measure the surrogate PHY backend's tables from the "
             "full bit-exact pipeline")
    p.add_argument("--output",
                   default="src/repro/phy/calibration/default.json",
                   help="where to write the calibration JSON")
    p.add_argument("--frames-per-point", type=int, default=24,
                   help="Monte Carlo frames per (rate, SNR) point")
    p.add_argument("--payload-bits", type=int, default=1600)
    p.add_argument("--seed", type=int, default=2009)
    p.add_argument("--batch-size", type=int, default=16)
    p.add_argument("--snr-min", type=float, default=None,
                   help="grid start in dB (default -2)")
    p.add_argument("--snr-max", type=float, default=None,
                   help="grid end in dB (default 26)")
    p.add_argument("--snr-step", type=float, default=1.0)

    p = sub.add_parser(
        "bench",
        help="measure throughput baselines (BENCH_*.json) or check "
             "them for regressions")
    p.add_argument("--check", action="store_true",
                   help="re-measure with each committed baseline's "
                        "embedded config and fail on gate-metric "
                        "drops instead of rewriting the files")
    p.add_argument("--only", choices=["phy", "campaigns"],
                   default=None, help="restrict to one suite")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="allowed one-sided gate-metric drop "
                        "(default 0.10 = 10%%)")
    p.add_argument("--output-dir", default=".",
                   help="where the BENCH_*.json files live "
                        "(default: current directory)")

    sub.add_parser("list", help="enumerate registered experiments")

    p = sub.add_parser("run", help="run a registered experiment")
    p.add_argument("experiment", help="experiment name (see `list`)")
    _add_runner_options(p)

    p = sub.add_parser("sweep",
                       help="run an experiment across a parameter sweep")
    p.add_argument("experiment", help="experiment name (see `list`)")
    p.add_argument("--param", required=True,
                   help="name of the parameter to sweep")
    p.add_argument("--values", required=True,
                   help="comma-separated sweep values")
    _add_runner_options(p)

    p = sub.add_parser(
        "campaign",
        help="thousand-scenario sweeps with resumable checkpoints")
    csub = p.add_subparsers(dest="campaign_command", required=True)
    csub.add_parser("list", help="enumerate registered campaigns")
    for verb, text in (("run", "run a campaign (resumes from "
                               "checkpoints; exits 0 complete, 3 "
                               "partial, 4 quarantined failures)"),
                       ("status", "report a campaign's progress"),
                       ("report", "build the tidy summary tables"),
                       ("verify", "audit checkpoint integrity and "
                                  "the quarantine (exits 1 on "
                                  "corruption or active quarantine)"),
                       ("chaos", "prove fault recovery: inject each "
                                 "fault class, resume, and compare "
                                 "summaries byte-for-byte")):
        cp = csub.add_parser(verb, help=text)
        cp.add_argument("campaign",
                        help="campaign name (see `campaign list`)")
        if verb != "chaos":
            cp.add_argument("--cache-dir", default=".repro-cache")
        if verb == "run":
            cp.add_argument("--jobs", type=int, default=1,
                            help="worker processes")
            cp.add_argument("--shard", default="0/1", metavar="I/N",
                            help="run only scenarios with index %% N "
                                 "== I (0-based); N invocations "
                                 "cover the matrix")
            cp.add_argument("--limit", type=int, default=None,
                            help="run at most K pending scenarios")
            cp.add_argument("--timeout", type=float, default=None,
                            help="per-scenario wall-clock deadline "
                                 "(seconds); enables the supervised "
                                 "pool even at --jobs 1")
            cp.add_argument("--retries", type=int, default=2,
                            help="failed-scenario retries before "
                                 "quarantine (default 2)")
            cp.add_argument("--store",
                            choices=["jsonl", "columnar"],
                            default="jsonl",
                            help="record backend: one JSONL line "
                                 "per scenario (default) or sealed "
                                 "npz column chunks behind a WAL "
                                 "tail (docs/service.md); reads "
                                 "union both, so this only shapes "
                                 "the write path")
        if verb == "report":
            cp.add_argument("--group-by", default=None,
                            help="comma-separated varied parameters "
                                 "to group means over")
            cp.add_argument("--output",
                            help="also write the summary JSON here")
        if verb == "chaos":
            cp.add_argument("--faults", default=None,
                            help="comma-separated fault kinds "
                                 "(default: all of raise,slow,hang,"
                                 "crash,corrupt-record,"
                                 "truncate-file)")
            cp.add_argument("--jobs", type=int, default=2,
                            help="worker processes per run")
            cp.add_argument("--timeout", type=float, default=10.0,
                            help="per-scenario watchdog deadline "
                                 "(seconds) for the faulted runs")
            cp.add_argument("--retries", type=int, default=2,
                            help="retries before quarantine")
            cp.add_argument("--seed", type=int, default=0,
                            help="fault-plan seed (which scenarios "
                                 "get hit)")
            cp.add_argument("--cache-root", default=None,
                            help="parent dir for the wall's "
                                 "temporary cache dirs")

    cp = csub.add_parser(
        "serve",
        help="start the long-running submission server "
             "(docs/service.md); submissions resume across "
             "restarts from the durable queue + checkpoints")
    cp.add_argument("--cache-dir", default=".repro-cache")
    cp.add_argument("--host", default="127.0.0.1",
                    help="bind address (local service — keep it on "
                         "a loopback or trusted interface)")
    cp.add_argument("--port", type=int, default=0,
                    help="bind port (0 = ephemeral; the bound port "
                         "is advertised in the endpoint file)")
    cp.add_argument("--jobs", type=int, default=1,
                    help="default worker processes per submission")
    cp.add_argument("--timeout", type=float, default=None,
                    help="default per-scenario deadline (seconds)")
    cp.add_argument("--retries", type=int, default=2,
                    help="default retries before quarantine")
    cp.add_argument("--store", choices=["jsonl", "columnar"],
                    default="columnar",
                    help="default record backend for served "
                         "campaigns (columnar)")
    cp.add_argument("--chunk-records", type=int, default=None,
                    help="rows per sealed column chunk")
    cp.add_argument("--once", action="store_true",
                    help="exit after the first submission reaches "
                         "a terminal state (CI smoke mode)")

    cp = csub.add_parser(
        "submit",
        help="submit a campaign to the running server and wait "
             "(exits 0 complete, 3 partial, 4 quarantined, "
             "1 no server)")
    cp.add_argument("campaign",
                    help="campaign name (see `campaign list`)")
    cp.add_argument("--cache-dir", default=".repro-cache")
    cp.add_argument("--no-wait", action="store_true",
                    help="return after acceptance instead of "
                         "polling to a terminal state")
    cp.add_argument("--poll", type=float, default=0.2,
                    help="status poll interval while waiting "
                         "(seconds)")
    cp.add_argument("--jobs", type=int, default=None,
                    help="override the server's worker processes")
    cp.add_argument("--timeout", type=float, default=None,
                    help="override the per-scenario deadline")
    cp.add_argument("--retries", type=int, default=None,
                    help="override retries before quarantine")
    cp.add_argument("--store", choices=["jsonl", "columnar"],
                    default=None,
                    help="override the record backend")
    cp.add_argument("--limit", type=int, default=None,
                    help="run at most K pending scenarios")
    cp.add_argument("--fault", default=None,
                    help="inject a seeded fault kind into the "
                         "served run (chaos testing; see "
                         "`campaign chaos --help`)")
    cp.add_argument("--fault-seed", type=int, default=0,
                    help="fault-plan seed for --fault")
    cp.add_argument("--hang", type=float, default=None,
                    help="hang-fault sleep seconds for --fault")

    cp = csub.add_parser(
        "results",
        help="fetch a campaign's summary from the live server, or "
             "straight off the store when none is running")
    cp.add_argument("campaign",
                    help="campaign name (see `campaign list`)")
    cp.add_argument("--cache-dir", default=".repro-cache")
    return parser


_HANDLERS = {
    "rates": _cmd_rates,
    "trace": _cmd_trace,
    "inspect": _cmd_inspect,
    "thresholds": _cmd_thresholds,
    "simulate": _cmd_simulate,
    "calibrate": _cmd_calibrate,
    "bench": _cmd_bench,
    "list": _cmd_list,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
}

_CAMPAIGN_HANDLERS = {
    "list": _cmd_campaign_list,
    "run": _cmd_campaign_run,
    "status": _cmd_campaign_status,
    "report": _cmd_campaign_report,
    "verify": _cmd_campaign_verify,
    "chaos": _cmd_campaign_chaos,
    "serve": _cmd_campaign_serve,
    "submit": _cmd_campaign_submit,
    "results": _cmd_campaign_results,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "campaign":
            return _CAMPAIGN_HANDLERS[args.campaign_command](args)
        return _HANDLERS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an
        # error from the user's point of view.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
