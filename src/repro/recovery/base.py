"""Shared types for the error-recovery protocols."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecoveryOutcome"]


@dataclass(frozen=True)
class RecoveryOutcome:
    """Result of delivering one payload through a recovery protocol.

    Attributes:
        delivered: the payload was reconstructed and CRC-verified.
        rounds: transmissions used (1 = first try succeeded).
        airtime: total seconds of channel time spent, including the
            per-round preamble/header overhead.
        payload_bits: size of the delivered payload.
        feedback_bits: bits of feedback the receiver actually sent.
            ARQ and IR charge one ACK/NACK bit per round.  PPR charges
            each retransmission request at its real size — the full
            chunk bitmap when chunks crossed the suspicion threshold,
            or one ``ceil(log2(n_chunks))``-bit chunk index on the
            least-confident-chunk fallback — plus a 1-bit ACK only
            when the spliced body verifies (a failed final round is
            signalled by ACK timeout and costs nothing).
    """

    delivered: bool
    rounds: int
    airtime: float
    payload_bits: int
    feedback_bits: int

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits per second of airtime."""
        if not self.delivered or self.airtime <= 0:
            return 0.0
        return self.payload_bits / self.airtime
