"""PPR-style partial packet recovery driven by SoftPHY hints.

Partial Packet Recovery (Jamieson & Balakrishnan, SIGCOMM 2007 — the
paper's reference [12] and the original SoftPHY application) observes
that most corrupted frames are mostly correct: instead of echoing or
retransmitting the whole frame, the receiver uses the per-bit
confidences to tell the sender *which chunks look wrong*, and only
those chunks are retransmitted.

Implementation over our PHY: the frame body (payload + CRC-32) is
divided into fixed-size chunks; after a failed CRC the receiver flags
every chunk whose mean per-bit error probability exceeds a threshold
(falling back to its single least-confident chunk), the sender resends
just those chunks as a smaller frame, and the receiver splices in
whichever copy of each chunk carries higher confidence and re-checks
the CRC — a genuine receiver-side check, since the CRC field is part
of the spliced body.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.core.hints import error_probabilities
from repro.phy.bits import append_crc32, check_crc32
from repro.phy.transceiver import Transceiver
from repro.recovery.base import RecoveryOutcome

__all__ = ["PprProtocol"]


class PprProtocol:
    """Chunk-level retransmission using SoftPHY confidence.

    Args:
        phy: the transceiver.
        channel: callable ``(tx_symbols, round_index) -> (rx_symbols,
            gains)`` applying one independent channel realisation.
        chunk_bits: chunk granularity (PPR trades feedback size
            against retransmission precision); must be a multiple of 8.
        bad_chunk_ber: mean per-bit error probability above which a
            chunk is requested again.
        max_rounds: total transmissions allowed.
    """

    name = "PPR"

    def __init__(self, phy: Transceiver, channel: Callable,
                 chunk_bits: int = 64, bad_chunk_ber: float = 1e-3,
                 max_rounds: int = 8):
        if chunk_bits < 8 or chunk_bits % 8 != 0:
            raise ValueError("chunk size must be a multiple of 8 bits")
        if max_rounds < 1:
            raise ValueError("need at least one round")
        self.phy = phy
        self.channel = channel
        self.chunk_bits = chunk_bits
        self.bad_chunk_ber = bad_chunk_ber
        self.max_rounds = max_rounds

    def _chunk_slices(self, n_body_bits: int) -> List[slice]:
        """Chunk boundaries over the body (last chunk may be short)."""
        out = []
        for start in range(0, n_body_bits, self.chunk_bits):
            out.append(slice(start, min(start + self.chunk_bits,
                                        n_body_bits)))
        return out

    def _suspect_chunks(self, p: np.ndarray,
                        slices: List[slice]) -> List[int]:
        """Chunk indices to request, most suspicious first."""
        chunk_ber = np.array([p[s].mean() for s in slices])
        flagged = [int(i) for i in np.argsort(chunk_ber)[::-1]
                   if chunk_ber[i] >= self.bad_chunk_ber]
        if not flagged:
            # CRC failed but nothing crossed the threshold: request
            # the single least-confident chunk (PPR's fallback).
            flagged = [int(np.argmax(chunk_ber))]
        return flagged

    def deliver(self, payload_bits: np.ndarray,
                rate_index: int) -> RecoveryOutcome:
        """Deliver one payload; see :class:`RecoveryOutcome`."""
        payload_bits = np.asarray(payload_bits, dtype=np.uint8)
        body = append_crc32(payload_bits)       # sender-side body
        slices = self._chunk_slices(body.size)
        symbol_time = self.phy.mode.symbol_time
        airtime = 0.0
        feedback_bits = 0

        tx = self.phy.transmit(payload_bits, rate_index=rate_index)
        airtime += tx.layout.airtime(symbol_time)
        rx_symbols, gains = self.channel(tx.symbols, 0)
        rx = self.phy.receive(rx_symbols, gains, tx.layout)
        feedback_bits += 1
        estimate = rx.body_bits.copy()
        confidences = error_probabilities(rx.hints).copy()
        if rx.crc_ok:
            return RecoveryOutcome(
                delivered=bool(np.array_equal(estimate, body)),
                rounds=1, airtime=airtime,
                payload_bits=payload_bits.size,
                feedback_bits=feedback_bits)

        for round_index in range(1, self.max_rounds):
            suspects = self._suspect_chunks(confidences, slices)
            feedback_bits += len(slices)        # the request bitmap
            chunk_payload = np.concatenate(
                [body[slices[c]] for c in suspects])
            # Byte-align the retransmission frame.
            pad = (-chunk_payload.size) % 8
            if pad:
                chunk_payload = np.concatenate(
                    [chunk_payload, np.zeros(pad, dtype=np.uint8)])
            tx_chunk = self.phy.transmit(chunk_payload,
                                         rate_index=rate_index)
            airtime += tx_chunk.layout.airtime(symbol_time)
            rx_symbols, gains = self.channel(tx_chunk.symbols,
                                             round_index)
            rx_chunk = self.phy.receive(rx_symbols, gains,
                                        tx_chunk.layout)
            feedback_bits += 1
            new_bits = rx_chunk.payload_bits
            new_p = error_probabilities(
                rx_chunk.hints[: new_bits.size])
            cursor = 0
            for chunk in suspects:
                dst = slices[chunk]
                width = dst.stop - dst.start
                src = slice(cursor, cursor + width)
                cursor += width
                # Keep whichever copy is more confident.
                if new_p[src].mean() <= confidences[dst].mean():
                    estimate[dst] = new_bits[src]
                    confidences[dst] = new_p[src]
            if check_crc32(estimate):
                return RecoveryOutcome(
                    delivered=bool(np.array_equal(estimate, body)),
                    rounds=round_index + 1, airtime=airtime,
                    payload_bits=payload_bits.size,
                    feedback_bits=feedback_bits)
        return RecoveryOutcome(False, self.max_rounds, airtime,
                               payload_bits.size, feedback_bits)
