"""PPR-style partial packet recovery driven by SoftPHY hints.

Partial Packet Recovery (Jamieson & Balakrishnan, SIGCOMM 2007 — the
paper's reference [12] and the original SoftPHY application) observes
that most corrupted frames are mostly correct: instead of echoing or
retransmitting the whole frame, the receiver uses the per-bit
confidences to tell the sender *which chunks look wrong*, and only
those chunks are retransmitted.

Implementation over our PHY: the frame body (payload + CRC-32) is
divided into fixed-size chunks; after a failed CRC the receiver flags
every chunk whose mean per-bit error probability exceeds a threshold
(falling back to its single least-confident chunk), the sender resends
just those chunks as a smaller frame, and the receiver splices in
whichever copy of each chunk carries higher confidence and re-checks
the CRC — a genuine receiver-side check, since the CRC field is part
of the spliced body.

The delivered :class:`PprOutcome` additionally carries the receiver's
final *salvage state* — the spliced body estimate and its per-bit
error probabilities — so chunk-consuming upper layers (the rateless
video decoder in :mod:`repro.recovery.rateless`) can weigh individual
chunks by confidence even when the frame as a whole never verified.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.hints import error_probabilities
from repro.phy.bits import append_crc32, check_crc32
from repro.phy.transceiver import Transceiver
from repro.recovery.base import RecoveryOutcome

__all__ = ["PprProtocol", "PprOutcome", "chunk_slices"]


def chunk_slices(n_body_bits: int, chunk_bits: int) -> List[slice]:
    """Chunk boundaries over a frame body (last chunk may be short).

    Shared between :class:`PprProtocol` and the chunk-consuming
    layers above it (:mod:`repro.recovery.rateless`), so both sides
    agree bit-for-bit on where chunk ``i`` lives.
    """
    out = []
    for start in range(0, n_body_bits, chunk_bits):
        out.append(slice(start, min(start + chunk_bits, n_body_bits)))
    return out


@dataclass(frozen=True)
class PprOutcome(RecoveryOutcome):
    """A :class:`~repro.recovery.base.RecoveryOutcome` plus the
    receiver's final salvage state.

    Attributes:
        estimate: the spliced body bits (payload + CRC-32) the
            receiver ended up with — its best reconstruction even
            when ``delivered`` is False.
        confidences: per-bit error probabilities of ``estimate``
            (chunk splices carry the winning copy's confidences), so
            consumers can weigh any chunk of the estimate by how
            likely it is to be correct.
    """

    estimate: Optional[np.ndarray] = field(default=None, repr=False,
                                           compare=False)
    confidences: Optional[np.ndarray] = field(default=None, repr=False,
                                              compare=False)


class PprProtocol:
    """Chunk-level retransmission using SoftPHY confidence.

    Args:
        phy: the transceiver.
        channel: callable ``(tx_symbols, round_index) -> (rx_symbols,
            gains)`` applying one independent channel realisation.
        chunk_bits: chunk granularity (PPR trades feedback size
            against retransmission precision); must be a multiple of 8.
        bad_chunk_ber: mean per-bit error probability above which a
            chunk is requested again.
        max_rounds: total transmissions allowed.
    """

    name = "PPR"

    def __init__(self, phy: Transceiver, channel: Callable,
                 chunk_bits: int = 64, bad_chunk_ber: float = 1e-3,
                 max_rounds: int = 8):
        if chunk_bits < 8 or chunk_bits % 8 != 0:
            raise ValueError("chunk size must be a multiple of 8 bits")
        if max_rounds < 1:
            raise ValueError("need at least one round")
        self.phy = phy
        self.channel = channel
        self.chunk_bits = chunk_bits
        self.bad_chunk_ber = bad_chunk_ber
        self.max_rounds = max_rounds

    def _chunk_slices(self, n_body_bits: int) -> List[slice]:
        """Chunk boundaries over the body (last chunk may be short)."""
        return chunk_slices(n_body_bits, self.chunk_bits)

    def _suspect_chunks(self, p: np.ndarray, slices: List[slice]
                        ) -> Tuple[List[int], bool]:
        """Chunk indices to request (most suspicious first) and
        whether the single-chunk fallback produced them."""
        chunk_ber = np.array([p[s].mean() for s in slices])
        flagged = [int(i) for i in np.argsort(chunk_ber)[::-1]
                   if chunk_ber[i] >= self.bad_chunk_ber]
        if not flagged:
            # CRC failed but nothing crossed the threshold: request
            # the single least-confident chunk (PPR's fallback).
            return [int(np.argmax(chunk_ber))], True
        return flagged, False

    def _request_bits(self, n_chunks: int, used_fallback: bool) -> int:
        """Feedback cost of one chunk request.

        Threshold-flagged requests send the full chunk bitmap
        (``n_chunks`` bits); the single-chunk fallback names one chunk
        index, which costs only ``ceil(log2(n_chunks))`` bits.
        """
        if used_fallback:
            return max(1, math.ceil(math.log2(max(n_chunks, 2))))
        return n_chunks

    def deliver(self, payload_bits: np.ndarray,
                rate_index: int) -> PprOutcome:
        """Deliver one payload; see :class:`PprOutcome`.

        Feedback accounting follows the
        :class:`~repro.recovery.base.RecoveryOutcome` contract: a
        1-bit ACK is charged only when the (spliced) body actually
        verifies, each retransmission is preceded by its chunk-request
        cost (bitmap or fallback index), and giving up charges
        nothing — the sender learns of the final failure by ACK
        timeout, as in 802.11.
        """
        payload_bits = np.asarray(payload_bits, dtype=np.uint8)
        body = append_crc32(payload_bits)       # sender-side body
        slices = self._chunk_slices(body.size)
        symbol_time = self.phy.mode.symbol_time
        airtime = 0.0
        feedback_bits = 0

        tx = self.phy.transmit(payload_bits, rate_index=rate_index)
        airtime += tx.layout.airtime(symbol_time)
        rx_symbols, gains = self.channel(tx.symbols, 0)
        rx = self.phy.receive(rx_symbols, gains, tx.layout)
        estimate = rx.body_bits.copy()
        confidences = error_probabilities(rx.hints).copy()
        if rx.crc_ok:
            feedback_bits += 1                  # the terminal ACK
            return PprOutcome(
                delivered=bool(np.array_equal(estimate, body)),
                rounds=1, airtime=airtime,
                payload_bits=payload_bits.size,
                feedback_bits=feedback_bits,
                estimate=estimate, confidences=confidences)

        for round_index in range(1, self.max_rounds):
            suspects, used_fallback = self._suspect_chunks(confidences,
                                                           slices)
            feedback_bits += self._request_bits(len(slices),
                                                used_fallback)
            chunk_payload = np.concatenate(
                [body[slices[c]] for c in suspects])
            # Byte-align the retransmission frame.
            pad = (-chunk_payload.size) % 8
            if pad:
                chunk_payload = np.concatenate(
                    [chunk_payload, np.zeros(pad, dtype=np.uint8)])
            tx_chunk = self.phy.transmit(chunk_payload,
                                         rate_index=rate_index)
            airtime += tx_chunk.layout.airtime(symbol_time)
            rx_symbols, gains = self.channel(tx_chunk.symbols,
                                             round_index)
            rx_chunk = self.phy.receive(rx_symbols, gains,
                                        tx_chunk.layout)
            new_bits = rx_chunk.payload_bits
            new_p = error_probabilities(
                rx_chunk.hints[: new_bits.size])
            cursor = 0
            for chunk in suspects:
                dst = slices[chunk]
                width = dst.stop - dst.start
                src = slice(cursor, cursor + width)
                cursor += width
                if src.stop > new_bits.size:
                    # The retransmission came up short (undetected or
                    # truncated frame): this chunk's bits never
                    # arrived.  Keep the copy we have — splicing an
                    # empty or partial slice would corrupt the
                    # estimate and NaN the confidence bookkeeping.
                    continue
                # Keep whichever copy is more confident.
                if new_p[src].mean() <= confidences[dst].mean():
                    estimate[dst] = new_bits[src]
                    confidences[dst] = new_p[src]
            if check_crc32(estimate):
                feedback_bits += 1              # the terminal ACK
                return PprOutcome(
                    delivered=bool(np.array_equal(estimate, body)),
                    rounds=round_index + 1, airtime=airtime,
                    payload_bits=payload_bits.size,
                    feedback_bits=feedback_bits,
                    estimate=estimate, confidences=confidences)
        return PprOutcome(False, self.max_rounds, airtime,
                          payload_bits.size, feedback_bits,
                          estimate=estimate, confidences=confidences)
