"""Rateless (fountain) coding over PPR-salvaged chunks.

The video workload's transport, after the Raptor-codes-for-video line
of work: each video frame's bits are expanded into an endless stream
of fountain-coded *symbols* — the first ``k`` systematic (the data
itself), the rest dense random GF(2) combinations — and the sender
simply keeps streaming fresh symbols until the receiver has enough.
*Any* sufficient subset decodes, which is exactly the workload shape
that rewards chunk-level salvage: a symbol that rode a CRC-failed PHY
frame still counts when its chunk's SoftPHY confidence is high.

The receiver side is confidence-weighted.  Each accepted symbol
carries a ``weight`` in ``(0, 1]`` — 1.0 for symbols from
CRC-verified frames, and the chunk's probability of being error-free
(``prod(1 - p)`` over its per-bit error probabilities, the PPR
salvage rule) for symbols recovered from failed frames.  A video
frame is declared decodable when the accumulated weight crosses
``k * (1 + overhead)`` *and* the received coefficient vectors span
GF(2)^k; :meth:`RatelessDecoder.decode` then solves the system by
Gaussian elimination and returns the exact data bits.

Fidelity caveats (see docs/video.md): symbol indices are assumed to
be known reliably (out-of-band / in the protected frame header), and
a confidently-wrong salvaged chunk can poison a decode — the weight
rule bounds how often that happens but does not eliminate it, just as
for real PPR splices.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.recovery.ppr import chunk_slices

__all__ = ["RatelessEncoder", "RatelessDecoder", "SalvagedSymbol",
           "salvage_symbols"]


def _coefficients(k: int, seed: int, index: int) -> np.ndarray:
    """GF(2) coefficient vector of symbol ``index`` (shape ``(k,)``).

    Symbols ``0 .. k-1`` are systematic (unit vectors); later repair
    symbols draw a dense Bernoulli(1/2) mask from a counter-keyed RNG
    so encoder and decoder derive identical vectors from ``(seed,
    index)`` alone, with a deterministic fallback guaranteeing no
    all-zero row.
    """
    if index < k:
        coeff = np.zeros(k, dtype=np.uint8)
        coeff[index] = 1
        return coeff
    rng = np.random.default_rng((seed, index))
    coeff = (rng.random(k) < 0.5).astype(np.uint8)
    if not coeff.any():
        coeff[index % k] = 1
    return coeff


class RatelessEncoder:
    """Expand one data block into an endless fountain-symbol stream.

    Args:
        data_bits: the block to protect (zero-padded up to a whole
            number of symbols).
        symbol_bits: bits per fountain symbol; must match the PPR
            chunk size so salvaged chunks align with symbols.
        seed: keys the repair-symbol coefficient masks; the decoder
            must use the same seed.

    Example::

        enc = RatelessEncoder(bits, symbol_bits=256, seed=7)
        enc.symbol(0)            # first systematic symbol
        enc.symbol(enc.k + 5)    # a repair symbol
    """

    def __init__(self, data_bits: np.ndarray, symbol_bits: int,
                 seed: int = 0):
        if symbol_bits < 1:
            raise ValueError("symbol_bits must be positive")
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        if data_bits.size < 1:
            raise ValueError("need at least one data bit")
        self.symbol_bits = int(symbol_bits)
        self.seed = int(seed)
        self.n_data_bits = int(data_bits.size)
        k = -(-data_bits.size // symbol_bits)
        padded = np.zeros(k * symbol_bits, dtype=np.uint8)
        padded[: data_bits.size] = data_bits
        #: data as a (k, symbol_bits) table of source symbols.
        self._table = padded.reshape(k, symbol_bits)

    @property
    def k(self) -> int:
        """Number of source symbols in the block."""
        return self._table.shape[0]

    def coefficients(self, index: int) -> np.ndarray:
        """GF(2) coefficient vector of symbol ``index``."""
        return _coefficients(self.k, self.seed, index)

    def symbol(self, index: int) -> np.ndarray:
        """The ``index``-th fountain symbol (``symbol_bits`` bits)."""
        if index < self.k:
            return self._table[index].copy()
        coeff = self.coefficients(index)
        return np.bitwise_xor.reduce(
            self._table[coeff.astype(bool)], axis=0)

    def symbols(self, start: int, count: int) -> Iterator[
            Tuple[int, np.ndarray]]:
        """Yield ``count`` consecutive ``(index, bits)`` symbols."""
        for index in range(start, start + count):
            yield index, self.symbol(index)


class RatelessDecoder:
    """Confidence-weighted fountain decoder for one data block.

    Symbols arrive via :meth:`add` with a weight in ``(0, 1]``;
    duplicates of an index keep the highest-weight copy.  The decoder
    maintains an incrementally row-reduced GF(2) basis, so
    :attr:`decodable` and :meth:`decode` are cheap at any point in
    the stream.

    Args:
        n_data_bits: exact size of the original block (the padding the
            encoder added is stripped on decode).
        symbol_bits: bits per symbol (same as the encoder's).
        seed: the encoder's coefficient seed.
        overhead: extra weight, as a fraction of ``k``, required
            before the block is declared decodable.
    """

    def __init__(self, n_data_bits: int, symbol_bits: int,
                 seed: int = 0, overhead: float = 0.15):
        if n_data_bits < 1:
            raise ValueError("need at least one data bit")
        if overhead < 0:
            raise ValueError("overhead cannot be negative")
        self.n_data_bits = int(n_data_bits)
        self.symbol_bits = int(symbol_bits)
        self.seed = int(seed)
        self.overhead = float(overhead)
        self.k = -(-self.n_data_bits // self.symbol_bits)
        #: best weight seen per symbol index.
        self._weights: Dict[int, float] = {}
        #: reduced basis rows by pivot: pivot -> (coeff, bits).
        self._basis: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    @property
    def threshold(self) -> float:
        """Weight needed to declare the block decodable."""
        return self.k * (1.0 + self.overhead)

    @property
    def received_weight(self) -> float:
        """Accumulated weight over distinct symbol indices."""
        return float(sum(self._weights.values()))

    @property
    def rank(self) -> int:
        """GF(2) rank of the received coefficient vectors."""
        return len(self._basis)

    @property
    def decodable(self) -> bool:
        """True when the accumulated symbol weight crosses
        ``k * (1 + overhead)`` and the symbols span the block."""
        return (self.received_weight >= self.threshold
                and self.rank == self.k)

    def add(self, index: int, bits: np.ndarray,
            weight: float = 1.0) -> None:
        """Accept one received symbol.

        Args:
            index: the fountain symbol index.
            bits: the symbol's ``symbol_bits`` bits.
            weight: confidence that the bits are error-free (1.0 for
                symbols from CRC-verified frames; the salvage weight
                otherwise).
        """
        if not 0.0 < weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size != self.symbol_bits:
            raise ValueError(
                f"symbol carries {bits.size} bits, expected "
                f"{self.symbol_bits}")
        index = int(index)
        prev = self._weights.get(index)
        if prev is not None:
            # Duplicate index: the payload is identical by
            # construction, only the confidence can improve.
            self._weights[index] = max(prev, weight)
            return
        self._weights[index] = weight
        self._reduce(_coefficients(self.k, self.seed, index),
                     bits.copy())

    def _reduce(self, coeff: np.ndarray, bits: np.ndarray) -> None:
        """Fold one row into the reduced GF(2) basis."""
        while True:
            pivots = np.flatnonzero(coeff)
            if pivots.size == 0:
                return                      # linearly dependent
            pivot = int(pivots[0])
            row = self._basis.get(pivot)
            if row is None:
                self._basis[pivot] = (coeff, bits)
                return
            coeff = np.bitwise_xor(coeff, row[0])
            bits = np.bitwise_xor(bits, row[1])

    def decode(self) -> Optional[np.ndarray]:
        """Solve for the data bits; ``None`` unless :attr:`decodable`.

        Back-substitutes the reduced basis into a fully diagonalized
        system and returns exactly ``n_data_bits`` bits.
        """
        if not self.decodable:
            return None
        solved = np.zeros((self.k, self.symbol_bits), dtype=np.uint8)
        # Pivots run 0..k-1 when rank == k; eliminate bottom-up.
        for pivot in range(self.k - 1, -1, -1):
            coeff, bits = self._basis[pivot]
            bits = bits.copy()
            for other in np.flatnonzero(coeff)[1:]:
                bits ^= solved[int(other)]
            solved[pivot] = bits
        return solved.reshape(-1)[: self.n_data_bits].copy()


class SalvagedSymbol:
    """One symbol recovered from a (possibly CRC-failed) frame body.

    Attributes:
        chunk: chunk position within the carrying frame's body.
        bits: the chunk's bits as received.
        weight: probability the chunk is error-free,
            ``prod(1 - p)`` over its per-bit error probabilities.
    """

    __slots__ = ("chunk", "bits", "weight")

    def __init__(self, chunk: int, bits: np.ndarray, weight: float):
        self.chunk = int(chunk)
        self.bits = bits
        self.weight = float(weight)


def salvage_symbols(body_bits: np.ndarray, confidences: np.ndarray,
                    symbol_bits: int,
                    max_error_prob: float = 1e-3
                    ) -> List[SalvagedSymbol]:
    """PPR-style chunk salvage of a frame body for the decoder.

    Splits ``body_bits`` into symbol-aligned chunks (the trailing
    partial chunk — the frame's CRC field — is never a symbol) and
    keeps every chunk whose *mean* per-bit error probability is at
    most ``max_error_prob``; each kept chunk is weighted by its
    probability of being entirely error-free.  Feeding these into
    :meth:`RatelessDecoder.add` is what lets a failed frame still
    advance the video decode.

    Args:
        body_bits: received body estimate (e.g.
            :attr:`repro.recovery.ppr.PprOutcome.estimate`).
        confidences: per-bit error probabilities of ``body_bits``.
        symbol_bits: the fountain symbol size (PPR chunk size).
        max_error_prob: salvage threshold on the chunk's mean error
            probability.

    Returns:
        The salvageable chunks, in chunk order.
    """
    body_bits = np.asarray(body_bits, dtype=np.uint8)
    confidences = np.asarray(confidences, dtype=np.float64)
    if body_bits.shape != confidences.shape:
        raise ValueError("bits and confidences must align")
    out = []
    for chunk, sl in enumerate(chunk_slices(body_bits.size,
                                            symbol_bits)):
        if sl.stop - sl.start != symbol_bits:
            continue                        # partial tail (CRC field)
        p = confidences[sl]
        if float(p.mean()) <= max_error_prob:
            out.append(SalvagedSymbol(
                chunk=chunk, bits=body_bits[sl].copy(),
                weight=float(np.prod(1.0 - p))))
    return out
