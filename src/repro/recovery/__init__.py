"""Error recovery protocols that compose with SoftRate.

The paper is explicit that rate adaptation and error recovery are
separate concerns joined by the BER interface (section 3.3): SoftRate
works with whole-frame ARQ, with PPR-style partial packet recovery
(its reference [12], which *also* consumes SoftPHY hints), and with
incremental-redundancy hybrid ARQ (WiMax/HSDPA/ZipTx) — only the
optimal thresholds change.  This package implements all three over the
bit-exact PHY so that claim can be exercised end to end:

* :class:`~repro.recovery.arq.FrameArqProtocol` — 802.11-style
  whole-frame retransmission;
* :class:`~repro.recovery.ppr.PprProtocol` — retransmit only the
  chunks whose SoftPHY hints show low confidence;
* :class:`~repro.recovery.incremental.IncrementalRedundancyProtocol` —
  send extra parity (the punctured bits) on failure and re-decode at a
  lower effective code rate, Chase-combining repeated LLRs.
"""

from repro.recovery.base import RecoveryOutcome
from repro.recovery.arq import FrameArqProtocol
from repro.recovery.ppr import PprOutcome, PprProtocol, chunk_slices
from repro.recovery.incremental import IncrementalRedundancyProtocol
from repro.recovery.rateless import (RatelessDecoder, RatelessEncoder,
                                     SalvagedSymbol, salvage_symbols)

__all__ = [
    "RecoveryOutcome",
    "FrameArqProtocol",
    "PprProtocol",
    "PprOutcome",
    "chunk_slices",
    "IncrementalRedundancyProtocol",
    "RatelessEncoder",
    "RatelessDecoder",
    "SalvagedSymbol",
    "salvage_symbols",
]
