"""Whole-frame ARQ: the 802.11 a/b/g baseline recovery scheme."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.phy.transceiver import Transceiver
from repro.recovery.base import RecoveryOutcome

__all__ = ["FrameArqProtocol"]


class FrameArqProtocol:
    """Retransmit the entire frame until its CRC-32 passes.

    Args:
        phy: the transceiver.
        channel: callable ``(tx_symbols, round_index) -> (rx_symbols,
            gains)`` applying one independent channel realisation.
        max_rounds: attempts before giving up (802.11 default retry
            chain is 7 + the original).
    """

    name = "frame-ARQ"

    def __init__(self, phy: Transceiver,
                 channel: Callable, max_rounds: int = 8):
        if max_rounds < 1:
            raise ValueError("need at least one round")
        self.phy = phy
        self.channel = channel
        self.max_rounds = max_rounds

    def deliver(self, payload_bits: np.ndarray,
                rate_index: int) -> RecoveryOutcome:
        """Deliver one payload; see :class:`RecoveryOutcome`."""
        payload_bits = np.asarray(payload_bits, dtype=np.uint8)
        airtime = 0.0
        symbol_time = self.phy.mode.symbol_time
        for round_index in range(self.max_rounds):
            tx = self.phy.transmit(payload_bits, rate_index=rate_index)
            airtime += tx.layout.airtime(symbol_time)
            rx_symbols, gains = self.channel(tx.symbols, round_index)
            rx = self.phy.receive(rx_symbols, gains, tx.layout)
            if rx.crc_ok and np.array_equal(rx.payload_bits,
                                            payload_bits):
                return RecoveryOutcome(
                    delivered=True, rounds=round_index + 1,
                    airtime=airtime, payload_bits=payload_bits.size,
                    feedback_bits=round_index + 1)
        return RecoveryOutcome(delivered=False, rounds=self.max_rounds,
                               airtime=airtime,
                               payload_bits=payload_bits.size,
                               feedback_bits=self.max_rounds)
