"""Incremental-redundancy hybrid ARQ with Chase combining.

The recovery style of WiMax, HSDPA, and ZipTx (paper section 2):
"incremental redundancy forgoes aggressive FEC on the first
transmission of a packet, requesting subsequent transmissions of
parity bits with ARQ only if needed."

Our implementation exploits the puncturing machinery directly:

* **Round 1** sends the rate-3/4 punctured subset of the K=7 mother
  code's output — minimal redundancy.
* **Round 2** (on NACK) sends exactly the bits round 1 *deleted*; the
  receiver fills them into its LLR vector, and the decode now runs at
  the full rate-1/2 mother code.
* **Further rounds** repeat the full coded stream; repeated positions
  Chase-combine (channel LLRs add — independent observations of the
  same bit).

Each round is a self-contained OFDM transmission (preamble + header +
parity symbols), so the airtime accounting matches the frame-based
protocols.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

import numpy as np

from repro.core.hints import error_probabilities
from repro.phy import bits as bitutil
from repro.phy.bcjr import bcjr_decode
from repro.phy.convcode import PUNCTURE_PATTERNS
from repro.phy.modulation import modulate, soft_demap
from repro.phy.transceiver import Transceiver
from repro.recovery.base import RecoveryOutcome

__all__ = ["IncrementalRedundancyProtocol"]

_FIRST_ROUND_RATE = Fraction(3, 4)


class IncrementalRedundancyProtocol:
    """Send minimal parity first; add redundancy only on failure.

    Args:
        phy: the transceiver (provides the code, modulation geometry,
            and frame-overhead accounting).
        channel: callable ``(tx_symbols, round_index) -> (rx_symbols,
            gains)``.
        modulation: constellation for the parity symbols.
        max_rounds: transmissions allowed (1 = rate 3/4 only,
            2 = down to rate 1/2, 3+ = Chase combining).
    """

    name = "IR"

    def __init__(self, phy: Transceiver, channel: Callable,
                 modulation: str = "QPSK", max_rounds: int = 4):
        if max_rounds < 1:
            raise ValueError("need at least one round")
        self.phy = phy
        self.channel = channel
        self.modulation = modulation
        self.max_rounds = max_rounds

    def _positions(self, n_mother: int, round_index: int) -> np.ndarray:
        """Mother-code positions sent in the given round."""
        pattern = PUNCTURE_PATTERNS[_FIRST_ROUND_RATE]
        mask = np.tile(pattern, -(-n_mother // pattern.size))[:n_mother]
        if round_index == 0:
            return np.where(mask)[0]
        if round_index == 1:
            return np.where(~mask)[0]
        return np.arange(n_mother)             # full Chase rounds

    def _transmit_positions(self, coded: np.ndarray,
                            positions: np.ndarray, round_index: int):
        """One OFDM transmission carrying the selected coded bits.

        Returns ``(per_bit_channel_llrs, airtime)``.
        """
        from repro.phy.modulation import CONSTELLATIONS
        from repro.phy.ofdm import training_symbols

        bits = coded[positions]
        const = CONSTELLATIONS[self.modulation]
        n = self.phy.mode.n_subcarriers
        block = const.bits_per_symbol * n
        pad = (-bits.size) % block
        padded = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
        data_symbols = modulate(padded, self.modulation).reshape(-1, n)
        preamble = training_symbols(self.phy.n_preamble_symbols, n)
        tx_symbols = np.concatenate([preamble, data_symbols], axis=0)
        airtime = tx_symbols.shape[0] * self.phy.mode.symbol_time

        rx_symbols, gains = self.channel(tx_symbols, round_index)
        gains = np.asarray(gains, dtype=np.complex128)
        if gains.ndim == 1:
            per_sample = np.repeat(gains, n)
        else:
            per_sample = gains.ravel()
        # Noise estimate from the preamble residual, as the receiver
        # would compute it.
        n_pre = preamble.size
        residual = rx_symbols[:self.phy.n_preamble_symbols].ravel() \
            - per_sample[:n_pre] * preamble.ravel()
        noise_var = max(float(np.mean(np.abs(residual) ** 2)), 1e-9)
        data_rx = rx_symbols[self.phy.n_preamble_symbols:].ravel()
        llrs = soft_demap(data_rx, self.modulation, noise_var,
                          gains=per_sample[n_pre:])
        if pad:
            llrs = llrs[:-pad]
        return llrs, airtime

    def deliver(self, payload_bits: np.ndarray,
                rate_index: int = 0) -> RecoveryOutcome:
        """Deliver one payload; ``rate_index`` selects the modulation
        via the PHY rate table (the code rate is the protocol's own
        business — that is the point of incremental redundancy)."""
        payload_bits = np.asarray(payload_bits, dtype=np.uint8)
        if rate_index is not None:
            self.modulation = self.phy.rates[rate_index].modulation
        body = bitutil.append_crc32(payload_bits)
        coded = self.phy.code.encode(body)
        n_mother = coded.size

        accumulated = np.zeros(n_mother)
        airtime = 0.0
        feedback_bits = 0
        for round_index in range(self.max_rounds):
            positions = self._positions(n_mother, round_index)
            llrs, tx_time = self._transmit_positions(
                coded, positions, round_index)
            airtime += tx_time
            feedback_bits += 1                  # ACK/NACK per round
            accumulated[positions] += llrs      # Chase combining
            result = bcjr_decode(self.phy.code, accumulated,
                                 variant=self.phy.decoder_variant)
            decoded = result.bits
            if bitutil.check_crc32(decoded):
                return RecoveryOutcome(
                    delivered=bool(np.array_equal(decoded, body)),
                    rounds=round_index + 1, airtime=airtime,
                    payload_bits=payload_bits.size,
                    feedback_bits=feedback_bits)
        return RecoveryOutcome(False, self.max_rounds, airtime,
                               payload_bits.size, feedback_bits)

    def residual_ber_estimate(self, hints: np.ndarray) -> float:
        """SoftPHY BER estimate over a decode attempt's hints —
        provided so SoftRate's feedback loop composes with IR exactly
        as with frame ARQ (section 3.3's modularity claim)."""
        return float(np.mean(error_probabilities(np.abs(hints))))
