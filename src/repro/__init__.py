"""SoftRate: cross-layer wireless bit rate adaptation (SIGCOMM 2009).

A full-system reproduction of Vutukuru, Balakrishnan, and Jamieson's
SoftRate: an 802.11a/g-like OFDM PHY with a soft-output (BCJR) decoder,
SoftPHY hint extraction, BER-driven rate adaptation, the frame-level
and SNR-based baselines it is compared against, and a discrete-event
wireless network simulator with TCP for the end-to-end evaluation.

Quick start::

    import numpy as np
    from repro import Transceiver, apply_channel
    from repro.core import frame_ber_estimate

    rng = np.random.default_rng(1)
    phy = Transceiver()
    tx = phy.transmit(np.zeros(800, dtype=np.uint8), rate_index=3)
    gains = np.ones(tx.layout.n_symbols)
    rx_symbols, gains = apply_channel(tx.symbols, gains, 0.25, rng)
    rx = phy.receive(rx_symbols, gains, tx.layout, tx_frame=tx)
    print(rx.crc_ok, frame_ber_estimate(rx.hints), rx.true_ber)
"""

from repro.phy import RATE_TABLE, MODES, Rate, RateTable, Transceiver, RxResult
from repro.channel import apply_channel

__version__ = "1.0.0"

__all__ = [
    "RATE_TABLE",
    "MODES",
    "Rate",
    "RateTable",
    "Transceiver",
    "RxResult",
    "apply_channel",
    "__version__",
]
