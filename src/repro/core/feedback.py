"""The SoftRate link-layer feedback frame (paper section 3).

A SoftRate receiver returns one BER measurement per received frame in a
reserved slot at the lowest bit rate — exactly like an 802.11 ACK with
a 32-bit BER field added.  Feedback is sent whether or not the body had
errors, *as long as the header decoded* (the header carries its own
CRC for this purpose).  If even the header was lost, no feedback is
sent and the sender observes a *silent loss*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Feedback", "encode_ber", "decode_ber"]

_BER_SCALE = 2 ** 32 - 1
_LOG_FLOOR = -12.0  # quantise BER on a log scale down to 1e-12


def encode_ber(ber: float) -> int:
    """Quantise a BER into the 32-bit feedback field (log-scale)."""
    if not 0.0 <= ber <= 1.0:
        raise ValueError(f"BER {ber} outside [0, 1]")
    if ber <= 10.0 ** _LOG_FLOOR:
        return 0
    fraction = (np.log10(ber) - _LOG_FLOOR) / (-_LOG_FLOOR)
    return int(round(min(max(fraction, 0.0), 1.0) * _BER_SCALE))


def decode_ber(field: int) -> float:
    """Inverse of :func:`encode_ber` (exact up to quantisation)."""
    if not 0 <= field <= _BER_SCALE:
        raise ValueError("field outside 32 bits")
    if field == 0:
        return 0.0
    return float(10.0 ** (_LOG_FLOOR + (field / _BER_SCALE) * -_LOG_FLOOR))


@dataclass(frozen=True)
class Feedback:
    """One link-layer feedback frame.

    Attributes:
        src: node sending the feedback (the data receiver).
        dest: the data sender.
        seq: sequence number of the data frame being reported.
        ber: interference-free BER estimate of the data frame (already
            excised by the interference detector).
        frame_ok: body CRC-32 passed (this is the ACK bit).
        interference_detected: the receiver excised a collided portion.
        snr_db: receiver-side preamble SNR estimate, piggybacked for
            the SNR-based comparison protocols (the paper's simulator
            does the same, section 6.1).
        postamble_only: the frame's preamble was lost but its postamble
            was detected (only when postambles are enabled).
    """

    src: int
    dest: int
    seq: int
    ber: float
    frame_ok: bool
    interference_detected: bool = False
    snr_db: float = float("nan")
    postamble_only: bool = False

    def quantised(self) -> "Feedback":
        """The feedback as the 32-bit wire encoding would deliver it."""
        return Feedback(src=self.src, dest=self.dest, seq=self.seq,
                        ber=decode_ber(encode_ber(self.ber)),
                        frame_ok=self.frame_ok,
                        interference_detected=self.interference_detected,
                        snr_db=self.snr_db,
                        postamble_only=self.postamble_only)
