"""From SoftPHY hints to BER estimates (paper section 3.1).

The physical layer exports, for every decoded bit ``k``, the magnitude
of its a-posteriori log-likelihood ratio: the SoftPHY hint
``s_k = |LLR(k)|``.  Because

    s_k = log((1 - p_k) / p_k),

where ``p_k = P(x_k != y_k | r)`` is the probability the decoded bit is
wrong, the receiver recovers ``p_k = 1 / (1 + exp(s_k))`` — *without
knowing which bits were transmitted*.  Averaging ``p_k`` over a frame
estimates the channel BER during that frame, even when the frame has
zero actual bit errors; that is the property that lets SoftRate tell a
channel at BER 1e-9 from one at 1e-4 from a single error-free frame.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hints_from_llrs", "error_probabilities", "frame_ber_estimate",
           "symbol_ber_profile"]


def hints_from_llrs(llrs: np.ndarray) -> np.ndarray:
    """SoftPHY hints: per-bit posterior LLR magnitudes (Eq. after 2)."""
    return np.abs(np.asarray(llrs, dtype=np.float64))


def error_probabilities(hints: np.ndarray) -> np.ndarray:
    """Per-bit error probabilities from SoftPHY hints (Eq. 3).

    ``p_k = 1 / (1 + exp(s_k))``; computed stably for large hints.
    """
    hints = np.asarray(hints, dtype=np.float64)
    if np.any(hints < 0):
        raise ValueError("SoftPHY hints are magnitudes; must be >= 0")
    # 1 / (1 + e^s) = e^-s / (1 + e^-s): stable for all s >= 0.
    exp_neg = np.exp(-hints)
    return exp_neg / (1.0 + exp_neg)


def frame_ber_estimate(hints: np.ndarray) -> float:
    """Average BER of the channel over one frame (paper section 3.1)."""
    hints = np.asarray(hints, dtype=np.float64)
    if hints.size == 0:
        raise ValueError("cannot estimate BER from an empty frame")
    return float(np.mean(error_probabilities(hints)))


def symbol_ber_profile(hints: np.ndarray, info_symbol: np.ndarray,
                       n_symbols: int) -> np.ndarray:
    """Per-OFDM-symbol average BER, Eq. 4 of the paper.

    Args:
        hints: SoftPHY hints, one per information bit.
        info_symbol: map from information bit to the body OFDM symbol
            carrying it (:func:`repro.phy.ofdm.info_bit_symbol_map`).
        n_symbols: number of body OFDM symbols.

    Returns:
        Array of length ``n_symbols`` with the mean ``p_k`` of each
        symbol's bits.  Symbols carrying no information bits (possible
        only for the final padded symbol) get the profile value of the
        previous symbol so the difference signal stays well-defined.
    """
    hints = np.asarray(hints, dtype=np.float64)
    info_symbol = np.asarray(info_symbol)
    if hints.size != info_symbol.size:
        raise ValueError("one symbol index per hint required")
    if n_symbols <= 0:
        raise ValueError("need at least one symbol")
    p = error_probabilities(hints)
    sums = np.bincount(info_symbol, weights=p, minlength=n_symbols)
    counts = np.bincount(info_symbol, minlength=n_symbols)
    profile = np.empty(n_symbols)
    last = 0.0
    for j in range(n_symbols):
        if counts[j] > 0:
            last = sums[j] / counts[j]
        profile[j] = last
    return profile
