"""Cheap deterministic hash mixing for keyed randomness.

Simulation hot paths need *keyed* determinism — "the same (slot,
rate, time) always draws the same coin" — far more often than they
need a full generator stream.  Constructing a
:class:`numpy.random.Generator` per draw costs ~15 us (SeedSequence
entropy pooling dominates); a splitmix64 chain delivers the same
keyed-uniform behaviour in well under a microsecond, and doubles as a
seed expander for the streams that *do* need a real generator
(:meth:`repro.sim.wireless.WirelessChannel.attempt_rng`).

splitmix64 (Steele, Lea & Flood, OOPSLA 2014) is the standard
64-bit finalizer used to seed xoshiro/PCG family generators: it is a
bijection on 64-bit integers with full avalanche, so distinct key
tuples give statistically independent outputs.
"""

from __future__ import annotations

__all__ = ["mix64", "uniform01"]

_MASK = (1 << 64) - 1
#: 2**-64, to map a mixed 64-bit integer onto [0, 1).
_INV = 1.0 / float(1 << 64)


def mix64(*values: int) -> int:
    """Mix integers into one well-distributed 64-bit value.

    Each value is absorbed with the golden-gamma increment and run
    through the splitmix64 finalizer, so the result has full avalanche
    in every input — ``mix64(a, b)`` and ``mix64(a, b + 1)`` are
    statistically unrelated.  Negative inputs are taken modulo 2**64.
    """
    h = 0
    for v in values:
        h = (h + (int(v) & _MASK) + 0x9E3779B97F4A7C15) & _MASK
        h ^= h >> 30
        h = (h * 0xBF58476D1CE4E5B9) & _MASK
        h ^= h >> 27
        h = (h * 0x94D049BB133111EB) & _MASK
        h ^= h >> 31
    return h


def uniform01(*values: int) -> float:
    """A keyed uniform draw on ``[0, 1)`` — ``mix64`` scaled down."""
    return mix64(*values) * _INV
