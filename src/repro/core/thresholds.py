"""Optimal per-rate BER thresholds (paper section 3.3).

For each rate ``R_i`` SoftRate computes thresholds ``(alpha_i, beta_i)``
such that ``R_i`` is the throughput-optimal rate exactly when the BER
at ``R_i`` lies in ``(alpha_i, beta_i)``:

* above ``beta_i`` the next-lower rate (whose BER is predicted to be
  10x smaller) yields more throughput;
* below ``alpha_i`` the next-higher rate (BER 10x larger) does.

The thresholds depend on the link layer's error recovery mechanism —
that is the architectural point of the paper: *rate adaptation is
decoupled from error recovery through the BER interface*.  Swapping the
recovery model merely recomputes thresholds; the SoftRate algorithm
itself is unchanged.  Two models are provided:

* :class:`FrameLevelArq` — 802.11-style whole-frame retransmission;
  goodput ``~ rate * (1 - ber)^frame_bits``.
* :class:`PartialBitArq` — a PPR/H-ARQ-style scheme that retransmits
  only (a neighbourhood of) erroneous bits; goodput
  ``~ rate / (1 + cost_per_error * ber)``.

For the paper's worked example (18 Mbps, 10000-bit frames, frame-level
ARQ) these produce thresholds of roughly ``(3e-6, 4e-5)``, matching the
paper's illustrative ``(1e-7, 1e-5)`` to within the orders of magnitude
the heuristic resolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.prediction import BER_CEILING, BER_FLOOR, predict_ber
from repro.phy.rates import Rate, RateTable

__all__ = ["FrameLevelArq", "PartialBitArq", "RateThresholds",
           "ThresholdTable", "compute_thresholds"]


class FrameLevelArq:
    """Whole-frame retransmission (802.11 a/b/g ARQ).

    A frame with any bit error is retransmitted entirely, so goodput at
    BER ``b`` is ``rate * (1 - b)^frame_bits``.
    """

    def __init__(self, frame_bits: int = 10000):
        if frame_bits <= 0:
            raise ValueError("frame size must be positive")
        self.frame_bits = frame_bits

    def throughput(self, rate: Rate, ber: float) -> float:
        """Expected goodput (Mbps) at the given channel BER."""
        ber = min(max(ber, 0.0), 1.0)
        # log1p formulation keeps tiny BERs accurate.
        log_success = self.frame_bits * np.log1p(-min(ber, 1 - 1e-12))
        return rate.mbps * float(np.exp(log_success))


class PartialBitArq:
    """Partial-packet recovery / hybrid ARQ.

    Only erroneous bits (plus a recovery neighbourhood of
    ``cost_per_error`` bits each — parity, chunk framing, and feedback
    overhead) are retransmitted, so a few bit errors are cheap and the
    usable BER range extends orders of magnitude beyond frame-level
    ARQ, as in the paper's "smarter ARQ" example.  The ``(1 - 2 ber)``
    factor collapses goodput as the channel approaches a coin flip
    (BER 0.5 carries no information that recovery could exploit).
    """

    def __init__(self, cost_per_error: float = 500.0):
        if cost_per_error <= 0:
            raise ValueError("cost per error must be positive")
        self.cost_per_error = cost_per_error

    def throughput(self, rate: Rate, ber: float) -> float:
        """Expected goodput (Mbps) at the given channel BER."""
        ber = min(max(ber, 0.0), 1.0)
        usable = max(0.0, 1.0 - 2.0 * ber)
        return rate.mbps * usable / (1.0 + self.cost_per_error * ber)


@dataclass(frozen=True)
class RateThresholds:
    """The optimal-BER interval for one rate.

    ``rate_index`` is optimal while its BER lies in ``(alpha, beta)``;
    at the table edges the unreachable side is 0 or 1.
    """

    rate_index: int
    alpha: float
    beta: float

    def classify(self, ber: float) -> int:
        """-1 = move down, 0 = stay, +1 = move up."""
        if ber > self.beta:
            return -1
        if ber < self.alpha:
            return 1
        return 0


class ThresholdTable:
    """Per-rate thresholds plus the optimal-rate search used for jumps."""

    def __init__(self, rates: RateTable, recovery,
                 thresholds: Sequence[RateThresholds],
                 separation: float):
        self.rates = rates
        self.recovery = recovery
        self._thresholds = list(thresholds)
        self.separation = separation

    def __getitem__(self, rate_index: int) -> RateThresholds:
        return self._thresholds[rate_index]

    def __len__(self) -> int:
        return len(self._thresholds)

    def best_rate(self, current_rate: int, ber: float,
                  max_jump: int = 2) -> int:
        """The throughput-maximising rate reachable within ``max_jump``.

        Predicts the BER at each candidate rate from the measurement at
        the current rate (section 3.3's prediction heuristic) and ranks
        candidates by the recovery model's expected goodput.
        """
        lo = max(0, current_rate - max_jump)
        hi = min(len(self.rates) - 1, current_rate + max_jump)
        best, best_tput = current_rate, -1.0
        for candidate in range(lo, hi + 1):
            predicted = predict_ber(ber, current_rate, candidate,
                                    self.separation)
            if candidate > current_rate and predicted >= BER_CEILING:
                # Saturated prediction: we know nothing about this
                # faster rate except that it is at least as bad as a
                # coin flip — never move up on that.
                continue
            tput = self.recovery.throughput(self.rates[candidate],
                                            predicted)
            if tput > best_tput + 1e-15:
                best, best_tput = candidate, tput
        return best


def _crossover(throughput_current, throughput_other,
               grid: np.ndarray, want_other_above: str) -> float:
    """First/last grid BER where the *other* rate wins."""
    current = np.array([throughput_current(b) for b in grid])
    other = np.array([throughput_other(b) for b in grid])
    wins = other > current
    if want_other_above == "first":      # beta: lower rate wins at high BER
        idx = np.argmax(wins)
        if not wins.any():
            return BER_CEILING
        return float(grid[idx])
    idx = len(grid) - 1 - np.argmax(wins[::-1])  # alpha: last win going up
    if not wins.any():
        return BER_FLOOR
    return float(grid[idx])


def compute_thresholds(rates: RateTable, recovery,
                       separation: float = 10.0,
                       grid_points: int = 600) -> ThresholdTable:
    """Compute ``(alpha_i, beta_i)`` for every rate in the table.

    Args:
        rates: the available rates.
        recovery: an error recovery model with a
            ``throughput(rate, ber)`` method.
        separation: assumed BER ratio between adjacent rates.
        grid_points: resolution of the log-BER search grid.

    Returns:
        A :class:`ThresholdTable`.
    """
    grid = np.logspace(np.log10(BER_FLOOR), np.log10(BER_CEILING),
                       grid_points)
    thresholds: List[RateThresholds] = []
    for i, rate in enumerate(rates):
        if i + 1 < len(rates):
            higher = rates[i + 1]

            def up_throughput(b, r=higher, s=separation):
                # A saturated prediction is uninformative, not a win.
                if b * s >= BER_CEILING:
                    return -1.0
                return recovery.throughput(r, b * s)

            alpha = _crossover(
                lambda b, r=rate: recovery.throughput(r, b),
                up_throughput, grid, "last")
        else:
            alpha = BER_FLOOR          # no higher rate to move to
        if i > 0:
            lower = rates[i - 1]
            beta = _crossover(
                lambda b, r=rate: recovery.throughput(r, b),
                lambda b, r=lower, s=separation: recovery.throughput(
                    r, b / s),
                grid, "first")
        else:
            beta = BER_CEILING         # no lower rate to fall back to
        thresholds.append(RateThresholds(rate_index=i, alpha=alpha,
                                         beta=beta))
    return ThresholdTable(rates, recovery, thresholds, separation)
