"""Cross-rate BER prediction (paper section 3.3).

SoftRate never learns SNR-BER curves.  It relies on two environment-
and hardware-independent observations:

1. at any SNR, BER increases monotonically with bit rate;
2. within the usable range (BER below ~1e-2), adjacent rates in a
   well-designed rate table differ in BER by at least a factor of 10
   at the same SNR.

So from a measured BER ``b`` at rate ``i``, the BER at rate
``i + n`` is predicted as ``b * 10**n`` (and ``b * 10**-n`` going
down), clipped to a sane range.  The prediction only needs to be
accurate enough to rank rates — which is all the threshold-based rate
walk consumes.
"""

from __future__ import annotations

__all__ = ["predict_ber", "BER_FLOOR", "BER_CEILING", "RATE_SEPARATION"]

#: BER below which we stop resolving differences (a 960-byte frame
#: cannot distinguish 1e-9 from 1e-12).
BER_FLOOR = 1e-12
#: BER cannot exceed 0.5 (a random channel).
BER_CEILING = 0.5
#: Minimum BER separation factor between adjacent rates (observation 2).
RATE_SEPARATION = 10.0


def predict_ber(ber: float, from_rate: int, to_rate: int,
                separation: float = RATE_SEPARATION) -> float:
    """Predict the BER at ``to_rate`` from a measurement at ``from_rate``.

    Args:
        ber: measured (interference-free) BER at ``from_rate``.
        from_rate, to_rate: rate table indices.
        separation: per-step BER ratio (>= 1).

    Returns:
        The predicted BER, clipped to ``[BER_FLOOR, BER_CEILING]``.
    """
    if not 0.0 <= ber <= 1.0:
        raise ValueError(f"BER {ber} outside [0, 1]")
    if separation < 1.0:
        raise ValueError("separation factor must be >= 1")
    steps = to_rate - from_rate
    predicted = ber * separation ** steps
    # Scalar clip: np.clip costs microseconds per call and this sits
    # on the per-feedback hot path of every rate walk.
    if predicted < BER_FLOOR:
        return BER_FLOOR
    if predicted > BER_CEILING:
        return BER_CEILING
    return float(predicted)
