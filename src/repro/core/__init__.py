"""SoftRate's core machinery (the paper's primary contribution).

* :mod:`repro.core.hints` — SoftPHY hints to per-bit error
  probabilities and per-frame / per-symbol BER estimates (section 3.1);
* :mod:`repro.core.interference` — abrupt-BER-jump interference
  detection and interference-free BER excision (section 3.2);
* :mod:`repro.core.prediction` — cross-rate BER prediction using the
  monotonicity / order-of-magnitude-separation heuristic (section 3.3);
* :mod:`repro.core.thresholds` — optimal per-rate BER thresholds
  (alpha_i, beta_i) derived from the link layer's error recovery model
  (section 3.3);
* :mod:`repro.core.feedback` — the BER-bearing link-layer feedback
  frame.
"""

from repro.core.hints import (error_probabilities, frame_ber_estimate,
                              symbol_ber_profile, hints_from_llrs)
from repro.core.interference import InterferenceDetector, InterferenceReport
from repro.core.prediction import predict_ber
from repro.core.thresholds import (FrameLevelArq, PartialBitArq,
                                   RateThresholds, compute_thresholds)
from repro.core.feedback import Feedback

__all__ = [
    "error_probabilities",
    "frame_ber_estimate",
    "symbol_ber_profile",
    "hints_from_llrs",
    "InterferenceDetector",
    "InterferenceReport",
    "predict_ber",
    "FrameLevelArq",
    "PartialBitArq",
    "RateThresholds",
    "compute_thresholds",
    "Feedback",
]
