"""SoftPHY-based interference detection (paper sections 3.2 and 4).

Channel fading changes the BER gradually (its physics are continuous
in time), while a colliding transmission raises the BER of *every*
subcarrier of the overlapped OFDM symbols at once.  Following the
paper's criterion — "a sudden change in BER **by orders of magnitude**
within a small number of bits cannot be explained by stochastic
channel fading" — the detector works in log-BER space: it clamps the
per-symbol BER profile

    d_j = | log10 p̄_j - log10 p̄_{j-1} |

to a sensitivity floor and thresholds the jump in *decades*.  The
floor matters: below ~1e-4 a per-symbol estimate from a few hundred
bits is dominated by estimation noise (clean symbols legitimately read
anywhere from 1e-30 to 1e-6), and without the clamp that noise would
register as huge log-domain jumps.

When a jump is found, the interfered symbols are excised and the BER
is recomputed over the clean portion alone, so rate adaptation reacts
only to the interference-free BER — collisions never drag the bit
rate down (which would only worsen contention, section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hints import error_probabilities, symbol_ber_profile

__all__ = ["InterferenceDetector", "InterferenceReport"]

#: Default jump threshold in decades of per-symbol BER.  Calibrated so
#: collision-errored frames are flagged >80% of the time across
#: interferer powers (Fig. 10) while keeping fading losses rarely
#: flagged.  Residual false positives (a few percent, vs the paper's
#: <1%) come from marginal-SNR frames whose bursty decoder errors
#: create genuine multi-decade per-symbol contrast — our simulated
#: frames carry fewer bits per OFDM symbol than the paper's prototype,
#: so per-symbol estimates are noisier; see EXPERIMENTS.md.
DEFAULT_JUMP_DECADES = 1.0

#: Sensitivity floor for the per-symbol BER profile.  A 100-300-bit
#: symbol cannot measure BERs below ~1e-3 reliably; everything under
#: the floor is "clean" and indistinguishable.
PROFILE_FLOOR = 1e-3

#: Per-symbol BER above which a segment between jump boundaries is
#: treated as interfered when excising.
_BAD_SEGMENT_BER = 3e-3


@dataclass(frozen=True)
class InterferenceReport:
    """Outcome of interference detection on one frame.

    Attributes:
        detected: an abrupt BER jump was found.
        clean_mask: boolean array over body OFDM symbols; True where
            the symbol is believed interference-free.
        ber_full: BER estimate over the whole frame.
        ber_clean: BER estimate over the clean portion only — the
            quantity fed back to the sender.  Equal to ``ber_full``
            when nothing was detected.
        jump_positions: symbol indices where the log-BER step crossed
            the threshold.
    """

    detected: bool
    clean_mask: np.ndarray
    ber_full: float
    ber_clean: float
    jump_positions: np.ndarray

    @property
    def clean_fraction(self) -> float:
        """Fraction of body symbols believed interference-free."""
        return float(np.mean(self.clean_mask))


class InterferenceDetector:
    """Thresholds per-symbol log-BER jumps to find collisions.

    Args:
        jump_decades: minimum |log10 p̄_j - log10 p̄_{j-1}| flagged as
            a collision boundary (ablated in
            ``benchmarks/test_ablation_detector.py``).
        profile_floor: clamp for the per-symbol BER profile.
        bad_segment_ber: segments averaging above this are excised.
    """

    def __init__(self, jump_decades: float = DEFAULT_JUMP_DECADES,
                 profile_floor: float = PROFILE_FLOOR,
                 bad_segment_ber: float = _BAD_SEGMENT_BER):
        if jump_decades <= 0:
            raise ValueError("jump threshold must be positive")
        if not 0 < profile_floor < 0.5:
            raise ValueError("profile floor must lie in (0, 0.5)")
        self.jump_decades = jump_decades
        self.profile_floor = profile_floor
        self.bad_segment_ber = bad_segment_ber

    def analyze_profile(self, profile: np.ndarray) -> InterferenceReport:
        """Run detection on a precomputed per-symbol BER profile."""
        profile = np.asarray(profile, dtype=np.float64)
        n = profile.size
        if n == 0:
            raise ValueError("empty BER profile")
        clamped = np.clip(profile, self.profile_floor, 0.5)
        log_profile = np.log10(clamped)
        diffs = np.abs(np.diff(log_profile))
        jumps = np.where(diffs >= self.jump_decades)[0] + 1
        ber_full = float(np.mean(profile))
        if jumps.size == 0 or n == 1:
            return InterferenceReport(
                detected=False, clean_mask=np.ones(n, dtype=bool),
                ber_full=ber_full, ber_clean=ber_full,
                jump_positions=jumps)
        # Between consecutive jump boundaries the profile is roughly
        # level; segments whose level is "bad" are the interfered ones.
        boundaries = np.concatenate([[0], jumps, [n]])
        clean = np.ones(n, dtype=bool)
        for start, end in zip(boundaries[:-1], boundaries[1:]):
            if np.mean(clamped[start:end]) >= self.bad_segment_ber:
                clean[start:end] = False
        if clean.any() and not clean.all():
            # Guard band: the decoder smears a collision's damage into
            # the adjacent symbol (its trellis memory crosses the
            # boundary), so erode the clean region by one symbol on
            # each side of every excised segment.
            bad = ~clean
            dilated = bad.copy()
            dilated[1:] |= bad[:-1]
            dilated[:-1] |= bad[1:]
            if (~dilated).any():
                clean = ~dilated
        if not clean.any():
            # Entire frame bad after a jump: keep the pre-jump prefix
            # (received before the collision began).
            clean[: jumps[0]] = True
        ber_clean = float(np.mean(profile[clean])) if clean.any() \
            else ber_full
        return InterferenceReport(
            detected=bool((~clean).any()), clean_mask=clean,
            ber_full=ber_full, ber_clean=ber_clean, jump_positions=jumps)

    def analyze(self, hints: np.ndarray, info_symbol: np.ndarray,
                n_symbols: int) -> InterferenceReport:
        """Run detection on a frame's SoftPHY hints.

        The clean-portion BER is recomputed over the individual bits of
        the clean symbols (not the symbol means), matching the paper's
        "computes the BER of the frame over the interference-free
        portions alone".
        """
        profile = symbol_ber_profile(hints, info_symbol, n_symbols)
        report = self.analyze_profile(profile)
        if report.detected:
            p = error_probabilities(np.asarray(hints, dtype=np.float64))
            bit_clean = report.clean_mask[np.asarray(info_symbol)]
            if bit_clean.any():
                ber_clean = float(np.mean(p[bit_clean]))
                report = InterferenceReport(
                    detected=report.detected,
                    clean_mask=report.clean_mask,
                    ber_full=report.ber_full, ber_clean=ber_clean,
                    jump_positions=report.jump_positions)
        return report
