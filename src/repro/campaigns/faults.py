"""Deterministic, seeded fault injection for campaign execution.

At campaign scale partial failure is the common case: a worker
process dies, an experiment raises on one pathological cell, a
scenario hangs past any reasonable deadline, or a checkpoint file
loses bytes to a crashed disk flush.  This module makes every one of
those failure classes *reproducible on demand*, so the resilience
machinery in :mod:`repro.campaigns.runner` and
:mod:`repro.campaigns.checkpoint` can be proven — not assumed — to
degrade gracefully and resume to byte-identical results.

Two fault families:

* **Execution faults** fire inside the worker running a targeted
  scenario: ``raise`` (mid-execute exception), ``slow`` (sleep, then
  run normally), ``hang`` (sleep far past the supervision deadline),
  ``crash`` (``os._exit`` — the worker process dies without cleanup).
* **Store faults** damage the checkpoint files after a run:
  ``corrupt-record`` flips one digit inside a targeted scenario's
  record (valid JSON, wrong CRC — exactly the corruption a per-record
  checksum exists to catch) and ``truncate-file`` cuts a record file
  mid-line (the torn tail a killed writer leaves).

Everything is keyed through :func:`repro.core.mix.mix64`, so a
:class:`FaultPlan` built from ``(seed, kinds, scenario count)`` is a
pure value: the same plan injects the same faults at the same places
on every machine, every rerun — which is what lets the chaos wall
(``tests/campaigns/test_chaos.py`` and ``repro campaign chaos``)
assert byte-identical recovery.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.mix import mix64

__all__ = ["FaultSpec", "FaultPlan", "FaultInjectedError",
           "FAULT_KINDS", "EXECUTION_KINDS", "STORE_KINDS",
           "PROCESS_KINDS", "chaos_wall"]

#: Every injectable fault class, in the order ``--faults all`` runs.
FAULT_KINDS = ("raise", "slow", "hang", "crash", "corrupt-record",
               "truncate-file")

#: Faults that fire inside a worker while a scenario executes.
EXECUTION_KINDS = frozenset({"raise", "slow", "hang", "crash"})

#: Faults applied to the checkpoint store after execution.
STORE_KINDS = frozenset({"corrupt-record", "truncate-file"})

#: Execution faults that kill or wedge the *process* running them —
#: survivable only under supervised (worker-process) execution.
PROCESS_KINDS = frozenset({"crash", "hang"})


class FaultInjectedError(RuntimeError):
    """The error a ``raise`` fault throws mid-execute."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    Args:
        kind: one of :data:`FAULT_KINDS`.
        scenario_index: canonical index of the targeted scenario
            (execution faults and ``corrupt-record``; ignored by
            ``truncate-file``, which targets a record file).
        times: how many *attempts* of the scenario the fault fires on
            (execution faults).  ``1`` models a transient fault the
            retry policy absorbs; ``0`` means every attempt, so the
            scenario ends up quarantined.
        delay_s: sleep length for ``slow`` (must stay under the
            supervision deadline) and ``hang`` (must exceed it).
        seed: keys the byte/file choice of store faults.

    Example::

        FaultSpec("raise", scenario_index=3, times=1)
        FaultSpec("hang", scenario_index=0, delay_s=300.0)
    """

    kind: str
    scenario_index: int = -1
    times: int = 1
    delay_s: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {sorted(FAULT_KINDS)}")
        if self.kind in EXECUTION_KINDS or self.kind == "corrupt-record":
            if self.scenario_index < 0:
                raise ValueError(
                    f"{self.kind} fault needs a scenario_index >= 0")
        if self.times < 0:
            raise ValueError("times must be >= 0 (0 = every attempt)")

    def fires(self, attempt: int) -> bool:
        """Whether the fault fires on 0-based ``attempt``."""
        return self.times == 0 or attempt < self.times

    def fire(self, attempt: int) -> None:
        """Inject this execution fault inside the current worker.

        ``raise`` throws :class:`FaultInjectedError`; ``slow`` and
        ``hang`` sleep ``delay_s`` (the supervisor's watchdog is what
        turns a hang into a kill); ``crash`` exits the process without
        cleanup, exactly like an OOM kill or segfault would.
        """
        if self.kind not in EXECUTION_KINDS or not self.fires(attempt):
            return
        if self.kind == "raise":
            raise FaultInjectedError(
                f"injected fault: scenario #{self.scenario_index} "
                f"attempt {attempt}")
        if self.kind in ("slow", "hang"):
            time.sleep(self.delay_s)
            return
        if self.kind == "crash":
            os._exit(13)


def _record_files(directory: str) -> List[str]:
    return sorted(
        os.path.join(directory, name)
        for name in (os.listdir(directory)
                     if os.path.isdir(directory) else [])
        if name.startswith("results-") and name.endswith(".jsonl"))


def _chunk_for_scenario(directory: str,
                        scenario_index: int) -> Optional[str]:
    """The sealed column chunk holding the targeted scenario's row,
    if the campaign ran on the columnar backend."""
    from repro.campaigns.colstore import chunk_paths, read_chunk
    for path in chunk_paths(directory):
        try:
            rows = read_chunk(path)
        except Exception:
            continue
        if any(r["index"] == scenario_index for r in rows):
            return path
    return None


def _flip_chunk_byte(path: str, spec: FaultSpec) -> str:
    """Flip one deterministic byte inside a chunk file's body.

    Chunk rows are compressed, so a single flipped byte makes the
    whole chunk unreadable — the chunk-granularity analogue of a
    corrupted record line, caught by the scan's whole-file
    classification and recomputed on resume.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    # Land past the zip header region so the damage hits row data.
    lo = max(len(data) // 4, 1)
    pick = lo + mix64(spec.seed, spec.scenario_index) \
        % max(len(data) - lo, 1)
    pick = min(pick, len(data) - 1)
    flipped = data[:pick] + bytes([data[pick] ^ 0xFF]) \
        + data[pick + 1:]
    with open(path, "wb") as fh:
        fh.write(flipped)
    return (f"corrupt-record: flipped byte {pick} of chunk "
            f"{os.path.basename(path)} (holds scenario "
            f"#{spec.scenario_index})")


def _corrupt_record(directory: str, spec: FaultSpec) -> str:
    """Flip one digit in the targeted scenario's record line.

    The flip lands after the ``"metrics"`` key when possible, keeping
    the line valid JSON — the corruption only the per-record CRC can
    catch.  When the record lives in a sealed column chunk instead of
    a JSONL line, one byte of the chunk is flipped (compressed rows
    make finer-grained damage equivalent anyway).  Returns a
    description of what was (or was not) done.
    """
    for path in _record_files(directory):
        with open(path, "rb") as fh:
            lines = fh.read().split(b"\n")
        for line_no, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) or \
                    record.get("index") != spec.scenario_index:
                continue
            anchor = line.find(b'"metrics"')
            search_from = anchor if anchor >= 0 else 0
            digits = [i for i in range(search_from, len(line))
                      if 0x30 <= line[i] <= 0x39]
            if not digits:
                continue
            pick = digits[mix64(spec.seed, spec.scenario_index)
                          % len(digits)]
            old = line[pick] - 0x30
            flipped = line[:pick] \
                + bytes([0x30 + (old + 5) % 10]) + line[pick + 1:]
            lines[line_no] = flipped
            with open(path, "wb") as fh:
                fh.write(b"\n".join(lines))
            return (f"corrupt-record: flipped byte {pick} of scenario "
                    f"#{spec.scenario_index} in "
                    f"{os.path.basename(path)}")
    chunk = _chunk_for_scenario(directory, spec.scenario_index)
    if chunk is not None:
        return _flip_chunk_byte(chunk, spec)
    return (f"corrupt-record: no record for scenario "
            f"#{spec.scenario_index} (nothing corrupted)")


def _truncate_file(directory: str, spec: FaultSpec) -> str:
    """Cut a record file mid-line: drop the last complete record and
    leave half of it as a torn trailing fragment.

    On a columnar store the candidates include sealed chunks; a
    picked chunk is cut to half its bytes — the torn-chunk artifact a
    kill mid-publish cannot actually produce (chunks appear by
    rename) but bit rot can, and the scan must absorb either way.
    """
    from repro.campaigns.colstore import chunk_paths
    files = _record_files(directory)
    files = [p for p in files if os.path.getsize(p) > 0]
    files += chunk_paths(directory)
    if not files:
        return "truncate-file: no record files (nothing truncated)"
    path = files[mix64(spec.seed, 1) % len(files)]
    if path.endswith(".npz"):
        size = os.path.getsize(path)
        os.truncate(path, max(size // 2, 1))
        return (f"truncate-file: cut chunk "
                f"{os.path.basename(path)} to half size")
    with open(path, "rb") as fh:
        data = fh.read()
    lines = [ln for ln in data.split(b"\n") if ln.strip()]
    last = lines[-1]
    torn = last[:max(len(last) // 2, 1)]
    with open(path, "wb") as fh:
        if len(lines) > 1:
            fh.write(b"\n".join(lines[:-1]) + b"\n")
        fh.write(torn)
    return (f"truncate-file: dropped the last record of "
            f"{os.path.basename(path)} and left a torn tail")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into one campaign run.

    Build one explicitly from :class:`FaultSpec` values, or draw a
    seeded plan over a scenario count with :meth:`seeded`.  Thread it
    through :class:`repro.campaigns.runner.CampaignRunner` via the
    ``fault_plan`` argument; the CLI surface is
    ``repro campaign chaos``.

    Example::

        plan = FaultPlan.seeded(total_scenarios=8, kinds=("raise",),
                                seed=7)
        CampaignRunner(jobs=2, timeout_s=30.0,
                       fault_plan=plan).run(matrix)
    """

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    @classmethod
    def seeded(cls, total_scenarios: int,
               kinds: Sequence[str] = FAULT_KINDS, seed: int = 0,
               hang_s: float = 3600.0, slow_s: float = 0.25,
               times: int = 0) -> "FaultPlan":
        """Draw one fault of each requested kind, deterministically.

        Targets are keyed on ``(seed, kind)`` via splitmix64, so the
        same arguments always build the same plan.  ``times`` follows
        :class:`FaultSpec` semantics (default 0 = every attempt, the
        quarantine-forcing setting); ``slow`` and ``hang`` faults are
        always transient (``times=1``) so a chaos run pays one delay
        or one watchdog deadline, not one per retry.
        """
        if total_scenarios < 1:
            raise ValueError("total_scenarios must be >= 1")
        faults = []
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; "
                    f"known: {sorted(FAULT_KINDS)}")
            key = mix64(seed, FAULT_KINDS.index(kind))
            index = key % total_scenarios
            delay = {"hang": hang_s, "slow": slow_s}.get(kind, 0.0)
            faults.append(FaultSpec(
                kind=kind, scenario_index=index,
                times=1 if kind in ("slow", "hang") else times,
                delay_s=delay, seed=key))
        return cls(faults=tuple(faults))

    # -- lookups ------------------------------------------------------

    def execution_fault(self, scenario_index: int
                        ) -> Optional[FaultSpec]:
        """The execution fault targeting ``scenario_index``, if any."""
        for spec in self.faults:
            if spec.kind in EXECUTION_KINDS and \
                    spec.scenario_index == scenario_index:
                return spec
        return None

    @property
    def store_faults(self) -> Tuple[FaultSpec, ...]:
        """The checkpoint-store faults in this plan."""
        return tuple(s for s in self.faults if s.kind in STORE_KINDS)

    @property
    def requires_supervision(self) -> bool:
        """Whether any fault kills/wedges its worker process — such
        plans only make sense under supervised pool execution."""
        return any(s.kind in PROCESS_KINDS for s in self.faults)

    # -- store-fault application --------------------------------------

    def apply_store_faults(self, directory: str) -> List[str]:
        """Damage the checkpoint files under ``directory`` as the
        plan's store faults dictate.  Returns one description per
        fault (including no-ops when a target record is absent)."""
        notes = []
        for spec in self.store_faults:
            if spec.kind == "corrupt-record":
                notes.append(_corrupt_record(directory, spec))
            else:
                notes.append(_truncate_file(directory, spec))
        return notes


# --------------------------------------------------------------------
# The chaos wall
# --------------------------------------------------------------------

def _summary_bytes(runner, matrix) -> bytes:
    runner.report(matrix)
    from repro.campaigns.checkpoint import CampaignStore
    store = CampaignStore(matrix, cache_dir=runner.cache_dir)
    with open(store.summary_path, "rb") as fh:
        return fh.read()


def chaos_wall(matrix, kinds: Optional[Iterable[str]] = None,
               seed: int = 0, jobs: int = 2,
               timeout_s: float = 30.0, max_retries: int = 2,
               retry_backoff_s: float = 0.01, hang_s: Optional[float]
               = None, cache_root: Optional[str] = None,
               emit=None) -> dict:
    """Prove fault-by-fault that resumed campaigns recover exactly.

    For each fault kind: run ``matrix`` with that fault injected
    (supervised — timeouts, retries, quarantine), then resume
    fault-free, and compare the resumed summary byte-for-byte against
    a fault-free reference run.  Returns::

        {"passed": bool, "results": [
            {"kind", "passed", "identical", "resumed_complete",
             "quarantined_during_fault", "notes"}, ...]}

    This is the harness behind ``repro campaign chaos`` and the CI
    chaos-smoke job.
    """
    import tempfile

    from repro.campaigns.runner import CampaignRunner

    def _say(line: str) -> None:
        if emit is not None:
            emit(line)

    kinds = tuple(kinds) if kinds is not None else FAULT_KINDS
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; "
                f"known: {sorted(FAULT_KINDS)}")
    hang_s = hang_s if hang_s is not None else max(10.0 * timeout_s,
                                                   300.0)
    with tempfile.TemporaryDirectory(dir=cache_root) as root:
        _say(f"chaos {matrix.name}: fault-free reference run...")
        reference = CampaignRunner(
            jobs=jobs, cache_dir=os.path.join(root, "reference"))
        if not reference.run(matrix).done:
            raise RuntimeError("reference run did not complete")
        want = _summary_bytes(reference, matrix)

        results = []
        for kind in kinds:
            plan = FaultPlan.seeded(
                matrix.total_scenarios(), kinds=(kind,), seed=seed,
                hang_s=hang_s)
            cache = os.path.join(root, f"fault-{kind}")
            _say(f"chaos {matrix.name}: injecting {kind} "
                 f"(scenario #{plan.faults[0].scenario_index})...")
            faulted = CampaignRunner(
                jobs=jobs, timeout_s=timeout_s,
                max_retries=max_retries,
                retry_backoff_s=retry_backoff_s, fault_plan=plan,
                cache_dir=cache, progress=emit)
            status = faulted.run(matrix)
            quarantined = [e["index"] for e in
                           faulted._store(matrix).load_quarantine()]
            _say(f"chaos {matrix.name}: {kind} run left "
                 f"{status.completed}/{status.total} complete, "
                 f"{status.quarantined} quarantined; resuming "
                 f"fault-free...")
            resumed = CampaignRunner(jobs=jobs, timeout_s=timeout_s,
                                     max_retries=max_retries,
                                     retry_backoff_s=retry_backoff_s,
                                     cache_dir=cache)
            final = resumed.run(matrix)
            got = _summary_bytes(resumed, matrix)
            result = {
                "kind": kind,
                "resumed_complete": bool(final.done
                                         and final.quarantined == 0),
                "identical": got == want,
                "quarantined_during_fault": quarantined,
                "notes": "",
            }
            result["passed"] = (result["resumed_complete"]
                                and result["identical"])
            if not result["identical"]:
                result["notes"] = "resumed summary differs from " \
                    "fault-free reference"
            elif not result["resumed_complete"]:
                result["notes"] = "resume left scenarios pending or " \
                    "quarantined"
            _say(f"chaos {matrix.name}: {kind} "
                 f"{'PASS' if result['passed'] else 'FAIL'}"
                 + (f" ({result['notes']})" if result["notes"] else ""))
            results.append(result)
    return {"passed": all(r["passed"] for r in results),
            "results": results}
