"""Resumable campaign checkpoints: append-only JSONL record stores.

Each campaign gets a directory under ``{cache_dir}/campaigns/`` keyed
by the matrix's content digest, holding:

* ``manifest.json`` — the matrix definition and scenario count.
* ``results-*.jsonl`` — one line per completed scenario, appended and
  flushed as each finishes; the checkpoint.  Every concurrent writer
  (one per shard spec) appends to its own file, and readers union all
  of them, deduplicating by scenario id — which is safe precisely
  because scenario execution is deterministic.
* ``columns-*.npz`` — sealed column chunks, when the campaign ran on
  the columnar backend (:mod:`repro.campaigns.colstore`).  Readers
  union both formats, so batch and served runs resume each other.
* ``quarantine.jsonl`` — scenarios the supervised runner gave up on
  after exhausting retries, with their captured tracebacks (see
  :mod:`repro.campaigns.runner`).
* ``summary.json`` — the tidy report (written by ``report``).

A killed run loses only the scenarios whose records had not yet been
appended — the ones in flight, plus (in pool mode) any finished in a
worker but not yet harvested by the parent — and leaves at most one
torn trailing line, which the loader skips; rerunning the campaign
then recomputes exactly the scenarios whose records never made it to
disk.  Completed-scenario records survive any
interruption, and the eventual aggregate is byte-identical to an
uninterrupted run because records carry only deterministic content
(timings are stored but excluded from summaries).

**Integrity**: every record carries a ``crc`` field — a CRC-32 of its
canonical JSON minus the field itself — so bit rot, partial flushes
and editor accidents are *detected*, not silently aggregated.
:meth:`ResultStore.scan` classifies every damaged line (torn tail,
invalid JSON, schema violation, CRC mismatch); the loader skips
damaged records with a :class:`CheckpointCorruptionWarning`, which
requeues the affected scenario on the next run instead of crashing
it.  ``repro campaign verify`` exposes the same scan on the CLI.

The store abstraction is split in two: :class:`ResultStore` holds
everything readers need (paths, union scan across record formats,
quarantine) and backends supply only a :meth:`ResultStore.writer`.
:class:`CampaignStore` is the JSONL backend; the columnar backend
lives in :mod:`repro.campaigns.colstore`.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass
from typing import IO, Any, Dict, List, Optional, Tuple

from repro.experiments.api import (_canonical, _decode_metrics,
                                   _canonical_json)

__all__ = ["CampaignStore", "CheckpointCorruptionWarning",
           "CheckpointIssue", "ResultStore", "make_record",
           "record_crc", "scan_jsonl", "write_json_atomic"]

#: Keys every checkpoint record must carry to be loadable.
_REQUIRED_KEYS = ("scenario_id", "index", "seed", "params", "metrics",
                  "elapsed_s")


class CheckpointCorruptionWarning(UserWarning):
    """A damaged (non-torn) checkpoint record was skipped.

    The affected scenario is simply requeued — determinism makes
    recomputation safe — but corruption is worth a warning where a
    torn trailing line (the expected kill artifact) is not.
    """


def write_json_atomic(path: str, payload: Any) -> None:
    """Write ``payload`` as pretty sorted JSON via tmp-file + rename,
    so readers never observe a torn document."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def record_crc(record: Dict[str, Any]) -> str:
    """CRC-32 (8 hex chars) of a record's canonical JSON, excluding
    any ``crc`` field — the value :func:`make_record` embeds and
    :meth:`ResultStore.scan` verifies."""
    payload = {k: v for k, v in record.items() if k != "crc"}
    return format(zlib.crc32(_canonical_json(payload).encode()),
                  "08x")


def make_record(scenario, metrics: Dict[str, float],
                elapsed_s: float) -> Dict[str, Any]:
    """Build one checkpoint record (CRC included) for a completed
    scenario."""
    record = {
        "scenario_id": scenario.scenario_id,
        "index": scenario.index,
        "seed": scenario.seed,
        "params": _canonical(scenario.params),
        "metrics": _canonical(metrics),
        "elapsed_s": round(float(elapsed_s), 6),
    }
    record["crc"] = record_crc(record)
    return record


@dataclass(frozen=True)
class CheckpointIssue:
    """One damaged line or chunk found by :meth:`ResultStore.scan`.

    ``kind`` is ``"torn"`` (unparseable *trailing* line or highest-
    sequence column chunk — the normal artifact of a killed writer),
    ``"json"`` (unparseable interior line), ``"chunk"`` (unreadable
    interior column chunk), ``"schema"`` (parseable but not a
    record), or ``"crc"`` (record whose checksum does not match its
    content).  ``line_no`` is 1-based for JSONL lines and the 1-based
    row number for column-chunk rows (0 when the whole chunk is
    damaged).
    """

    path: str
    line_no: int
    kind: str
    detail: str = ""


def _classify_line(line: str, is_last: bool
                   ) -> Tuple[Optional[Dict[str, Any]], Optional[str],
                              str]:
    """Parse one record line into ``(record, kind, detail)``.

    Exactly one of ``record`` / ``kind`` is set.  CRC and schema
    checks run on the *raw* parsed dict, before metric decoding
    rewrites nulls into NaN (which would break re-canonicalizing
    the bytes the writer hashed).
    """
    try:
        record = json.loads(line)
    except ValueError as exc:
        return None, ("torn" if is_last else "json"), str(exc)
    if not isinstance(record, dict) or \
            any(k not in record for k in _REQUIRED_KEYS) or \
            not isinstance(record["metrics"], dict):
        return None, "schema", "not a checkpoint record"
    if "crc" in record and record["crc"] != record_crc(record):
        return None, "crc", (f"stored {record['crc']}, computed "
                             f"{record_crc(record)}")
    try:
        record["metrics"] = _decode_metrics(record["metrics"])
    except (ValueError, KeyError, TypeError) as exc:
        return None, "schema", f"undecodable metrics: {exc}"
    return record, None, ""


def _jsonl_files(directory: str) -> List[str]:
    """The JSONL record files under a campaign directory, sorted."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith("results-") and name.endswith(".jsonl"))


def scan_jsonl(directory: str
               ) -> Tuple[Dict[str, Dict[str, Any]],
                          List[CheckpointIssue]]:
    """Read every ``results-*.jsonl`` file under ``directory``,
    classifying damage line by line.

    Returns ``(records, issues)``: valid records keyed by scenario id
    (first parsed record per id wins — duplicates across files are
    byte-identical by determinism) and one :class:`CheckpointIssue`
    per damaged line.  Records lacking a ``crc`` field
    (pre-integrity checkpoints) still load — they simply have nothing
    to verify against.
    """
    records: Dict[str, Dict[str, Any]] = {}
    issues: List[CheckpointIssue] = []
    for path in _jsonl_files(directory):
        with open(path) as fh:
            lines = fh.readlines()
        occupied = [i for i, ln in enumerate(lines) if ln.strip()]
        for line_no in occupied:
            record, kind, detail = _classify_line(
                lines[line_no].strip(),
                is_last=line_no == occupied[-1])
            if record is not None:
                records.setdefault(record["scenario_id"], record)
            else:
                issues.append(CheckpointIssue(
                    path=path, line_no=line_no + 1, kind=kind,
                    detail=detail))
    return records, issues


class ResultStore:
    """The on-disk state of one campaign, independent of the record
    format its writer produces.

    Reading is *union* across formats: :meth:`scan` merges JSONL
    records with sealed column chunks, so a campaign started on one
    backend resumes seamlessly on the other and ``status``/``report``
    never care how records landed on disk.  Subclasses supply only
    :meth:`writer`.

    Example::

        store = CampaignStore(matrix, cache_dir=".repro-cache")
        store.ensure()
        with store.writer("0of1") as out:
            out.append(make_record(scenario, metrics, elapsed))
        store.completed_ids()
    """

    def __init__(self, matrix, cache_dir: str = ".repro-cache"):
        self.matrix = matrix
        self.directory = os.path.join(
            cache_dir, "campaigns",
            f"{matrix.name}-{matrix.digest()}")

    @property
    def manifest_path(self) -> str:
        """Path of the matrix-definition manifest."""
        return os.path.join(self.directory, "manifest.json")

    @property
    def summary_path(self) -> str:
        """Path the tidy report is written to."""
        return os.path.join(self.directory, "summary.json")

    @property
    def quarantine_path(self) -> str:
        """Path of the poison-scenario quarantine JSONL."""
        return os.path.join(self.directory, "quarantine.jsonl")

    def ensure(self) -> None:
        """Create the campaign directory and manifest if missing."""
        os.makedirs(self.directory, exist_ok=True)
        if not os.path.exists(self.manifest_path):
            manifest = dict(self.matrix.to_manifest())
            manifest["digest"] = self.matrix.digest()
            manifest["total_scenarios"] = \
                self.matrix.total_scenarios()
            write_json_atomic(self.manifest_path, manifest)

    # -- writing ------------------------------------------------------

    def writer(self, label: str):
        """Open the append-only record sink for one writer label.

        One label (normally the shard spec, e.g. ``"2of8"``) must have
        at most one live writer; distinct labels may append
        concurrently from different processes or machines sharing the
        cache directory.  Backends return their own context-manager
        writer type.
        """
        raise NotImplementedError

    # -- reading ------------------------------------------------------

    def scan(self) -> Tuple[Dict[str, Dict[str, Any]],
                            List[CheckpointIssue]]:
        """Read every record in the directory — JSONL lines *and*
        sealed column chunks — classifying damage as it goes.

        Returns ``(records, issues)`` with records keyed by scenario
        id; duplicates across files and formats keep the first parsed
        copy (byte-identical by determinism, so the choice cannot
        matter).  JSONL records win ties because the columnar
        writer's tail file *is* JSONL — a record seen there is at
        least as fresh as its sealed copy.
        """
        records, issues = scan_jsonl(self.directory)
        from repro.campaigns.colstore import scan_chunks
        chunk_records, chunk_issues = scan_chunks(self.directory)
        for record in chunk_records:
            records.setdefault(record["scenario_id"], record)
        issues.extend(chunk_issues)
        return records, issues

    def load_records(self) -> Dict[str, Dict[str, Any]]:
        """All loadable records, keyed by scenario id.

        Torn trailing lines and torn trailing chunks (from a killed
        writer) are silently dropped; corrupt interior damage (bad
        JSON, unreadable chunk, schema, CRC) is dropped with a
        :class:`CheckpointCorruptionWarning` — either way the
        affected scenario is recomputed on the next run instead of
        crashing the read.  Duplicate ids (overlapping shard specs,
        or a record present both in a chunk and the writer tail) keep
        the first parsed record; determinism guarantees any duplicate
        carries identical content anyway.
        """
        records, issues = self.scan()
        damaged = [i for i in issues if i.kind != "torn"]
        if damaged:
            heads = "; ".join(
                f"{os.path.basename(i.path)}:{i.line_no} [{i.kind}]"
                for i in damaged[:3])
            warnings.warn(
                f"{self.matrix.name}: skipped {len(damaged)} corrupt "
                f"checkpoint record(s) ({heads}); the affected "
                f"scenarios will be recomputed",
                CheckpointCorruptionWarning, stacklevel=2)
        return records

    def completed_ids(self) -> set:
        """Scenario ids that already have a checkpointed record."""
        return set(self.load_records())

    # -- quarantine ---------------------------------------------------

    def append_quarantine(self, entry: Dict[str, Any]) -> None:
        """Durably append one poison-scenario entry to
        ``quarantine.jsonl`` (open-append-fsync-close, so entries
        survive the same kills checkpoint records do)."""
        self.ensure()
        with open(self.quarantine_path, "a") as fh:
            fh.write(_canonical_json(_canonical(entry)))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())

    def load_quarantine(self) -> List[Dict[str, Any]]:
        """The quarantine entries, deduplicated and deterministically
        ordered.

        Later entries for the same scenario id win (a scenario can be
        re-quarantined by a later run with a fresher traceback), and
        the result is sorted by scenario index — so two runs that
        quarantine the same scenarios list them identically regardless
        of execution order.  Damaged lines are skipped like checkpoint
        lines.
        """
        entries: Dict[str, Dict[str, Any]] = {}
        if not os.path.exists(self.quarantine_path):
            return []
        with open(self.quarantine_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    sid = entry["scenario_id"]
                    entry["index"]
                except (ValueError, KeyError, TypeError):
                    continue
                if not isinstance(entry, dict):
                    continue
                entries[sid] = entry
        return sorted(entries.values(), key=lambda e: e["index"])

    def quarantined_ids(self) -> set:
        """Scenario ids currently in quarantine."""
        return {e["scenario_id"] for e in self.load_quarantine()}

    def clear_quarantine(self) -> None:
        """Drop the quarantine (a rerun will retry those scenarios)."""
        try:
            os.remove(self.quarantine_path)
        except FileNotFoundError:
            pass


class CampaignStore(ResultStore):
    """The JSONL record backend: one flushed line per scenario.

    This is the default backend — simplest possible durability (every
    record is one fsynced line) at the cost of JSON-parsing every
    record back on each scan.  Large campaigns should prefer the
    columnar backend (:class:`repro.campaigns.colstore.ColumnStore`),
    which the runner selects via ``store="columnar"``.
    """

    def writer(self, label: str) -> "RecordWriter":
        """Open the append-only JSONL record file for ``label``."""
        self.ensure()
        path = os.path.join(self.directory,
                            f"results-{label}.jsonl")
        return RecordWriter(path)


class RecordWriter:
    """Append-and-flush JSONL writer (context manager).

    Records become durable one line at a time: each ``append`` writes
    a full line and flushes, so a kill loses at most the scenario in
    flight.  Reopening after a kill first *truncates* any torn
    trailing line (the fragment holds an incomplete record that would
    be skipped anyway), so it can neither swallow the next record
    appended nor linger as a bogus interior line tripping corruption
    warnings forever after.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO[str]] = None

    @staticmethod
    def _ends_mid_line(path: str) -> bool:
        try:
            with open(path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() == 0:
                    return False
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) != b"\n"
        except OSError:
            return False

    @staticmethod
    def _drop_torn_tail(path: str) -> None:
        with open(path, "rb+") as fh:
            data = fh.read()
            keep = data.rfind(b"\n") + 1      # 0 when no newline
            fh.truncate(keep)

    def __enter__(self) -> "RecordWriter":
        if self._ends_mid_line(self.path):
            self._drop_torn_tail(self.path)
        self._fh = open(self.path, "a")
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def append(self, record: Dict[str, Any]) -> None:
        """Write one record as a flushed JSONL line."""
        assert self._fh is not None, "writer used outside `with`"
        self._fh.write(_canonical_json(record))
        self._fh.write("\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
