"""Resumable campaign checkpoints: append-only JSONL record stores.

Each campaign gets a directory under ``{cache_dir}/campaigns/`` keyed
by the matrix's content digest, holding:

* ``manifest.json`` — the matrix definition and scenario count.
* ``results-*.jsonl`` — one line per completed scenario, appended and
  flushed as each finishes; the checkpoint.  Every concurrent writer
  (one per shard spec) appends to its own file, and readers union all
  of them, deduplicating by scenario id — which is safe precisely
  because scenario execution is deterministic.
* ``summary.json`` — the tidy report (written by ``report``).

A killed run loses only the scenarios whose records had not yet been
appended — the ones in flight, plus (in pool mode) any finished in a
worker but not yet harvested by the parent — and leaves at most one
torn trailing line, which the loader skips; rerunning the campaign
then recomputes exactly the scenarios whose records never made it to
disk.  Completed-scenario records survive any
interruption, and the eventual aggregate is byte-identical to an
uninterrupted run because records carry only deterministic content
(timings are stored but excluded from summaries).
"""

from __future__ import annotations

import json
import os
from typing import IO, Any, Dict, List, Optional

from repro.experiments.api import (_canonical, _decode_metrics,
                                   _canonical_json)

__all__ = ["CampaignStore", "make_record", "write_json_atomic"]


def write_json_atomic(path: str, payload: Any) -> None:
    """Write ``payload`` as pretty sorted JSON via tmp-file + rename,
    so readers never observe a torn document."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def make_record(scenario, metrics: Dict[str, float],
                elapsed_s: float) -> Dict[str, Any]:
    """Build one checkpoint record for a completed scenario."""
    return {
        "scenario_id": scenario.scenario_id,
        "index": scenario.index,
        "seed": scenario.seed,
        "params": _canonical(scenario.params),
        "metrics": _canonical(metrics),
        "elapsed_s": round(float(elapsed_s), 6),
    }


class CampaignStore:
    """The on-disk state of one campaign (records + manifest).

    Example::

        store = CampaignStore(matrix, cache_dir=".repro-cache")
        store.ensure()
        with store.writer("0of1") as out:
            out.append(make_record(scenario, metrics, elapsed))
        store.completed_ids()
    """

    def __init__(self, matrix, cache_dir: str = ".repro-cache"):
        self.matrix = matrix
        self.directory = os.path.join(
            cache_dir, "campaigns",
            f"{matrix.name}-{matrix.digest()}")

    @property
    def manifest_path(self) -> str:
        """Path of the matrix-definition manifest."""
        return os.path.join(self.directory, "manifest.json")

    @property
    def summary_path(self) -> str:
        """Path the tidy report is written to."""
        return os.path.join(self.directory, "summary.json")

    def ensure(self) -> None:
        """Create the campaign directory and manifest if missing."""
        os.makedirs(self.directory, exist_ok=True)
        if not os.path.exists(self.manifest_path):
            manifest = dict(self.matrix.to_manifest())
            manifest["digest"] = self.matrix.digest()
            manifest["total_scenarios"] = \
                self.matrix.total_scenarios()
            write_json_atomic(self.manifest_path, manifest)

    # -- writing ------------------------------------------------------

    def writer(self, label: str) -> "RecordWriter":
        """Open the append-only record file for one writer label.

        One label (normally the shard spec, e.g. ``"2of8"``) must have
        at most one live writer; distinct labels may append
        concurrently from different processes or machines sharing the
        cache directory.
        """
        self.ensure()
        path = os.path.join(self.directory,
                            f"results-{label}.jsonl")
        return RecordWriter(path)

    # -- reading ------------------------------------------------------

    def _record_files(self) -> List[str]:
        if not os.path.isdir(self.directory):
            return []
        return sorted(
            os.path.join(self.directory, name)
            for name in os.listdir(self.directory)
            if name.startswith("results-") and name.endswith(".jsonl"))

    def load_records(self) -> Dict[str, Dict[str, Any]]:
        """All completed records, keyed by scenario id.

        Torn trailing lines (from a killed writer) and duplicate ids
        (from overlapping shard specs) are silently dropped — the
        first parsed record for an id wins, and determinism guarantees
        any duplicate would carry identical content anyway.
        """
        records: Dict[str, Dict[str, Any]] = {}
        for path in self._record_files():
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        sid = record["scenario_id"]
                        record["metrics"] = _decode_metrics(
                            record["metrics"])
                    except (ValueError, KeyError, TypeError):
                        continue      # torn write; will be re-run
                    records.setdefault(sid, record)
        return records

    def completed_ids(self) -> set:
        """Scenario ids that already have a checkpointed record."""
        return set(self.load_records())


class RecordWriter:
    """Append-and-flush JSONL writer (context manager).

    Records become durable one line at a time: each ``append`` writes
    a full line and flushes, so a kill loses at most the scenario in
    flight.  Reopening after a kill first terminates any torn trailing
    line, so the fragment cannot swallow the next record appended.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO[str]] = None

    @staticmethod
    def _ends_mid_line(path: str) -> bool:
        try:
            with open(path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() == 0:
                    return False
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) != b"\n"
        except OSError:
            return False

    def __enter__(self) -> "RecordWriter":
        terminate = self._ends_mid_line(self.path)
        self._fh = open(self.path, "a")
        if terminate:
            self._fh.write("\n")
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def append(self, record: Dict[str, Any]) -> None:
        """Write one record as a flushed JSONL line."""
        assert self._fh is not None, "writer used outside `with`"
        self._fh.write(_canonical_json(record))
        self._fh.write("\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
