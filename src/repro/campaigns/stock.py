"""Stock campaigns: the matrices shipped with the toolkit.

Three registered campaigns cover the scales the paper's claims live
at:

* ``smoke-tiny`` — 8 scenarios; the CI smoke matrix and the
  kill-and-resume test fixture.  Seconds on one core.
* ``paper-matrix`` — the full regime cross of the figure/table
  reproductions: every protocol x channel model x interference level
  x client count x SNR, replicated.  Minutes with a process pool.
* ``contention-scale`` — the production-scale sweep: >1000 scenarios
  pushing contention to 50 stations on the surrogate backend, the
  aggregate-throughput-bottleneck regime.
* ``contention-xl`` — extreme-density cells (250 and 1000 stations)
  on the slot-synchronous MAC engine (:mod:`repro.sim.slotmac`) with
  the saturated MAC workload; the scale the event-driven engine
  cannot reach in reasonable time.
* ``mesh-smoke`` / ``mesh-matrix`` — the mesh family over the
  :mod:`repro.experiments.mesh` experiment: hop count x protocol x
  shadowing spread x roaming speed across geometry-driven relay
  chains (hidden terminals and handoffs emerge from positions, not
  knobs).
* ``video-smoke`` / ``video-matrix`` — the video QoE family over the
  :mod:`repro.experiments.video` experiment: rateless-over-PPR vs
  plain ARQ across scenario x SNR x airtime budget (and Doppler in
  the matrix), each cell reporting both schemes' decodable-frame
  rate, rebuffer time and deadline misses.

The ``cell``-based campaigns run the Fig. 12 star topology; the mesh
campaigns run :class:`repro.sim.mesh.network.MeshNetwork`.  All use
the surrogate PHY backend; ``repro campaign list`` prints this
registry.  Any registered campaign can also be run under the chaos
harness (``repro campaign chaos`` / :mod:`repro.campaigns.faults`) —
``smoke-tiny`` is the CI chaos-smoke fixture.
"""

from __future__ import annotations

from typing import Dict, List

from repro.campaigns.matrix import Axis, CampaignMatrix

__all__ = ["register_campaign", "get_campaign", "campaign_names",
           "list_campaigns", "UnknownCampaignError"]


class UnknownCampaignError(KeyError):
    """The requested name is not in the campaign registry."""


_CAMPAIGNS: Dict[str, CampaignMatrix] = {}


def register_campaign(matrix: CampaignMatrix) -> CampaignMatrix:
    """Add a matrix to the campaign registry (idempotent by digest).

    Example::

        register_campaign(CampaignMatrix(name="mine",
                                         experiment="cell", ...))
    """
    existing = _CAMPAIGNS.get(matrix.name)
    if existing is not None and existing.digest() != matrix.digest():
        raise ValueError(
            f"campaign {matrix.name!r} already registered with a "
            f"different definition")
    _CAMPAIGNS[matrix.name] = matrix
    return matrix


def get_campaign(name: str) -> CampaignMatrix:
    """Look up a registered campaign matrix by name.

    Example::

        get_campaign("contention-scale").total_scenarios()   # >= 1000
    """
    try:
        return _CAMPAIGNS[name]
    except KeyError:
        raise UnknownCampaignError(
            f"unknown campaign {name!r}; available: "
            f"{campaign_names()}") from None


def campaign_names() -> List[str]:
    """All registered campaign names, sorted."""
    return sorted(_CAMPAIGNS)


def list_campaigns() -> List[CampaignMatrix]:
    """Registered matrices in :func:`campaign_names` order."""
    return [_CAMPAIGNS[name] for name in campaign_names()]


# --------------------------------------------------------------------
# Stock definitions
# --------------------------------------------------------------------

register_campaign(CampaignMatrix(
    name="smoke-tiny",
    experiment="cell",
    description="8-scenario CI smoke matrix (seconds, surrogate)",
    axes=(
        Axis("protocol", ("softrate", "rraa")),
        Axis("n_clients", (1, 2)),
        Axis("mean_snr_db", (12.0, 22.0)),
    ),
    base={"channel": "static", "duration": 0.05,
          "phy_backend": "surrogate"},
    seed=2009,
))

register_campaign(CampaignMatrix(
    name="paper-matrix",
    experiment="cell",
    description="protocol x channel x interference x N x SNR cross "
                "of the paper's regimes (360 scenarios)",
    axes=(
        Axis("protocol", ("softrate", "samplerate", "rraa", "snr",
                          "omniscient")),
        Axis("channel", ("walking", "static", "fading")),
        Axis("carrier_sense_prob", (1.0, 0.4)),
        Axis("n_clients", (1, 3)),
        Axis("mean_snr_db", (10.0, 16.0, 22.0)),
    ),
    base={"duration": 0.25, "phy_backend": "surrogate"},
    replicates=2,
    seed=13,
))

register_campaign(CampaignMatrix(
    name="contention-scale",
    experiment="cell",
    description="contention sweep to 50 stations on the surrogate "
                "backend (1152 scenarios)",
    axes=(
        Axis("protocol", ("softrate", "samplerate", "rraa",
                          "snr-untrained")),
        Axis("n_clients", (1, 2, 4, 8, 16, 25, 35, 50)),
        Axis("carrier_sense_prob", (1.0, 0.8)),
        Axis("mean_snr_db", (12.0, 16.0, 22.0)),
    ),
    base={"channel": "static", "duration": 0.2, "trace_pool": 8,
          "phy_backend": "surrogate"},
    replicates=6,
    seed=50,
))

register_campaign(CampaignMatrix(
    name="contention-xl",
    experiment="cell",
    description="extreme-density cells (250/1000 stations) on the "
                "slot-synchronous MAC engine (16 scenarios)",
    axes=(
        Axis("protocol", ("softrate", "rraa")),
        Axis("n_clients", (250, 1000)),
        Axis("mean_snr_db", (12.0, 22.0)),
    ),
    base={"channel": "static", "duration": 0.05, "trace_pool": 8,
          "workload": "mac", "mac_engine": "slot",
          "phy_backend": "surrogate"},
    replicates=2,
    seed=71,
))

register_campaign(CampaignMatrix(
    name="mesh-smoke",
    experiment="mesh",
    description="8-scenario mesh CI smoke matrix (seconds, surrogate)",
    axes=(
        Axis("protocol", ("softrate", "rraa")),
        Axis("shadowing_sigma_db", (0.0, 6.0)),
        Axis("speed_mps", (0.0, 30.0)),
    ),
    base={"n_relays": 2, "duration": 0.04,
          "phy_backend": "surrogate"},
    seed=29,
))

register_campaign(CampaignMatrix(
    name="video-smoke",
    experiment="video",
    description="8-scenario video QoE CI smoke matrix (seconds, "
                "surrogate)",
    axes=(
        Axis("scenario", ("fading", "walking")),
        Axis("mean_snr_db", (7.0, 8.0)),
        Axis("budget_factor", (1.5, 2.0)),
    ),
    base={"workload": "generated", "video_duration": 0.4,
          "video_bitrate_bps": 1.2e5, "phy_backend": "surrogate"},
    seed=2010,
))

register_campaign(CampaignMatrix(
    name="video-matrix",
    experiment="video",
    description="scenario x SNR x Doppler x airtime budget video QoE "
                "cross (72 scenarios)",
    axes=(
        Axis("scenario", ("fading", "walking")),
        Axis("mean_snr_db", (6.0, 7.0, 8.0)),
        Axis("doppler_hz", (200.0, 1000.0)),
        Axis("budget_factor", (1.5, 2.0, 3.0)),
    ),
    base={"workload": "generated", "video_duration": 0.8,
          "video_bitrate_bps": 1.2e5, "phy_backend": "surrogate"},
    replicates=2,
    seed=2011,
))

register_campaign(CampaignMatrix(
    name="mesh-matrix",
    experiment="mesh",
    description="hop count x protocol x shadowing x roaming speed "
                "over relay chains (324 scenarios)",
    axes=(
        Axis("protocol", ("softrate", "samplerate", "rraa",
                          "snr-untrained")),
        Axis("n_relays", (2, 3, 4)),
        Axis("shadowing_sigma_db", (0.0, 4.0, 8.0)),
        Axis("speed_mps", (0.0, 15.0, 30.0)),
    ),
    base={"duration": 0.12, "phy_backend": "surrogate"},
    replicates=3,
    seed=77,
))
