"""Columnar campaign results: sealed npz column chunks + a WAL tail.

Per-scenario JSONL is the right durability story but the wrong read
story at scale: summarizing a million-scenario campaign means a
million ``json.loads`` calls.  This module keeps the durability and
fixes the reads by storing results as **column chunks** —
``columns-{label}-{seq:08d}.npz`` files holding one numpy column per
record field (ids, indices, seeds, params JSON, elapsed, CRCs) plus a
dense ``(n_metrics, n_rows)`` value matrix with a presence mask — so
aggregation is a handful of vectorized reductions per chunk instead
of per-record parsing.

**Durability model (the WAL tail).**  Sealing a chunk only at a row
threshold would make a kill lose every buffered record, which is
*worse* than JSONL.  So the writer is a hybrid: every ``append`` also
writes the record as a flushed line to the backend's ordinary JSONL
tail file (``results-{label}.jsonl`` — byte-identical format to
:class:`repro.campaigns.checkpoint.RecordWriter`'s), and once
``chunk_records`` rows have accumulated they are sealed into an
atomically-renamed npz chunk and the tail is truncated.  A kill at
any instant therefore loses at most the record in flight:

* before a seal — the records live in the tail, which the union scan
  (:meth:`repro.campaigns.checkpoint.ResultStore.scan`) reads like
  any JSONL checkpoint;
* between seal and tail truncation — the records exist twice; the
  scan deduplicates by scenario id, which determinism makes safe;
* mid-seal — the ``os.replace`` never published the chunk, and the
  tail still holds everything.

**Integrity.**  Rows carry the same ``crc`` the JSONL format does
(over the record's canonical JSON), recomputed from the decoded
columns on load — so a bit flipped inside a chunk is detected per
row when the chunk still reads, and an unreadable chunk is
classified whole: the highest-sequence chunk per label is ``torn``
(the kill artifact — silently recomputed) and interior chunks are
``chunk`` (corruption — warned about, then recomputed), mirroring
the torn/interior split of JSONL lines.

**Streaming aggregation.**  :class:`StreamingSummary` folds metric
sums incrementally — vectorized over sealed chunks, per-record over
the tail — so a service can report live campaign-wide means without
materializing records.  Streamed means are monitoring output: final
summaries always come from
:meth:`repro.campaigns.runner.CampaignRunner.report`, which fixes
canonical scenario order so resumed runs stay byte-identical.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.campaigns.checkpoint import (CheckpointIssue, ResultStore,
                                        record_crc, scan_jsonl)
from repro.experiments.api import _canonical_json, _decode_metrics

__all__ = ["ColumnStore", "ColumnChunkWriter", "StreamingSummary",
           "CHUNK_SCHEMA", "DEFAULT_CHUNK_RECORDS", "chunk_paths",
           "read_chunk", "scan_chunks", "write_chunk"]

#: Format marker embedded in every chunk file.
CHUNK_SCHEMA = "repro-colstore/1"

#: Rows buffered in the WAL tail before sealing a chunk.  Small
#: enough that a chunk seals every few seconds on real campaigns,
#: large enough that reads are vectorized in practice.
DEFAULT_CHUNK_RECORDS = 64

#: Arrays every chunk must carry to be loadable.
_CHUNK_KEYS = ("schema", "scenario_id", "index", "seed",
               "seed_present", "params_json", "elapsed_s", "crc",
               "metric_names", "metric_values", "metric_present")

_CHUNK_RE = re.compile(
    r"^columns-(?P<label>.+)-(?P<seq>\d{8})\.npz$")


def chunk_paths(directory: str) -> List[str]:
    """Sealed chunk files under ``directory``, sorted by
    ``(label, sequence)`` so reads are deterministic."""
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        match = _CHUNK_RE.match(name)
        if match is not None:
            found.append((match.group("label"),
                          int(match.group("seq")),
                          os.path.join(directory, name)))
    return [path for _label, _seq, path in sorted(found)]


def _metrics_columns(records: List[Dict[str, Any]]
                     ) -> Tuple[List[str], np.ndarray, np.ndarray]:
    """Build the ``(names, values, present)`` metric columns.

    ``values`` is float64 with one row per metric name (sorted union
    over the chunk) and NaN where absent; ``present`` is the boolean
    mask distinguishing a *missing* metric from a legitimately-NaN
    one — the distinction the bit-exact round trip depends on.
    """
    names = sorted({key for record in records
                    for key in record["metrics"]})
    values = np.full((len(names), len(records)), np.nan,
                     dtype=np.float64)
    present = np.zeros((len(names), len(records)), dtype=bool)
    positions = {name: i for i, name in enumerate(names)}
    for j, record in enumerate(records):
        decoded = _decode_metrics(record["metrics"])
        for key, value in decoded.items():
            i = positions[key]
            values[i, j] = value
            present[i, j] = True
    return names, values, present


def write_chunk(path: str, records: List[Dict[str, Any]]) -> None:
    """Seal ``records`` into one npz column chunk, atomically.

    Records are checkpoint records as built by
    :func:`repro.campaigns.checkpoint.make_record` (canonical or
    decoded metrics both accepted).  The file appears at ``path`` via
    tmp-file + rename, so readers never observe a half-written chunk.
    """
    if not records:
        raise ValueError("cannot seal an empty chunk")
    names, values, present = _metrics_columns(records)
    columns = {
        "schema": np.array([CHUNK_SCHEMA]),
        "scenario_id": np.array(
            [r["scenario_id"] for r in records]),
        "index": np.array([int(r["index"]) for r in records],
                          dtype=np.int64),
        "seed": np.array(
            [0 if r["seed"] is None else int(r["seed"])
             for r in records], dtype=np.int64),
        "seed_present": np.array(
            [r["seed"] is not None for r in records], dtype=bool),
        "params_json": np.array(
            [_canonical_json(r["params"]) for r in records]),
        "elapsed_s": np.array(
            [float(r["elapsed_s"]) for r in records],
            dtype=np.float64),
        "crc": np.array(
            [r.get("crc") or record_crc(r) for r in records]),
        "metric_names": np.array(names),
        "metric_values": values,
        "metric_present": present,
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **columns)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def _chunk_rows(data) -> Iterator[Dict[str, Any]]:
    """Reconstruct checkpoint records from loaded chunk arrays.

    Metrics come back *decoded* (NaN/inf floats), matching what
    :func:`repro.campaigns.checkpoint.scan_jsonl` returns.
    """
    names = [str(n) for n in data["metric_names"]]
    values = data["metric_values"]
    present = data["metric_present"]
    seeds = data["seed"]
    seed_present = data["seed_present"]
    for j in range(len(data["scenario_id"])):
        metrics = {names[i]: float(values[i, j])
                   for i in range(len(names)) if present[i, j]}
        yield {
            "scenario_id": str(data["scenario_id"][j]),
            "index": int(data["index"][j]),
            "seed": int(seeds[j]) if seed_present[j] else None,
            "params": json.loads(str(data["params_json"][j])),
            "metrics": metrics,
            "elapsed_s": float(data["elapsed_s"][j]),
            "crc": str(data["crc"][j]),
        }


def read_chunk(path: str) -> List[Dict[str, Any]]:
    """Load every row of one chunk as checkpoint records, without
    damage classification (raises on an unreadable file)."""
    with np.load(path, allow_pickle=False) as data:
        return list(_chunk_rows(data))


def scan_chunks(directory: str
                ) -> Tuple[List[Dict[str, Any]],
                           List[CheckpointIssue]]:
    """Read every sealed chunk under ``directory``, classifying
    damage.

    Returns ``(records, issues)``.  An unreadable or schema-violating
    chunk produces one whole-file issue: kind ``"torn"`` when it is
    the highest-sequence chunk of its label (the artifact of a kill
    mid-seal being impossible aside, a torn *final* chunk is the
    benign case) and ``"chunk"`` otherwise.  A readable chunk is then
    verified row by row: rows whose recomputed CRC mismatches the
    stored one become ``"crc"`` issues and are skipped.
    """
    records: List[Dict[str, Any]] = []
    issues: List[CheckpointIssue] = []
    paths = chunk_paths(directory)
    last_of_label: Dict[str, str] = {}
    for path in paths:
        match = _CHUNK_RE.match(os.path.basename(path))
        last_of_label[match.group("label")] = path
    final_chunks = set(last_of_label.values())
    for path in paths:
        try:
            with np.load(path, allow_pickle=False) as data:
                missing = [k for k in _CHUNK_KEYS
                           if k not in data.files]
                if missing:
                    issues.append(CheckpointIssue(
                        path=path, line_no=0, kind="schema",
                        detail=f"chunk missing columns {missing}"))
                    continue
                schema = str(data["schema"][0])
                if schema != CHUNK_SCHEMA:
                    issues.append(CheckpointIssue(
                        path=path, line_no=0, kind="schema",
                        detail=f"unknown chunk schema {schema!r}"))
                    continue
                rows = list(_chunk_rows(data))
        except Exception as exc:
            kind = "torn" if path in final_chunks else "chunk"
            issues.append(CheckpointIssue(
                path=path, line_no=0, kind=kind,
                detail=f"unreadable chunk: {exc}"))
            continue
        for row_no, record in enumerate(rows):
            computed = record_crc(record)
            if record["crc"] != computed:
                issues.append(CheckpointIssue(
                    path=path, line_no=row_no + 1, kind="crc",
                    detail=(f"stored {record['crc']}, computed "
                            f"{computed}")))
                continue
            records.append(record)
    return records, issues


class StreamingSummary:
    """Incrementally folded campaign-wide metric means.

    Accepts per-record updates (:meth:`update`) and whole-column
    updates (:meth:`update_columns`), ignoring NaN values and
    ``*_digest`` identity metrics exactly like
    :func:`repro.analysis.aggregate.aggregate_metrics` does — so a
    live service can show converging means while chunks land.
    Streamed means are a monitoring surface: committed summaries are
    rebuilt in canonical scenario order by ``report()``.
    """

    def __init__(self):
        self.count = 0
        self._sums: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @staticmethod
    def _tracked(name: str) -> bool:
        return not name.endswith("_digest")

    def update(self, metrics: Dict[str, float]) -> None:
        """Fold one record's (decoded) metrics into the running
        sums."""
        self.count += 1
        for key, value in metrics.items():
            if not self._tracked(key) or value is None:
                continue
            value = float(value)
            if np.isnan(value):
                continue
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._counts[key] = self._counts.get(key, 0) + 1

    def update_columns(self, names: List[str], values: np.ndarray,
                       present: np.ndarray) -> None:
        """Fold one chunk's metric columns in, vectorized: one masked
        sum per metric instead of one dict walk per record."""
        self.count += int(values.shape[1]) if values.ndim == 2 else 0
        for i, name in enumerate(names):
            if not self._tracked(name):
                continue
            mask = present[i] & ~np.isnan(values[i])
            n = int(mask.sum())
            if n == 0:
                continue
            self._sums[name] = self._sums.get(name, 0.0) \
                + float(values[i][mask].sum())
            self._counts[name] = self._counts.get(name, 0) + n

    def aggregates(self) -> Dict[str, float]:
        """The running means, sorted by metric name."""
        return {name: self._sums[name] / self._counts[name]
                for name in sorted(self._sums)}


class ColumnStore(ResultStore):
    """The columnar record backend: WAL-tail JSONL + sealed npz
    chunks.

    Drop-in alternative to the JSONL
    :class:`repro.campaigns.checkpoint.CampaignStore` — the runner
    selects it via ``store="columnar"`` — with identical durability
    per record and vectorized aggregation over sealed chunks.
    Reading needs no mode switch at all: the base class's union scan
    already merges both formats.
    """

    def __init__(self, matrix, cache_dir: str = ".repro-cache",
                 chunk_records: int = DEFAULT_CHUNK_RECORDS):
        super().__init__(matrix, cache_dir=cache_dir)
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        self.chunk_records = int(chunk_records)

    def writer(self, label: str) -> "ColumnChunkWriter":
        """Open the chunk-sealing writer for ``label``."""
        self.ensure()
        return ColumnChunkWriter(self.directory, label,
                                 chunk_records=self.chunk_records)

    def stream_aggregates(self) -> StreamingSummary:
        """Fold the whole store into a :class:`StreamingSummary`:
        vectorized over sealed chunks, per-record over JSONL tails.
        Damaged chunks and lines are skipped silently — this is the
        monitoring path; ``verify`` is the audit path."""
        summary = StreamingSummary()
        for path in chunk_paths(self.directory):
            try:
                with np.load(path, allow_pickle=False) as data:
                    names = [str(n) for n in data["metric_names"]]
                    summary.update_columns(names,
                                           data["metric_values"],
                                           data["metric_present"])
            except Exception:
                continue
        tail_records, _issues = scan_jsonl(self.directory)
        for record in tail_records.values():
            summary.update(record["metrics"])
        return summary


class ColumnChunkWriter:
    """Context-manager record sink that seals column chunks.

    Every ``append`` first lands in the WAL tail (one flushed,
    fsynced JSONL line — durable immediately), then buffers; at
    ``chunk_records`` rows the buffer seals into an atomic npz chunk
    and the tail truncates.  On open, any records a previous
    (killed) writer left in the tail are sealed into their own chunk
    first, so the tail never accumulates across generations.
    """

    def __init__(self, directory: str, label: str,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS):
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        self.directory = directory
        self.label = label
        self.chunk_records = int(chunk_records)
        self.tail_path = os.path.join(directory,
                                      f"results-{label}.jsonl")
        self._buffer: List[Dict[str, Any]] = []
        self._fh = None
        self._seq = self._next_seq()

    def _tail_records(self) -> List[Dict[str, Any]]:
        """Valid records left in *this label's* tail file (damaged
        lines skipped — they hold nothing recoverable)."""
        from repro.campaigns.checkpoint import _classify_line
        records: List[Dict[str, Any]] = []
        with open(self.tail_path) as fh:
            lines = [ln.strip() for ln in fh if ln.strip()]
        for line_no, line in enumerate(lines):
            record, _kind, _detail = _classify_line(
                line, is_last=line_no == len(lines) - 1)
            if record is not None:
                records.append(record)
        return records

    def _next_seq(self) -> int:
        """First unused chunk sequence number for this label."""
        highest = -1
        for path in chunk_paths(self.directory):
            match = _CHUNK_RE.match(os.path.basename(path))
            if match.group("label") == self.label:
                highest = max(highest, int(match.group("seq")))
        return highest + 1

    def __enter__(self) -> "ColumnChunkWriter":
        from repro.campaigns.checkpoint import RecordWriter
        if RecordWriter._ends_mid_line(self.tail_path):
            RecordWriter._drop_torn_tail(self.tail_path)
        if os.path.exists(self.tail_path) and \
                os.path.getsize(self.tail_path) > 0:
            # A previous writer died with unsealed records: seal the
            # survivors now.  Records already sealed *and* still in
            # the tail (kill between seal and truncate) get sealed
            # twice; the union scan deduplicates by scenario id.
            leftovers = self._tail_records()
            if leftovers:
                self._buffer.extend(leftovers)
                self._seal()
            else:
                os.truncate(self.tail_path, 0)
        self._fh = open(self.tail_path, "a")
        return self

    def __exit__(self, *exc) -> None:
        if self._buffer:
            self._seal()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (tail line now, chunk later)."""
        assert self._fh is not None, "writer used outside `with`"
        self._fh.write(_canonical_json(record))
        self._fh.write("\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._buffer.append(record)
        if len(self._buffer) >= self.chunk_records:
            self._seal()

    def _seal(self) -> None:
        """Seal the buffer into the next chunk, then truncate the
        tail (its records are now durable in the chunk)."""
        path = os.path.join(
            self.directory,
            f"columns-{self.label}-{self._seq:08d}.npz")
        write_chunk(path, self._buffer)
        self._seq += 1
        self._buffer = []
        os.truncate(self.tail_path, 0)
        if self._fh is not None:
            # The append handle survives truncation ("a" mode writes
            # at EOF), but reposition explicitly for portability.
            self._fh.seek(0, os.SEEK_END)
