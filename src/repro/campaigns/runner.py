"""The sharded, resumable campaign runner and its tidy reports.

Execution model: a matrix expands to its canonical scenario list; a
*shard* is the subset with ``index % shards == shard_index`` (so N
independent invocations — processes or machines sharing a cache
directory — cover the matrix exactly).  Within a shard, scenarios that
already have a checkpoint record are skipped; the rest run serially or
over a process pool, and every completion is appended to the shard's
JSONL checkpoint immediately, so progress survives any interruption.

Because every scenario seeds its own RNGs from a derived seed, the
per-scenario results are bit-identical however the campaign is
executed — the property ``tests/campaigns/test_determinism.py`` pins.
Reports therefore never depend on execution history: ``report()``
rebuilds the same summary bytes from any complete record set.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    wait
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple)

from repro.analysis.aggregate import aggregate_metrics, group_rows
from repro.campaigns.checkpoint import (CampaignStore, make_record,
                                        write_json_atomic)
from repro.campaigns.matrix import CampaignMatrix, CampaignScenario
from repro.experiments.api import _canonical, execute_task

__all__ = ["CampaignRunner", "CampaignStatus", "parse_shard"]


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``I/N`` shard spec (0-based): ``"2/8"`` -> ``(2, 8)``."""
    index, sep, total = text.partition("/")
    try:
        shard = (int(index), int(total if sep else 1))
    except ValueError:
        raise ValueError(f"shard spec must be I/N, got {text!r}") \
            from None
    if shard[1] < 1 or not 0 <= shard[0] < shard[1]:
        raise ValueError(
            f"shard index out of range: {text!r} (need 0 <= I < N)")
    return shard


def _worker(task: Tuple[str, str, Dict[str, Any]]
            ) -> Tuple[Dict[str, float], float]:
    """Pool target: run one scenario, returning (metrics, elapsed)."""
    start = time.perf_counter()
    metrics = execute_task(*task)
    return metrics, time.perf_counter() - start


@dataclass(frozen=True)
class CampaignStatus:
    """Progress snapshot of one campaign (possibly mid-run)."""

    name: str
    digest: str
    total: int
    completed: int
    directory: str

    @property
    def pending(self) -> int:
        """Scenarios without a checkpoint record yet."""
        return self.total - self.completed

    @property
    def done(self) -> bool:
        """Whether every scenario has a record."""
        return self.completed >= self.total


class CampaignRunner:
    """Executes campaign matrices with checkpoints and sharding.

    Args:
        jobs: worker processes per invocation (1 = in-process).
        cache_dir: root of the ``.repro-cache`` tree; the campaign
            store lives under ``{cache_dir}/campaigns/``.
        shard: ``(index, total)`` — run only scenarios with
            ``index % total == shard_index``.  Distinct shards may run
            concurrently (other processes/machines on a shared cache
            dir); together they cover the matrix exactly.
        progress: optional callback fired per completed scenario with
            a one-line status string.

    Example::

        runner = CampaignRunner(jobs=4, shard=(0, 2))
        runner.run(get_campaign("contention-scale"))
    """

    def __init__(self, jobs: int = 1, cache_dir: str = ".repro-cache",
                 shard: Tuple[int, int] = (0, 1),
                 progress: Optional[Callable[[str], None]] = None):
        if shard[1] < 1 or not 0 <= shard[0] < shard[1]:
            raise ValueError(f"invalid shard {shard}")
        self.jobs = max(int(jobs), 1)
        self.cache_dir = cache_dir
        self.shard = (int(shard[0]), int(shard[1]))
        self.progress = progress

    # -- helpers ------------------------------------------------------

    def _store(self, matrix: CampaignMatrix) -> CampaignStore:
        return CampaignStore(matrix, cache_dir=self.cache_dir)

    def _emit(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def _status(self, matrix: CampaignMatrix, store: CampaignStore,
                current: Optional[set] = None,
                done: Optional[set] = None) -> CampaignStatus:
        # Count only records matching the *current* expansion:
        # scenario ids fold in experiment defaults and the surrogate
        # calibration fingerprint, so records can go stale (and get
        # recomputed) without the matrix digest changing.  Callers
        # that already expanded / read the store pass the sets in.
        if current is None:
            current = {s.scenario_id for s in matrix.expand()}
        if done is None:
            done = store.completed_ids()
        return CampaignStatus(
            name=matrix.name, digest=matrix.digest(),
            total=matrix.total_scenarios(),
            completed=len(current & done),
            directory=store.directory)

    # -- public API ---------------------------------------------------

    def status(self, matrix: CampaignMatrix) -> CampaignStatus:
        """Progress of ``matrix`` without running anything."""
        return self._status(matrix, self._store(matrix))

    def run(self, matrix: CampaignMatrix,
            limit: Optional[int] = None) -> CampaignStatus:
        """Run the matrix's pending scenarios (this runner's shard).

        Completed scenarios (checkpointed by any earlier or concurrent
        run) are never recomputed.  ``limit`` caps how many pending
        scenarios this call executes — useful for incremental runs.
        Returns the post-run status.
        """
        store = self._store(matrix)
        store.ensure()
        scenarios = matrix.expand()
        current = {s.scenario_id for s in scenarios}
        index, total = self.shard
        mine = [s for s in scenarios if s.index % total == index]
        done = store.completed_ids()
        pending = [s for s in mine if s.scenario_id not in done]
        if limit is not None:
            pending = pending[:max(limit, 0)]
        self._emit(f"{matrix.name}: {len(scenarios)} scenarios, "
                   f"shard {index}/{total} owns {len(mine)}, "
                   f"{len(pending)} to run")
        if not pending:
            return self._status(matrix, store, current=current,
                                done=done)

        label = f"{index}of{total}"
        with store.writer(label) as out:
            if self.jobs > 1:
                self._run_pool(pending, out)
            else:
                self._run_serial(pending, out)
        return self._status(matrix, store, current=current)

    def _record_done(self, out, scenario: CampaignScenario,
                     metrics: Dict[str, float], elapsed: float,
                     position: int, total: int) -> None:
        out.append(make_record(scenario, metrics, elapsed))
        self._emit(f"[{position}/{total}] scenario "
                   f"#{scenario.index} ({scenario.scenario_id}) "
                   f"done in {elapsed:.2f} s")

    def _run_serial(self, pending: Sequence[CampaignScenario],
                    out) -> None:
        for position, scenario in enumerate(pending, 1):
            task = (scenario.experiment, scenario.module,
                    scenario.params)
            metrics, elapsed = _worker(task)
            self._record_done(out, scenario, metrics, elapsed,
                              position, len(pending))

    def _run_pool(self, pending: Sequence[CampaignScenario],
                  out) -> None:
        workers = min(self.jobs, len(pending))
        position = 0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_worker, (s.experiment, s.module,
                                      s.params)): s
                for s in pending}
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    scenario = futures[future]
                    metrics, elapsed = future.result()
                    position += 1
                    self._record_done(out, scenario, metrics,
                                      elapsed, position,
                                      len(pending))

    def report(self, matrix: CampaignMatrix,
               group_by: Optional[Sequence[str]] = None,
               write: bool = True) -> Dict[str, Any]:
        """Build the campaign's tidy summary from its checkpoints.

        The summary contains one row per completed scenario — the
        varied parameters plus every metric — in canonical scenario
        order, campaign-wide metric means, and (optionally) grouped
        means over ``group_by`` parameters.  It is a pure function of
        the record *contents*: resumed, resharded and uninterrupted
        runs of the same matrix produce byte-identical summaries.

        When ``write`` is true the summary JSON is also stored at
        ``store.summary_path``.
        """
        store = self._store(matrix)
        records = store.load_records()
        varied = matrix.varied_parameters()
        rows: List[Dict[str, Any]] = []
        ordered_metrics: List[Dict[str, float]] = []
        for scenario in matrix.expand():
            record = records.get(scenario.scenario_id)
            if record is None:
                continue
            row: Dict[str, Any] = {"index": scenario.index,
                                   "scenario_id": scenario.scenario_id,
                                   "seed": scenario.seed}
            for name in varied:
                row[name] = _canonical(scenario.params.get(name))
            row.update(_canonical(record["metrics"]))
            rows.append(row)
            # Aggregation follows canonical scenario order (float
            # sums are order-sensitive), so resumed and uninterrupted
            # runs summarize to identical bytes.
            ordered_metrics.append(record["metrics"])

        # Identity digests (exact content hashes) ride in per-scenario
        # rows for the determinism wall, but a *mean* of hashes is
        # meaningless noise — keep them out of every averaged view.
        metric_names = sorted(
            {k for m in ordered_metrics for k in m
             if not k.endswith("_digest")})
        mean_inputs = [{k: v for k, v in m.items()
                        if k in set(metric_names)}
                       for m in ordered_metrics]
        summary: Dict[str, Any] = {
            "campaign": matrix.name,
            "experiment": matrix.experiment,
            "digest": matrix.digest(),
            "total_scenarios": matrix.total_scenarios(),
            "completed": len(rows),
            "varied": varied,
            "metrics": metric_names,
            "aggregates": _canonical(
                aggregate_metrics(mean_inputs)),
            "rows": rows,
        }
        if group_by:
            unknown = sorted(set(group_by) - set(varied) - {"seed"})
            if unknown:
                raise ValueError(
                    f"cannot group by {unknown}: not varied in "
                    f"{matrix.name} (varied: {varied})")
            summary["group_by"] = list(group_by)
            summary["groups"] = group_rows(rows, list(group_by),
                                           metric_names)
        if write:
            store.ensure()
            write_json_atomic(store.summary_path, summary)
        return summary
