"""The sharded, resumable, *supervised* campaign runner.

Execution model: a matrix expands to its canonical scenario list; a
*shard* is the subset with ``index % shards == shard_index`` (so N
independent invocations — processes or machines sharing a cache
directory — cover the matrix exactly).  Within a shard, scenarios that
already have a checkpoint record are skipped; the rest run serially or
over a process pool, and every completion is appended to the shard's
JSONL checkpoint immediately, so progress survives any interruption.

Because every scenario seeds its own RNGs from a derived seed, the
per-scenario results are bit-identical however the campaign is
executed — the property ``tests/campaigns/test_determinism.py`` pins.
Reports therefore never depend on execution history: ``report()``
rebuilds the same summary bytes from any complete record set.

**Supervision** (``timeout_s``/``max_retries``): at campaign scale a
single raising, hanging or crashing scenario must not kill a
thousand-scenario sweep.  Failures are retried with seeded exponential
backoff; scenarios that keep failing are *quarantined* — appended to
``quarantine.jsonl`` with their captured traceback — and the sweep
continues.  Under a process pool, a per-scenario wall-clock watchdog
kills hung workers and rebuilds the pool; a worker process dying
outright (``BrokenProcessPool``) likewise triggers a rebuild, with the
in-flight scenarios retried.  The fault-injection harness in
:mod:`repro.campaigns.faults` exists to prove all of this: under every
injected fault class a resumed campaign's summary is byte-identical
to a fault-free run's (``tests/campaigns/test_chaos.py``).
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, \
    ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple)

from repro.analysis.aggregate import aggregate_metrics, group_rows
from repro.campaigns.checkpoint import (CampaignStore, ResultStore,
                                        make_record,
                                        write_json_atomic)
from repro.campaigns.faults import FaultPlan, FaultSpec
from repro.campaigns.matrix import (CampaignError, CampaignMatrix,
                                    CampaignScenario)
from repro.core.mix import uniform01
from repro.experiments.api import _canonical, execute_task

__all__ = ["CampaignRunner", "CampaignStatus", "STORE_BACKENDS",
           "parse_shard"]

#: Record-store backends ``CampaignRunner(store=...)`` accepts:
#: ``"jsonl"`` (one flushed line per scenario) and ``"columnar"``
#: (WAL tail + sealed npz column chunks — see
#: :mod:`repro.campaigns.colstore`).  Reading always unions both
#: formats, so the choice only shapes the write path.
STORE_BACKENDS = ("jsonl", "columnar")


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``I/N`` shard spec (0-based): ``"2/8"`` -> ``(2, 8)``."""
    index, sep, total = text.partition("/")
    try:
        shard = (int(index), int(total if sep else 1))
    except ValueError:
        raise ValueError(f"shard spec must be I/N, got {text!r}") \
            from None
    if shard[1] < 1 or not 0 <= shard[0] < shard[1]:
        raise ValueError(
            f"shard index out of range: {text!r} (need 0 <= I < N)")
    return shard


def _worker(task: Tuple[str, str, Dict[str, Any],
                        Optional[FaultSpec], int]
            ) -> Tuple[Any, ...]:
    """Pool target: run one scenario attempt, never raising.

    Returns ``("ok", metrics, elapsed)`` on success or ``("error",
    kind, message, traceback_text, elapsed)`` on failure — structured
    tuples instead of exceptions, because an exception type that does
    not unpickle cleanly would otherwise poison the pool protocol
    itself.  ``fault``, when set, is this scenario's injected fault
    (:mod:`repro.campaigns.faults`); a ``crash`` fault exits the
    process without ever returning.
    """
    experiment, module, params, fault, attempt = task
    start = time.perf_counter()
    try:
        if fault is not None:
            fault.fire(attempt)
        metrics = execute_task(experiment, module, params)
    except Exception as exc:
        import traceback
        return ("error", type(exc).__name__, str(exc),
                traceback.format_exc(), time.perf_counter() - start)
    return ("ok", metrics, time.perf_counter() - start)


@dataclass(frozen=True)
class CampaignStatus:
    """Progress snapshot of one campaign (possibly mid-run)."""

    name: str
    digest: str
    total: int
    completed: int
    directory: str
    #: Pending scenarios the supervised runner gave up on (retries
    #: exhausted); a later run retries them, and completion clears
    #: them from this count.
    quarantined: int = 0
    #: Whether the campaign has any on-disk state at all.  A
    #: never-run campaign reports ``started=False`` with a clean
    #: zero count instead of pretending an empty directory exists.
    started: bool = True

    @property
    def pending(self) -> int:
        """Scenarios without a checkpoint record yet (quarantined
        scenarios included — they have no record either)."""
        return self.total - self.completed

    @property
    def done(self) -> bool:
        """Whether every scenario has a record."""
        return self.completed >= self.total

    @property
    def failed(self) -> bool:
        """Whether any pending scenario is quarantined."""
        return self.quarantined > 0


class CampaignRunner:
    """Executes campaign matrices with checkpoints and sharding.

    Args:
        jobs: worker processes per invocation (1 = in-process, unless
            ``timeout_s`` forces a supervised single-worker pool).
        cache_dir: root of the ``.repro-cache`` tree; the campaign
            store lives under ``{cache_dir}/campaigns/``.
        shard: ``(index, total)`` — run only scenarios with
            ``index % total == shard_index``.  Distinct shards may run
            concurrently (other processes/machines on a shared cache
            dir); together they cover the matrix exactly.
        progress: optional callback fired per completed scenario with
            a one-line status string.
        timeout_s: per-scenario wall-clock deadline.  Requires pool
            execution (a hung in-process scenario cannot be
            interrupted), so ``timeout_s`` with ``jobs=1`` runs a
            supervised pool of one worker.
        max_retries: failed-scenario retries before quarantine.
        retry_backoff_s: base of the seeded exponential backoff
            between retries (doubled per attempt, jittered
            deterministically from the scenario id).
        fault_plan: a :class:`repro.campaigns.faults.FaultPlan` to
            inject — testing/chaos only.
        store: record-store backend, one of :data:`STORE_BACKENDS`.
            ``"columnar"`` writes sealed npz column chunks behind a
            WAL tail (:mod:`repro.campaigns.colstore`); reads always
            union both formats, so switching backends mid-campaign
            is safe.
        chunk_records: rows per sealed chunk for the columnar
            backend (``None`` = the backend default).

    Example::

        runner = CampaignRunner(jobs=4, timeout_s=300.0)
        runner.run(get_campaign("contention-scale"))
    """

    def __init__(self, jobs: int = 1, cache_dir: str = ".repro-cache",
                 shard: Tuple[int, int] = (0, 1),
                 progress: Optional[Callable[[str], None]] = None,
                 timeout_s: Optional[float] = None,
                 max_retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 fault_plan: Optional[FaultPlan] = None,
                 store: str = "jsonl",
                 chunk_records: Optional[int] = None):
        if shard[1] < 1 or not 0 <= shard[0] < shard[1]:
            raise ValueError(f"invalid shard {shard}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if store not in STORE_BACKENDS:
            raise ValueError(
                f"unknown store backend {store!r}; "
                f"known: {list(STORE_BACKENDS)}")
        self.jobs = max(int(jobs), 1)
        self.cache_dir = cache_dir
        self.shard = (int(shard[0]), int(shard[1]))
        self.progress = progress
        self.timeout_s = timeout_s
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.fault_plan = fault_plan
        self.store = store
        self.chunk_records = chunk_records
        if fault_plan is not None and fault_plan.requires_supervision \
                and not self._pooled:
            raise CampaignError(
                "fault plan injects worker crashes/hangs, which only "
                "supervised pool execution survives — set jobs > 1 "
                "or a timeout_s")

    # -- helpers ------------------------------------------------------

    @property
    def _pooled(self) -> bool:
        """Whether execution goes through a supervised process pool."""
        return self.jobs > 1 or self.timeout_s is not None

    def _store(self, matrix: CampaignMatrix) -> ResultStore:
        if self.store == "columnar":
            from repro.campaigns.colstore import ColumnStore
            kwargs = {} if self.chunk_records is None else \
                {"chunk_records": self.chunk_records}
            return ColumnStore(matrix, cache_dir=self.cache_dir,
                               **kwargs)
        return CampaignStore(matrix, cache_dir=self.cache_dir)

    def _emit(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def _fault_for(self, scenario: CampaignScenario
                   ) -> Optional[FaultSpec]:
        if self.fault_plan is None:
            return None
        return self.fault_plan.execution_fault(scenario.index)

    def _backoff(self, scenario: CampaignScenario,
                 attempt: int) -> float:
        """Seeded exponential backoff with deterministic jitter."""
        jitter = 0.5 + uniform01(int(scenario.scenario_id[:15], 16),
                                 attempt)
        return self.retry_backoff_s * (2 ** attempt) * jitter

    def _status(self, matrix: CampaignMatrix, store: ResultStore,
                current: Optional[set] = None,
                done: Optional[set] = None) -> CampaignStatus:
        # Count only records matching the *current* expansion:
        # scenario ids fold in experiment defaults and the surrogate
        # calibration fingerprint, so records can go stale (and get
        # recomputed) without the matrix digest changing.  Callers
        # that already expanded / read the store pass the sets in.
        started = os.path.isdir(store.directory)
        if not started:
            # Never-run campaigns answer from the matrix alone — no
            # directory probing beyond the existence check, and no
            # side effects on disk.
            return CampaignStatus(
                name=matrix.name, digest=matrix.digest(),
                total=matrix.total_scenarios(), completed=0,
                directory=store.directory, quarantined=0,
                started=False)
        if current is None:
            current = {s.scenario_id for s in matrix.expand()}
        if done is None:
            done = store.completed_ids()
        completed = current & done
        quarantined = (store.quarantined_ids() & current) - completed
        return CampaignStatus(
            name=matrix.name, digest=matrix.digest(),
            total=matrix.total_scenarios(),
            completed=len(completed),
            directory=store.directory,
            quarantined=len(quarantined),
            started=True)

    # -- public API ---------------------------------------------------

    def status(self, matrix: CampaignMatrix) -> CampaignStatus:
        """Progress of ``matrix`` without running anything."""
        return self._status(matrix, self._store(matrix))

    def run(self, matrix: CampaignMatrix,
            limit: Optional[int] = None) -> CampaignStatus:
        """Run the matrix's pending scenarios (this runner's shard).

        Completed scenarios (checkpointed by any earlier or concurrent
        run) are never recomputed; previously *quarantined* scenarios
        are pending like any other and get retried.  ``limit`` caps
        how many pending scenarios this call executes — useful for
        incremental runs.  Returns the post-run status.
        """
        store = self._store(matrix)
        store.ensure()
        scenarios = matrix.expand()
        current = {s.scenario_id for s in scenarios}
        index, total = self.shard
        mine = [s for s in scenarios if s.index % total == index]
        done = store.completed_ids()
        pending = [s for s in mine if s.scenario_id not in done]
        if limit is not None:
            pending = pending[:max(limit, 0)]
        self._emit(f"{matrix.name}: {len(scenarios)} scenarios, "
                   f"shard {index}/{total} owns {len(mine)}, "
                   f"{len(pending)} to run")
        if pending:
            label = f"{index}of{total}"
            with store.writer(label) as out:
                if self._pooled:
                    self._run_pool(pending, out, store)
                else:
                    self._run_serial(pending, out, store)
        if self.fault_plan is not None:
            for note in self.fault_plan.apply_store_faults(
                    store.directory):
                self._emit(f"{matrix.name}: {note}")
        return self._status(matrix, store, current=current)

    # -- completion / failure handling --------------------------------

    def _record_done(self, out, scenario: CampaignScenario,
                     metrics: Dict[str, float], elapsed: float,
                     position: int, total: int) -> None:
        out.append(make_record(scenario, metrics, elapsed))
        self._emit(f"[{position}/{total}] scenario "
                   f"#{scenario.index} ({scenario.scenario_id}) "
                   f"done in {elapsed:.2f} s")

    def _quarantine(self, store: ResultStore,
                    scenario: CampaignScenario, kind: str,
                    message: str, traceback_text: str,
                    attempts: int) -> None:
        store.append_quarantine({
            "scenario_id": scenario.scenario_id,
            "index": scenario.index,
            "seed": scenario.seed,
            "params": _canonical(scenario.params),
            "kind": kind,
            "error": message,
            "attempts": attempts,
            "traceback": traceback_text,
        })
        self._emit(f"scenario #{scenario.index} "
                   f"({scenario.scenario_id}) QUARANTINED after "
                   f"{attempts} attempts ({kind}: {message})")

    def _handle_failure(self, store: ResultStore,
                        scenario: CampaignScenario, attempt: int,
                        kind: str, message: str, traceback_text: str,
                        retry: Callable[[CampaignScenario, int, float],
                                        None]) -> None:
        """Retry a failed attempt with backoff, or quarantine.

        ``retry(scenario, next_attempt, delay_s)`` is the execution
        path's way of rescheduling (sleep-and-rerun serially, requeue
        with a not-before time under the pool).
        """
        if attempt < self.max_retries:
            delay = self._backoff(scenario, attempt)
            self._emit(f"scenario #{scenario.index} attempt "
                       f"{attempt + 1}/{self.max_retries + 1} failed "
                       f"({kind}: {message}); retrying in "
                       f"{delay:.3f} s")
            retry(scenario, attempt + 1, delay)
        else:
            self._quarantine(store, scenario, kind, message,
                             traceback_text, attempts=attempt + 1)

    def _harness_error(self, store: ResultStore,
                       scenario: CampaignScenario,
                       exc: BaseException) -> None:
        """An error in the campaign harness itself (not the
        experiment): record it against the scenario, then propagate
        with the scenario id attached instead of an opaque traceback.
        """
        message = f"{type(exc).__name__}: {exc}"
        self._quarantine(store, scenario, "harness", message, "",
                         attempts=1)
        raise CampaignError(
            f"scenario #{scenario.index} ({scenario.scenario_id}) "
            f"failed inside the campaign harness: {message}") from exc

    # -- serial execution ---------------------------------------------

    def _run_serial(self, pending: Sequence[CampaignScenario],
                    out, store: ResultStore) -> None:
        position = 0
        for scenario in pending:
            attempt = 0
            while True:
                outcome = _worker(scenario.task()
                                  + (self._fault_for(scenario),
                                     attempt))
                if outcome[0] == "ok":
                    position += 1
                    self._record_done(out, scenario, outcome[1],
                                      outcome[2], position,
                                      len(pending))
                    break
                _, kind, message, traceback_text, _elapsed = outcome
                if attempt >= self.max_retries:
                    self._quarantine(store, scenario, kind, message,
                                     traceback_text,
                                     attempts=attempt + 1)
                    break
                self._handle_failure(
                    store, scenario, attempt, kind, message,
                    traceback_text,
                    retry=lambda _s, _a, delay: time.sleep(delay))
                attempt += 1

    # -- supervised pool execution ------------------------------------

    def _run_pool(self, pending: Sequence[CampaignScenario],
                  out, store: ResultStore) -> None:
        """Supervised pool loop: sliding-window submission (so
        deadlines measure execution, not queueing), a wall-clock
        watchdog that kills hung workers, retry/quarantine on
        failures, and automatic pool rebuild after a crash."""
        workers = max(min(self.jobs, len(pending)), 1)
        total = len(pending)
        position = 0
        # (scenario, attempt, not-before monotonic time)
        queue: deque = deque((s, 0, 0.0) for s in pending)
        outstanding: Dict[Future, Tuple[CampaignScenario, int,
                                        Optional[float]]] = {}
        pool = ProcessPoolExecutor(max_workers=workers)

        def retry(scenario: CampaignScenario, attempt: int,
                  delay: float) -> None:
            queue.append((scenario, attempt,
                          time.monotonic() + delay))

        def handle_outcome(scenario: CampaignScenario, attempt: int,
                           outcome: Tuple[Any, ...]) -> None:
            nonlocal position
            if outcome[0] == "ok":
                position += 1
                self._record_done(out, scenario, outcome[1],
                                  outcome[2], position, total)
            else:
                _, kind, message, traceback_text, _elapsed = outcome
                self._handle_failure(store, scenario, attempt, kind,
                                     message, traceback_text, retry)

        def drain_and_rebuild(reason: str) -> None:
            """Salvage every outstanding future, then replace the
            pool: finished results are recorded, hung scenarios get a
            timeout failure, crashed ones a crash failure, and
            innocent in-flight scenarios requeue without an attempt
            penalty."""
            nonlocal pool
            now = time.monotonic()
            for future, (scenario, attempt, deadline) in \
                    list(outstanding.items()):
                del outstanding[future]
                if future.done():
                    try:
                        handle_outcome(scenario, attempt,
                                       future.result())
                    except BrokenProcessPool:
                        self._handle_failure(
                            store, scenario, attempt, "crash",
                            "worker process died mid-scenario", "",
                            retry)
                    except Exception as exc:
                        self._harness_error(store, scenario, exc)
                elif deadline is not None and now >= deadline:
                    self._handle_failure(
                        store, scenario, attempt, "timeout",
                        f"exceeded {self.timeout_s:g} s deadline",
                        "", retry)
                else:
                    queue.append((scenario, attempt, 0.0))
            for process in list(getattr(pool, "_processes",
                                        {}).values()):
                process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
            self._emit(f"rebuilding worker pool ({reason})")
            pool = ProcessPoolExecutor(max_workers=workers)

        try:
            while queue or outstanding:
                now = time.monotonic()
                for _ in range(len(queue)):
                    if len(outstanding) >= workers:
                        break
                    scenario, attempt, ready_at = queue.popleft()
                    if ready_at > now:
                        queue.append((scenario, attempt, ready_at))
                        continue
                    deadline = None if self.timeout_s is None \
                        else now + self.timeout_s
                    try:
                        future = pool.submit(
                            _worker, scenario.task()
                            + (self._fault_for(scenario), attempt))
                    except BrokenProcessPool:
                        queue.appendleft((scenario, attempt, 0.0))
                        drain_and_rebuild("pool broke on submit")
                        continue
                    outstanding[future] = (scenario, attempt,
                                           deadline)
                if not outstanding:
                    if queue:
                        next_ready = min(r for _, _, r in queue)
                        time.sleep(max(next_ready - time.monotonic(),
                                       0.0))
                    continue

                waits = [d - now for _, _, d in outstanding.values()
                         if d is not None]
                waits += [r - now for _, _, r in queue]
                timeout = max(min(waits), 0.005) if waits else None
                finished, _ = wait(set(outstanding), timeout=timeout,
                                   return_when=FIRST_COMPLETED)

                broken = False
                for future in finished:
                    scenario, attempt, _deadline = \
                        outstanding.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        broken = True
                        self._handle_failure(
                            store, scenario, attempt, "crash",
                            "worker process died mid-scenario", "",
                            retry)
                        continue
                    except Exception as exc:
                        self._harness_error(store, scenario, exc)
                    handle_outcome(scenario, attempt, outcome)

                now = time.monotonic()
                hung = [f for f, (_, _, d) in outstanding.items()
                        if d is not None and now >= d
                        and not f.done()]
                if broken:
                    drain_and_rebuild("a worker process crashed")
                elif hung:
                    drain_and_rebuild(
                        f"{len(hung)} scenario(s) past the "
                        f"{self.timeout_s:g} s deadline")
        finally:
            for process in list(getattr(pool, "_processes",
                                        {}).values()):
                process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)

    # -- reporting ----------------------------------------------------

    def report(self, matrix: CampaignMatrix,
               group_by: Optional[Sequence[str]] = None,
               write: bool = True) -> Dict[str, Any]:
        """Build the campaign's tidy summary from its checkpoints.

        The summary contains one row per completed scenario — the
        varied parameters plus every metric — in canonical scenario
        order, campaign-wide metric means, and (optionally) grouped
        means over ``group_by`` parameters.  It is a pure function of
        the record *contents*: resumed, resharded and uninterrupted
        runs of the same matrix produce byte-identical summaries.

        When ``write`` is true the summary JSON is also stored at
        ``store.summary_path``.
        """
        store = self._store(matrix)
        records = store.load_records()
        varied = matrix.varied_parameters()
        rows: List[Dict[str, Any]] = []
        ordered_metrics: List[Dict[str, float]] = []
        for scenario in matrix.expand():
            record = records.get(scenario.scenario_id)
            if record is None:
                continue
            row: Dict[str, Any] = {"index": scenario.index,
                                   "scenario_id": scenario.scenario_id,
                                   "seed": scenario.seed}
            for name in varied:
                row[name] = _canonical(scenario.params.get(name))
            row.update(_canonical(record["metrics"]))
            rows.append(row)
            # Aggregation follows canonical scenario order (float
            # sums are order-sensitive), so resumed and uninterrupted
            # runs summarize to identical bytes.
            ordered_metrics.append(record["metrics"])

        # Identity digests (exact content hashes) ride in per-scenario
        # rows for the determinism wall, but a *mean* of hashes is
        # meaningless noise — keep them out of every averaged view.
        metric_names = sorted(
            {k for m in ordered_metrics for k in m
             if not k.endswith("_digest")})
        mean_inputs = [{k: v for k, v in m.items()
                        if k in set(metric_names)}
                       for m in ordered_metrics]
        summary: Dict[str, Any] = {
            "campaign": matrix.name,
            "experiment": matrix.experiment,
            "digest": matrix.digest(),
            "total_scenarios": matrix.total_scenarios(),
            "completed": len(rows),
            "varied": varied,
            "metrics": metric_names,
            "aggregates": _canonical(
                aggregate_metrics(mean_inputs)),
            "rows": rows,
        }
        if group_by:
            unknown = sorted(set(group_by) - set(varied) - {"seed"})
            if unknown:
                raise ValueError(
                    f"cannot group by {unknown}: not varied in "
                    f"{matrix.name} (varied: {varied})")
            summary["group_by"] = list(group_by)
            summary["groups"] = group_rows(rows, list(group_by),
                                           metric_names)
        if write:
            store.ensure()
            write_json_atomic(store.summary_path, summary)
        return summary
