"""Campaign service mode: a long-running submission front end.

``repro campaign serve`` turns the batch campaign engine into a
service: an asyncio TCP endpoint (newline-delimited JSON on
localhost) accepts campaign submissions, a durable event-sourced
queue feeds them one at a time to the existing supervised
:class:`repro.campaigns.runner.CampaignRunner` (in a worker thread,
which itself fans out over worker processes), and results land in
the columnar store (:mod:`repro.campaigns.colstore`) by default.

**Durability.**  All service state lives under
``{cache_dir}/service/``:

* ``endpoint.json`` — host/port/pid of the live server, written
  after bind (clients discover the endpoint here; a dead server
  leaves a stale file, which clients detect as a refused
  connection).
* ``queue.jsonl`` — the submission log: one ``submit`` event per
  accepted submission and one ``state`` event per transition, each
  line fsynced.  On restart the log is replayed; submissions without
  a terminal state are requeued, and because scenario execution is
  checkpointed by the store, a requeued submission resumes instead
  of recomputing.

A SIGKILL therefore loses at most the scenarios in flight — exactly
the batch runner's bound — and a resubmitted campaign produces a
summary byte-identical to ``repro campaign run``'s, which
``tests/campaigns/test_service.py`` proves per fault class.

**Protocol.**  One JSON object per line, one response per request::

    {"op": "ping"}
    {"op": "submit", "campaign": "smoke-tiny", "options": {...}}
    {"op": "status", "id": "sub-00001"}            # or "campaign"
    {"op": "results", "campaign": "smoke-tiny"}
    {"op": "shutdown"}

Responses carry ``{"ok": true, ...}`` or ``{"ok": false, "error":
...}``.  Submission states are ``queued``, ``running``, and the
terminal ``complete``/``partial``/``quarantined``/``error`` —
mapping onto the CLI's 0/3/4 exit-code contract (``error`` exits 1).
See ``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaigns.checkpoint import write_json_atomic

__all__ = ["CampaignService", "ServiceError", "ServiceUnavailable",
           "Submission", "TERMINAL_STATES", "read_endpoint",
           "request", "state_exit_code", "wait_for_submission"]

#: Submission states that end a submission's lifecycle.
TERMINAL_STATES = ("complete", "partial", "quarantined", "error")

#: Exit codes the CLI maps submission states onto — the same
#: contract ``repro campaign run`` uses (0 complete / 3 partial /
#: 4 quarantined), with harness errors as 1.
_STATE_EXIT_CODES = {"complete": 0, "partial": 3, "quarantined": 4,
                     "error": 1}


class ServiceError(RuntimeError):
    """A campaign-service failure (protocol or server side)."""


class ServiceUnavailable(ServiceError):
    """No live server behind the cache directory's endpoint file."""


def state_exit_code(state: str) -> int:
    """Map a terminal submission state to the CLI exit code."""
    return _STATE_EXIT_CODES.get(state, 1)


@dataclass
class Submission:
    """One accepted campaign submission and its lifecycle state."""

    id: str
    campaign: str
    options: Dict[str, Any] = field(default_factory=dict)
    state: str = "queued"
    completed: int = 0
    total: int = 0
    quarantined: int = 0
    error: str = ""

    def to_payload(self) -> Dict[str, Any]:
        """The submission as a JSON-safe response payload."""
        return {"id": self.id, "campaign": self.campaign,
                "options": dict(self.options), "state": self.state,
                "completed": self.completed, "total": self.total,
                "quarantined": self.quarantined,
                "error": self.error}


class SubmissionQueue:
    """The durable, event-sourced submission log (``queue.jsonl``).

    Append-only: ``submit`` events add a submission, ``state`` events
    record transitions.  Each line is fsynced, so the accepted-work
    set survives any kill; replaying the log rebuilds every
    submission in acceptance order, and damaged lines (the torn tail
    a kill can leave) are skipped.
    """

    def __init__(self, path: str):
        self.path = path

    def append(self, event: Dict[str, Any]) -> None:
        """Durably append one event line."""
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(event, sort_keys=True,
                                separators=(",", ":")))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())

    def replay(self) -> Dict[str, Submission]:
        """Rebuild submissions from the log, in acceptance order."""
        submissions: Dict[str, Submission] = {}
        if not os.path.exists(self.path):
            return submissions
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(event, dict):
                    continue
                kind = event.get("event")
                if kind == "submit" and "id" in event:
                    submissions[event["id"]] = Submission(
                        id=event["id"],
                        campaign=event.get("campaign", ""),
                        options=dict(event.get("options") or {}))
                elif kind == "state" and event.get("id") \
                        in submissions:
                    sub = submissions[event["id"]]
                    sub.state = event.get("state", sub.state)
                    for key in ("completed", "total", "quarantined"):
                        if key in event:
                            setattr(sub, key, int(event[key]))
                    if "error" in event:
                        sub.error = str(event["error"])
        return submissions


class CampaignService:
    """The asyncio campaign server (see the module docstring).

    Args:
        cache_dir: the shared ``.repro-cache`` root; campaign
            checkpoints land exactly where the batch runner puts
            them, which is what makes serve/run interchangeable.
        host/port: bind address (port 0 = ephemeral; the bound port
            is published in ``endpoint.json``).
        jobs/timeout_s/max_retries/retry_backoff_s: default runner
            supervision settings; per-submission options override.
        store: default record backend (``"columnar"`` — the store
            this service exists to feed; submissions may override).
        chunk_records: columnar chunk size (``None`` = default).
        once: exit after the first submission reaches a terminal
            state — the CI smoke-job mode.
        emit: optional progress-line callback.

    Example::

        CampaignService(cache_dir=".repro-cache", port=0).serve()
    """

    def __init__(self, cache_dir: str = ".repro-cache",
                 host: str = "127.0.0.1", port: int = 0,
                 jobs: int = 1, timeout_s: Optional[float] = None,
                 max_retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 store: str = "columnar",
                 chunk_records: Optional[int] = None,
                 once: bool = False,
                 emit: Optional[Callable[[str], None]] = None):
        from repro.campaigns.runner import STORE_BACKENDS
        if store not in STORE_BACKENDS:
            raise ValueError(
                f"unknown store backend {store!r}; "
                f"known: {list(STORE_BACKENDS)}")
        self.cache_dir = cache_dir
        self.host = host
        self.port = int(port)
        self.jobs = int(jobs)
        self.timeout_s = timeout_s
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.store = store
        self.chunk_records = chunk_records
        self.once = bool(once)
        self.emit = emit
        self.queue = SubmissionQueue(self.queue_path)
        self._submissions: Dict[str, Submission] = {}
        self._seq = 0
        self._pending: "asyncio.Queue[Submission]" = None  # in _main
        self._stop: "asyncio.Event" = None                 # in _main

    # -- paths --------------------------------------------------------

    @property
    def state_dir(self) -> str:
        """Directory holding the service's own durable state."""
        return os.path.join(self.cache_dir, "service")

    @property
    def endpoint_path(self) -> str:
        """Path of the live-endpoint discovery file."""
        return os.path.join(self.state_dir, "endpoint.json")

    @property
    def queue_path(self) -> str:
        """Path of the durable submission log."""
        return os.path.join(self.state_dir, "queue.jsonl")

    def _say(self, line: str) -> None:
        if self.emit is not None:
            self.emit(line)

    # -- lifecycle ----------------------------------------------------

    def serve(self) -> None:
        """Run the server until shutdown (blocking)."""
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._pending = asyncio.Queue()
        self._stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._stop.set)
            except (NotImplementedError, RuntimeError):
                # Non-Unix loop or nested loop: fall back to the
                # default KeyboardInterrupt behaviour.
                break
        self._recover()
        server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        bound = server.sockets[0].getsockname()
        os.makedirs(self.state_dir, exist_ok=True)
        write_json_atomic(self.endpoint_path,
                          {"host": bound[0], "port": bound[1],
                           "pid": os.getpid()})
        self._say(f"campaign service listening on "
                  f"{bound[0]}:{bound[1]} (pid {os.getpid()})")
        worker = asyncio.create_task(self._worker_loop())
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await worker
            try:
                os.remove(self.endpoint_path)
            except FileNotFoundError:
                pass
        self._say("campaign service stopped")

    def _recover(self) -> None:
        """Replay the submission log; requeue unfinished work.

        Submissions the previous server never finished resume from
        their checkpoints — the log records *intent*, the store
        records *progress*, and determinism glues them together.
        """
        self._submissions = self.queue.replay()
        self._seq = len(self._submissions)
        for sub in self._submissions.values():
            if sub.state not in TERMINAL_STATES:
                if sub.state != "queued":
                    sub.state = "queued"
                    self.queue.append({"event": "state",
                                       "id": sub.id,
                                       "state": "queued"})
                self._pending.put_nowait(sub)
                self._say(f"recovered unfinished submission "
                          f"{sub.id} ({sub.campaign})")

    async def _worker_loop(self) -> None:
        """Consume the queue one submission at a time.

        Runs each submission in a thread (the runner's process pool
        does the real fan-out) so the event loop stays responsive to
        status queries mid-run.  A shutdown request lets the
        in-flight submission finish — its checkpoints make even a
        harder stop safe, but there is no reason to waste the work.
        """
        while True:
            getter = asyncio.ensure_future(self._pending.get())
            stopper = asyncio.ensure_future(self._stop.wait())
            done, _ = await asyncio.wait(
                {getter, stopper},
                return_when=asyncio.FIRST_COMPLETED)
            if getter not in done:
                getter.cancel()
                break
            stopper.cancel()
            sub = getter.result()
            sub.state = "running"
            self.queue.append({"event": "state", "id": sub.id,
                               "state": "running"})
            self._say(f"{sub.id}: running {sub.campaign}")
            outcome = await asyncio.to_thread(self._execute, sub)
            sub.state = outcome["state"]
            sub.completed = outcome.get("completed", 0)
            sub.total = outcome.get("total", 0)
            sub.quarantined = outcome.get("quarantined", 0)
            sub.error = outcome.get("error", "")
            self.queue.append(dict(outcome, event="state",
                                   id=sub.id))
            self._say(f"{sub.id}: {sub.state} "
                      f"({sub.completed}/{sub.total} scenarios)")
            if self.once and self._pending.empty():
                self._stop.set()
                break

    def _runner(self, options: Dict[str, Any]):
        """Build the runner for one submission (options override the
        service defaults)."""
        from repro.campaigns.faults import FaultPlan
        from repro.campaigns.runner import CampaignRunner

        plan = None
        fault = options.get("fault")
        if fault:
            plan = FaultPlan.seeded(
                int(options["total_scenarios"]),
                kinds=(str(fault),),
                seed=int(options.get("fault_seed", 0)),
                hang_s=float(options.get("hang_s", 300.0)))
        chunk = options.get("chunk_records", self.chunk_records)
        return CampaignRunner(
            jobs=int(options.get("jobs", self.jobs)),
            cache_dir=self.cache_dir,
            timeout_s=options.get("timeout_s", self.timeout_s),
            max_retries=int(options.get("max_retries",
                                        self.max_retries)),
            retry_backoff_s=float(options.get("retry_backoff_s",
                                              self.retry_backoff_s)),
            fault_plan=plan,
            store=str(options.get("store", self.store)),
            chunk_records=None if chunk is None else int(chunk),
            progress=self._say)

    def _execute(self, sub: Submission) -> Dict[str, Any]:
        """Run one submission to a terminal state (worker thread).

        Never raises: any harness failure becomes the ``error``
        terminal state, so one broken submission cannot take the
        whole service down.
        """
        from repro.campaigns.stock import get_campaign

        try:
            matrix = get_campaign(sub.campaign)
            options = dict(sub.options)
            options.setdefault("total_scenarios",
                               matrix.total_scenarios())
            runner = self._runner(options)
            limit = options.get("limit")
            status = runner.run(
                matrix, limit=None if limit is None else int(limit))
            if status.done:
                runner.report(matrix)
                state = "complete"
            elif status.failed:
                state = "quarantined"
            else:
                state = "partial"
            return {"state": state, "completed": status.completed,
                    "total": status.total,
                    "quarantined": status.quarantined}
        except Exception as exc:
            return {"state": "error",
                    "error": f"{type(exc).__name__}: {exc}"}

    # -- request handling ---------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Serve one client connection (one JSON object per line)."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                    if not isinstance(payload, dict):
                        raise ValueError("request is not an object")
                    response = self._dispatch(payload)
                except ValueError as exc:
                    response = {"ok": False,
                                "error": f"bad request: {exc}"}
                writer.write(json.dumps(
                    response, sort_keys=True,
                    separators=(",", ":")).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Route one request to its op handler."""
        op = payload.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "submissions": len(self._submissions)}
        if op == "submit":
            return self._op_submit(payload)
        if op == "status":
            return self._op_status(payload)
        if op == "results":
            return self._op_results(payload)
        if op == "shutdown":
            self._stop.set()
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _op_submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        from repro.campaigns.stock import (UnknownCampaignError,
                                           get_campaign)

        name = payload.get("campaign")
        try:
            get_campaign(str(name))
        except UnknownCampaignError as exc:
            return {"ok": False, "error": str(exc.args[0]),
                    "unknown_campaign": True}
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            return {"ok": False, "error": "options must be an object"}
        self._seq += 1
        sub = Submission(id=f"sub-{self._seq:05d}",
                         campaign=str(name), options=dict(options))
        self._submissions[sub.id] = sub
        self.queue.append({"event": "submit", "id": sub.id,
                           "campaign": sub.campaign,
                           "options": sub.options})
        self._pending.put_nowait(sub)
        self._say(f"{sub.id}: accepted {sub.campaign}")
        return {"ok": True, **sub.to_payload()}

    def _find(self, payload: Dict[str, Any]) -> Optional[Submission]:
        """Resolve a submission by id, or the latest one for a
        campaign name."""
        if "id" in payload:
            return self._submissions.get(str(payload["id"]))
        name = payload.get("campaign")
        latest = None
        for sub in self._submissions.values():
            if sub.campaign == name:
                latest = sub
        return latest

    def _op_status(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        sub = self._find(payload)
        if sub is None:
            return {"ok": False, "error": "no such submission"}
        response = {"ok": True, **sub.to_payload()}
        if sub.state == "running":
            # Live progress + streaming aggregates straight off the
            # store — cheap enough to answer inline, and reading
            # concurrently with the writer is safe (records are
            # immutable once visible).
            try:
                from repro.campaigns.stock import get_campaign
                runner = self._runner(dict(sub.options,
                                           fault=None))
                matrix = get_campaign(sub.campaign)
                store = runner._store(matrix)
                status = runner._status(matrix, store)
                response["completed"] = status.completed
                response["total"] = status.total
                stream = getattr(store, "stream_aggregates", None)
                if stream is not None:
                    response["aggregates"] = stream().aggregates()
            except Exception:
                pass
        return response

    def _op_results(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        from repro.campaigns.stock import (UnknownCampaignError,
                                           get_campaign)

        name = str(payload.get("campaign"))
        try:
            matrix = get_campaign(name)
        except UnknownCampaignError as exc:
            return {"ok": False, "error": str(exc.args[0]),
                    "unknown_campaign": True}
        runner = self._runner({})
        status = runner.status(matrix)
        if not status.started:
            return {"ok": True, "state": "not-started",
                    "completed": 0, "total": status.total}
        summary = runner.report(matrix)
        state = "complete" if status.done else \
            ("quarantined" if status.failed else "partial")
        return {"ok": True, "state": state,
                "completed": status.completed,
                "total": status.total,
                "quarantined": status.quarantined,
                "summary": summary}


# --------------------------------------------------------------------
# Synchronous client helpers (used by the CLI and tests)
# --------------------------------------------------------------------

def read_endpoint(cache_dir: str) -> Optional[Tuple[str, int]]:
    """The advertised ``(host, port)`` of a server on ``cache_dir``,
    or ``None`` when no endpoint file exists."""
    path = os.path.join(cache_dir, "service", "endpoint.json")
    try:
        with open(path) as fh:
            data = json.load(fh)
        return str(data["host"]), int(data["port"])
    except (OSError, ValueError, KeyError):
        return None


def request(cache_dir: str, payload: Dict[str, Any],
            timeout: float = 30.0) -> Dict[str, Any]:
    """Send one request to the server behind ``cache_dir``.

    Raises :class:`ServiceUnavailable` when no endpoint is advertised
    or the advertised server is gone (stale file after a kill), and
    :class:`ServiceError` on a malformed response.
    """
    endpoint = read_endpoint(cache_dir)
    if endpoint is None:
        raise ServiceUnavailable(
            f"no campaign service endpoint under {cache_dir!r} "
            f"(start one with `repro campaign serve`)")
    try:
        with socket.create_connection(endpoint,
                                      timeout=timeout) as conn:
            conn.sendall(json.dumps(
                payload, sort_keys=True,
                separators=(",", ":")).encode() + b"\n")
            data = b""
            while not data.endswith(b"\n"):
                piece = conn.recv(65536)
                if not piece:
                    break
                data += piece
    except (ConnectionError, socket.timeout, OSError) as exc:
        raise ServiceUnavailable(
            f"campaign service at {endpoint[0]}:{endpoint[1]} is "
            f"not answering ({exc})") from exc
    try:
        response = json.loads(data)
        if not isinstance(response, dict):
            raise ValueError("response is not an object")
    except ValueError as exc:
        raise ServiceError(
            f"malformed service response: {exc}") from exc
    return response


def wait_for_submission(cache_dir: str, submission_id: str,
                        poll_s: float = 0.2,
                        timeout: Optional[float] = None,
                        emit: Optional[Callable[[str], None]] = None
                        ) -> Dict[str, Any]:
    """Poll a submission until it reaches a terminal state.

    Returns the final status payload; raises :class:`ServiceError`
    on timeout and :class:`ServiceUnavailable` if the server
    disappears mid-wait.
    """
    deadline = None if timeout is None \
        else time.monotonic() + timeout
    last_state = None
    while True:
        status = request(cache_dir, {"op": "status",
                                     "id": submission_id})
        if not status.get("ok"):
            raise ServiceError(status.get("error",
                                          "status query failed"))
        state = status.get("state")
        if state != last_state and emit is not None:
            emit(f"{submission_id}: {state} "
                 f"({status.get('completed', 0)}/"
                 f"{status.get('total', 0)})")
        last_state = state
        if state in TERMINAL_STATES:
            return status
        if deadline is not None and time.monotonic() > deadline:
            raise ServiceError(
                f"timed out waiting for {submission_id} "
                f"(last state {state!r})")
        time.sleep(poll_s)
