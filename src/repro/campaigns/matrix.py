"""Declarative scenario matrices and their deterministic expansion.

A :class:`CampaignMatrix` names a registered experiment and a set of
axes over its parameter space.  :meth:`CampaignMatrix.expand` produces
the full scenario list with three hard guarantees the test wall leans
on:

* **Stable ordering** — scenarios come out in one canonical order
  (grid axes sorted by name, values in declared order, random draws
  and replicates innermost), independent of the order axes were
  declared in.  Shard membership is ``index % shards``, so the order
  *is* the sharding contract.
* **Unique identities** — every scenario's ``scenario_id`` is the
  content hash of its full parameterization (the same hash the result
  cache uses), and expansion fails loudly on duplicates.
* **Derived seeds** — each scenario's RNG seed is derived from the
  campaign seed and the scenario's own parameters, never from its
  position in an execution schedule, which is what makes serial,
  pooled and sharded runs bit-identical.
"""

from __future__ import annotations

import hashlib
import itertools
import math
from dataclasses import dataclass, field
from typing import (Any, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.experiments.api import (Scenario, _canonical_json,
                                   get_experiment)

__all__ = ["Axis", "RandomAxis", "CampaignMatrix", "CampaignScenario",
           "CampaignError", "derive_scenario_seed"]


class CampaignError(ValueError):
    """A matrix is malformed (bad axis, duplicate scenario, ...)."""


def _stable_digest(payload: str, nbytes: int = 8) -> int:
    return int.from_bytes(
        hashlib.sha256(payload.encode()).digest()[:nbytes], "big")


def derive_scenario_seed(campaign_seed: int, scenario_key: str) -> int:
    """Deterministic 63-bit seed for one scenario of one campaign.

    ``scenario_key`` is the canonical JSON identity of the scenario
    within its matrix: its parameters (minus the seed parameter
    itself), plus — for sampled scenarios — the draw index, since two
    draws may round to identical values.  The seed thus depends only
    on *what* the scenario is in the matrix definition — never on its
    shard, execution order, or resume history.
    """
    return _stable_digest(f"seed:{campaign_seed}:{scenario_key}") \
        % (2 ** 63)


@dataclass(frozen=True)
class Axis:
    """One grid axis: a declared parameter crossed over given values.

    Example::

        Axis("protocol", ("softrate", "rraa", "samplerate"))
    """

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))
        if not self.name:
            raise CampaignError("axis needs a name")
        if not self.values:
            raise CampaignError(f"axis {self.name!r} has no values")
        seen = [_canonical_json(v) for v in self.values]
        if len(set(seen)) != len(seen):
            raise CampaignError(
                f"axis {self.name!r} repeats a value: {self.values}")


@dataclass(frozen=True)
class RandomAxis:
    """One random-sampled axis: uniform draws from ``[low, high]``.

    Each of the matrix's ``samples`` draws assigns a value to *every*
    random axis (joint random search, not a per-axis grid).  Draws are
    a pure function of (campaign seed, axis name, draw index), so they
    survive resumes, resharding and axis reordering unchanged.

    Example::

        RandomAxis("mean_snr_db", 6.0, 24.0)
        RandomAxis("n_clients", 1, 50, integer=True)
    """

    name: str
    low: float
    high: float
    #: Sample ``10**u`` with ``u`` uniform over the bounds' logs.
    log: bool = False
    #: Round the draw to an int (bounds inclusive).
    integer: bool = False

    def __post_init__(self):
        if not self.name:
            raise CampaignError("random axis needs a name")
        if not self.high > self.low:
            raise CampaignError(
                f"random axis {self.name!r}: need high > low")
        if self.log and self.low <= 0:
            raise CampaignError(
                f"random axis {self.name!r}: log scale needs low > 0")

    def draw(self, campaign_seed: int, index: int) -> Any:
        """The axis's value for draw ``index`` of one campaign."""
        unit = _stable_digest(
            f"draw:{campaign_seed}:{self.name}:{index}") / float(2 ** 64)
        lo, hi = (math.log10(self.low), math.log10(self.high)) \
            if self.log else (self.low, self.high)
        value = lo + unit * (hi - lo)
        if self.log:
            value = 10.0 ** value
        if self.integer:
            return int(round(value))
        return float(value)


@dataclass(frozen=True)
class CampaignScenario:
    """One expanded cell of a campaign matrix.

    ``params`` is the complete parameterization (experiment defaults
    merged with the matrix's base overrides and this cell's axis
    assignment, seed already substituted); ``scenario_id`` is its
    result-cache content hash.
    """

    index: int
    scenario_id: str
    experiment: str
    module: str
    params: Dict[str, Any]
    seed: Optional[int]

    def task(self) -> Tuple[str, str, Dict[str, Any]]:
        """The ``execute_task`` argument triple for this scenario."""
        return (self.experiment, self.module, self.params)


@dataclass(frozen=True)
class CampaignMatrix:
    """A declarative scenario matrix over one registered experiment.

    Args:
        name: campaign name (also the checkpoint directory prefix).
        experiment: registered experiment the cells parameterize.
        axes: grid axes, crossed exhaustively.
        random_axes: jointly sampled axes (``samples`` draws).
        samples: number of random draws (requires ``random_axes``).
        base: fixed overrides applied to every cell.
        replicates: copies of every cell differing only in the
            ``replicate`` parameter — and therefore in derived seed.
        seed: campaign seed; the root of every derived quantity.
        description: one-liner for ``repro campaign list``.

    Example::

        CampaignMatrix(
            name="demo", experiment="cell",
            axes=(Axis("protocol", ("softrate", "rraa")),
                  Axis("n_clients", (1, 5, 10))),
            base={"duration": 0.2}, replicates=3, seed=7)
    """

    name: str
    experiment: str
    axes: Tuple[Axis, ...] = ()
    random_axes: Tuple[RandomAxis, ...] = ()
    samples: int = 0
    base: Mapping[str, Any] = field(default_factory=dict)
    replicates: int = 1
    seed: int = 0
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "random_axes",
                           tuple(self.random_axes))
        object.__setattr__(self, "base", dict(self.base))
        if not self.name:
            raise CampaignError("campaign needs a name")
        if self.replicates < 1:
            raise CampaignError("replicates must be >= 1")
        if self.random_axes and self.samples < 1:
            raise CampaignError(
                "random axes need samples >= 1")
        if self.samples and not self.random_axes:
            raise CampaignError("samples given but no random axes")
        names = [a.name for a in self.axes] \
            + [a.name for a in self.random_axes]
        if len(set(names)) != len(names):
            raise CampaignError(f"duplicate axis names in {names}")
        overlap = set(names) & set(self.base)
        if overlap:
            raise CampaignError(
                f"axes {sorted(overlap)} also pinned in base")

    # -- identity -----------------------------------------------------

    def to_manifest(self) -> Dict[str, Any]:
        """JSON description of the matrix (written to the store)."""
        return {
            "name": self.name,
            "experiment": self.experiment,
            "description": self.description,
            "axes": {a.name: list(a.values)
                     for a in sorted(self.axes, key=lambda a: a.name)},
            "random_axes": {
                a.name: {"low": a.low, "high": a.high, "log": a.log,
                         "integer": a.integer}
                for a in sorted(self.random_axes,
                                key=lambda a: a.name)},
            "samples": self.samples,
            "base": dict(self.base),
            "replicates": self.replicates,
            "seed": self.seed,
            "varied": self.varied_parameters(),
        }

    def digest(self) -> str:
        """12-hex-char identity of the matrix *definition*.

        Everything that changes the scenario set changes the digest —
        and nothing else does (axis declaration order, in particular,
        does not).  The checkpoint store keys its directory on this,
        so an edited campaign never resumes from a stale checkpoint.
        """
        manifest = self.to_manifest()
        manifest.pop("description", None)
        return hashlib.sha256(
            _canonical_json(manifest).encode()).hexdigest()[:12]

    def varied_parameters(self) -> List[str]:
        """Names of the parameters that vary across cells (sorted)."""
        names = [a.name for a in self.axes] \
            + [a.name for a in self.random_axes]
        if self.replicates > 1:
            names.append("replicate")
        return sorted(names)

    def total_scenarios(self) -> int:
        """Scenario count without materializing the expansion."""
        total = self.replicates * max(self.samples, 1)
        for axis in self.axes:
            total *= len(axis.values)
        return total

    # -- expansion ----------------------------------------------------

    def expand(self) -> List[CampaignScenario]:
        """Materialize the full scenario list (validated, ordered).

        Raises :class:`CampaignError` on duplicate scenarios and
        propagates the registry's validation errors for axis or base
        names the experiment does not declare.
        """
        spec = get_experiment(self.experiment)
        if self.replicates > 1:
            pinned = set(self.base) | {a.name for a in self.axes} \
                | {a.name for a in self.random_axes}
            if spec.seed_param is None or spec.seed_param in pinned:
                raise CampaignError(
                    f"{self.name}: replicates only vary the derived "
                    f"seed, but {self.experiment}'s seed parameter "
                    f"is "
                    + ("not declared" if spec.seed_param is None
                       else "pinned by the matrix")
                    + " — every replicate would repeat an identical "
                    "simulation")
        grid_axes = sorted(self.axes, key=lambda a: a.name)
        draws: List[Dict[str, Any]] = [{}]
        if self.random_axes:
            draws = [{axis.name: axis.draw(self.seed, i)
                      for axis in self.random_axes}
                     for i in range(self.samples)]
        replicate_values: Sequence[Any] = range(self.replicates) \
            if self.replicates > 1 else (None,)

        scenarios: List[CampaignScenario] = []
        seen: Dict[str, int] = {}
        value_grid = itertools.product(
            *[axis.values for axis in grid_axes])
        for cell_values in value_grid:
            assignment = {axis.name: value for axis, value
                          in zip(grid_axes, cell_values)}
            for draw_index, draw in enumerate(draws):
                for replicate in replicate_values:
                    overrides = dict(self.base)
                    overrides.update(assignment)
                    overrides.update(draw)
                    if replicate is not None:
                        overrides["replicate"] = replicate
                    scenario = spec.scenario(overrides)
                    seed = None
                    if spec.seed_param is not None and \
                            spec.seed_param not in overrides:
                        params = {k: v
                                  for k, v in scenario.params.items()
                                  if k != spec.seed_param}
                        # Sampled scenarios additionally carry their
                        # draw index: two draws may legitimately
                        # produce the same values (an integer axis
                        # rounds a narrow range), and like replicates
                        # they must then differ in seed, not abort
                        # the expansion.
                        if self.random_axes:
                            key = _canonical_json(
                                {"draw": draw_index,
                                 "params": params})
                        else:
                            key = _canonical_json(params)
                        seed = derive_scenario_seed(self.seed, key)
                        scenario = scenario.with_seed(seed)
                    sid = scenario.content_hash()
                    if sid in seen:
                        raise CampaignError(
                            f"{self.name}: scenarios "
                            f"{seen[sid]} and {len(scenarios)} expand "
                            f"to the same parameterization ({sid})")
                    seen[sid] = len(scenarios)
                    scenarios.append(CampaignScenario(
                        index=len(scenarios), scenario_id=sid,
                        experiment=self.experiment,
                        module=spec.fn.__module__,
                        params=dict(scenario.params), seed=seed))
        return scenarios
