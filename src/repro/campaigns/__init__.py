"""Campaign engine: sharded thousand-scenario sweeps with checkpoints.

A *campaign* is a declarative scenario matrix — grid and
random-sampled axes over a registered experiment's parameter space —
expanded into thousands of concrete scenarios, each with a
deterministically derived seed.  The runner executes them serially or
over a process pool, shards across machines by index, checkpoints
every completed scenario to a resumable JSONL store layered on the
``.repro-cache/`` directory, and streams results into tidy summary
tables.

Entry points::

    from repro.campaigns import (Axis, CampaignMatrix, CampaignRunner,
                                 get_campaign)

    matrix = get_campaign("contention-scale")   # a stock campaign
    runner = CampaignRunner(jobs=4)
    runner.run(matrix)                          # resumable
    runner.report(matrix, group_by=["protocol", "n_clients"])

Execution is *supervised*: per-scenario wall-clock timeouts, seeded
retry backoff, quarantine for poison scenarios, and per-record CRC
integrity on the checkpoint store — with a deterministic
fault-injection harness (:mod:`repro.campaigns.faults`) proving the
recovery guarantees.  See ``docs/resilience.md``.

Records land in one of two interchangeable store backends — JSONL
lines (:class:`CampaignStore`) or sealed npz column chunks behind a
WAL tail (:class:`ColumnStore`, ``store="columnar"``) — and reads
union both formats.  Campaign *service mode*
(:class:`CampaignService`, ``repro campaign serve``/``submit``)
layers a long-running asyncio submission front end with a durable
queue on top of the same runner and stores; see ``docs/service.md``.

The CLI mirrors this as ``repro campaign
run/status/report/verify/chaos/serve/submit/results``; see
``docs/campaigns.md`` for authoring matrices.
"""

from repro.campaigns.checkpoint import (CampaignStore,
                                        CheckpointCorruptionWarning,
                                        ResultStore)
from repro.campaigns.colstore import ColumnStore, StreamingSummary
from repro.campaigns.faults import (FaultInjectedError, FaultPlan,
                                    FaultSpec, chaos_wall)
from repro.campaigns.matrix import (Axis, CampaignError, CampaignMatrix,
                                    CampaignScenario, RandomAxis,
                                    derive_scenario_seed)
from repro.campaigns.runner import (STORE_BACKENDS, CampaignRunner,
                                    CampaignStatus)
from repro.campaigns.service import (CampaignService, ServiceError,
                                     ServiceUnavailable)
from repro.campaigns.stock import (campaign_names, get_campaign,
                                   list_campaigns, register_campaign)

__all__ = ["Axis", "RandomAxis", "CampaignMatrix", "CampaignScenario",
           "CampaignError", "CampaignStore", "CampaignRunner",
           "CampaignService", "CampaignStatus",
           "CheckpointCorruptionWarning", "ColumnStore",
           "FaultInjectedError", "FaultPlan", "FaultSpec",
           "ResultStore", "STORE_BACKENDS", "ServiceError",
           "ServiceUnavailable", "StreamingSummary", "chaos_wall",
           "derive_scenario_seed", "get_campaign", "campaign_names",
           "list_campaigns", "register_campaign"]
