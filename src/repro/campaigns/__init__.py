"""Campaign engine: sharded thousand-scenario sweeps with checkpoints.

A *campaign* is a declarative scenario matrix — grid and
random-sampled axes over a registered experiment's parameter space —
expanded into thousands of concrete scenarios, each with a
deterministically derived seed.  The runner executes them serially or
over a process pool, shards across machines by index, checkpoints
every completed scenario to a resumable JSONL store layered on the
``.repro-cache/`` directory, and streams results into tidy summary
tables.

Entry points::

    from repro.campaigns import (Axis, CampaignMatrix, CampaignRunner,
                                 get_campaign)

    matrix = get_campaign("contention-scale")   # a stock campaign
    runner = CampaignRunner(jobs=4)
    runner.run(matrix)                          # resumable
    runner.report(matrix, group_by=["protocol", "n_clients"])

The CLI mirrors this as ``repro campaign run/status/report``; see
``docs/campaigns.md`` for authoring matrices.
"""

from repro.campaigns.checkpoint import CampaignStore
from repro.campaigns.matrix import (Axis, CampaignError, CampaignMatrix,
                                    CampaignScenario, RandomAxis,
                                    derive_scenario_seed)
from repro.campaigns.runner import CampaignRunner, CampaignStatus
from repro.campaigns.stock import (campaign_names, get_campaign,
                                   list_campaigns, register_campaign)

__all__ = ["Axis", "RandomAxis", "CampaignMatrix", "CampaignScenario",
           "CampaignError", "CampaignStore", "CampaignRunner",
           "CampaignStatus", "derive_scenario_seed", "get_campaign",
           "campaign_names", "list_campaigns", "register_campaign"]
