"""Figs. 13 & 14: TCP over slow-fading mobile channels.

The headline end-to-end result: N clients upload TCP through walking-
mobility channels (Fig. 12 topology).  Fig. 13 plots aggregate TCP
throughput vs N for the six algorithms; Fig. 14 slices rate-selection
accuracy for the N = 1 case.

Expected shape (paper section 6.2): Omniscient > SoftRate >
SNR (trained) ~ CHARM > RRAA > SampleRate, with SoftRate up to 2x
RRAA and ~4x SampleRate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.metrics import RateAccuracy, rate_selection_accuracy
from repro.experiments.api import register_experiment
from repro.experiments.common import (averaged_tcp_throughput,
                                      standard_algorithms)
from repro.traces.format import LinkTrace
from repro.traces.workloads import walking_traces

__all__ = ["SlowFadingResult", "run_fig13"]


@dataclass
class SlowFadingResult:
    """Throughput matrix and N=1 accuracy per algorithm."""

    client_counts: List[int]
    throughput_mbps: Dict[str, List[float]]     # algorithm -> per N
    accuracy: Dict[str, RateAccuracy]            # N = 1 case


def _metrics(result: "SlowFadingResult") -> dict:
    out = {}
    for name, values in result.throughput_mbps.items():
        for n, mbps in zip(result.client_counts, values):
            out[f"mbps/{name}/N={n}"] = float(mbps)
    for name, acc in result.accuracy.items():
        out[f"accuracy/{name}"] = float(acc.accurate)
    return out


@register_experiment(
    "fig13",
    description="TCP throughput over slow-fading mobile channels",
    params={"client_counts": (1, 2, 3, 4, 5), "duration": 5.0,
            "seeds": (1, 2), "trace_seed": 2009, "phy_backend": None},
    traces=("walking",),
    algorithms=("omniscient", "softrate", "snr", "charm", "rraa",
                "samplerate"),
    seed_param="seeds", metrics=_metrics)
def run_fig13(client_counts: Sequence[int] = (1, 2, 3, 4, 5),
              duration: float = 5.0, seeds=(1, 2),
              trace_seed: int = 2009,
              uplink_traces: Sequence[LinkTrace] = None,
              downlink_traces: Sequence[LinkTrace] = None,
              algorithms=None, phy_backend=None) -> SlowFadingResult:
    """Run the slow-fading TCP experiment.

    Args:
        client_counts: the N values of Fig. 13's x-axis.
        duration: seconds of TCP transfer per run.
        seeds: simulation seeds averaged per point.
        trace_seed: walking-trace generation seed.
        uplink_traces / downlink_traces: override the default walking
            traces (one per client, both directions).
        algorithms: override the (name, factory) list.
        phy_backend: ``None`` for the traces' precomputed frame fates,
            or ``"full"`` / ``"surrogate"`` to recompute each fate from
            the SNR trajectory (see :mod:`repro.phy.backend`; the
            omniscient baseline still reads the precomputed trace).
    """
    n_max = max(client_counts)
    if uplink_traces is None:
        uplink_traces = walking_traces(n_max, seed=trace_seed)
    if downlink_traces is None:
        downlink_traces = walking_traces(n_max, seed=trace_seed + 50)
    if algorithms is None:
        algorithms = standard_algorithms(uplink_traces[0])

    throughput: Dict[str, List[float]] = {}
    accuracy: Dict[str, RateAccuracy] = {}
    for name, factory in algorithms:
        per_n = []
        for n in client_counts:
            outcome = averaged_tcp_throughput(
                uplink_traces[:n], downlink_traces[:n], factory,
                n_clients=n, duration=duration, seeds=seeds,
                phy_backend=phy_backend)
            per_n.append(outcome["mbps"])
            if n == 1:
                log = outcome["last_result"].frame_logs[1]
                accuracy[name] = rate_selection_accuracy(
                    log, uplink_traces[0])
        throughput[name] = per_n
    return SlowFadingResult(client_counts=list(client_counts),
                            throughput_mbps=throughput,
                            accuracy=accuracy)
