"""Fig. 16: TCP throughput in simulated fast-fading channels.

One client uploads TCP over channels whose coherence time sweeps from
1 ms down to 100 us (Doppler 400 Hz to 4 kHz).  Throughput is
normalised by the omniscient algorithm because the absolute best rate
falls as coherence shrinks.

Expected shape (paper section 6.3): SoftRate stays near its slow-
fading normalised throughput across all coherence times *without
retraining*; the untrained SNR protocol — whose thresholds reflect a
slower channel — overselects more and more as coherence shrinks,
losing up to ~4x at 100 us; frame-level protocols sit in between,
degraded but not coherence-sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.channel.rayleigh import doppler_for_coherence
from repro.experiments.api import register_experiment
from repro.experiments.common import (averaged_tcp_throughput,
                                      omniscient_factory, rraa_factory,
                                      samplerate_factory,
                                      snr_trained_factory,
                                      softrate_factory)
from repro.traces.workloads import simulation_traces, walking_traces

__all__ = ["FastFadingResult", "run_fig16"]


@dataclass
class FastFadingResult:
    """Normalised throughput per algorithm per coherence time."""

    coherence_times: List[float]
    normalized: Dict[str, List[float]]      # algorithm -> per coherence
    omniscient_mbps: List[float]


def _metrics(result: "FastFadingResult") -> dict:
    out = {}
    for name, values in result.normalized.items():
        for coherence, v in zip(result.coherence_times, values):
            out[f"normalized/{name}/{coherence * 1e6:g}us"] = float(v)
    for coherence, mbps in zip(result.coherence_times,
                               result.omniscient_mbps):
        out[f"omniscient_mbps/{coherence * 1e6:g}us"] = float(mbps)
    return out


@register_experiment(
    "fig16",
    description="TCP throughput in fast-fading channels (no retraining)",
    params={"coherence_times": (1e-3, 500e-6, 200e-6, 100e-6),
            "duration": 4.0, "seeds": (1, 2), "mean_snr_db": 22.0,
            "trace_seed": 16, "phy_backend": None},
    traces=("rayleigh", "walking"),
    algorithms=("softrate", "snr", "rraa", "samplerate", "omniscient"),
    seed_param="seeds", metrics=_metrics)
def run_fig16(coherence_times: Sequence[float] = (1e-3, 500e-6, 200e-6,
                                                  100e-6),
              duration: float = 4.0, seeds=(1, 2),
              mean_snr_db: float = 22.0, trace_seed: int = 16,
              phy_backend=None) -> FastFadingResult:
    """Run the fast-fading sweep.

    The SNR-based protocol is trained on *walking* traces (40 Hz), as
    in the paper: "the SNR-BER relationships used by the SNR-based
    protocol are obtained over the walking traces used in section 6.2"
    — which is exactly what makes it untrained for these channels.

    ``phy_backend`` selects frame-fate computation for the TCP
    simulations: ``None`` (precomputed trace columns), ``"full"``, or
    ``"surrogate"`` (see :mod:`repro.phy.backend`).  Caveat: the
    omniscient baseline's *rate choices* still come from the
    precomputed trace, so under a backend it is a strong heuristic
    rather than a true oracle — normalized values may exceed 1.0.
    """
    walking = walking_traces(1, seed=trace_seed)[0]
    algorithms = [
        ("SoftRate", softrate_factory),
        ("SNR (untrained)", snr_trained_factory(walking)),
        ("RRAA", rraa_factory),
        ("SampleRate", samplerate_factory),
    ]

    normalized: Dict[str, List[float]] = {name: []
                                          for name, _f in algorithms}
    omniscient_mbps: List[float] = []
    for i, coherence in enumerate(coherence_times):
        doppler = doppler_for_coherence(coherence)
        up = simulation_traces(doppler, n_links=1, duration=duration,
                               mean_snr_db=mean_snr_db,
                               seed=trace_seed + i)
        down = simulation_traces(doppler, n_links=1, duration=duration,
                                 mean_snr_db=mean_snr_db,
                                 seed=trace_seed + 100 + i)
        baseline = averaged_tcp_throughput(
            up, down, omniscient_factory, n_clients=1,
            duration=duration, seeds=seeds,
            phy_backend=phy_backend)["mbps"]
        omniscient_mbps.append(baseline)
        for name, factory in algorithms:
            mbps = averaged_tcp_throughput(
                up, down, factory, n_clients=1, duration=duration,
                seeds=seeds, phy_backend=phy_backend)["mbps"]
            normalized[name].append(
                mbps / baseline if baseline > 0 else 0.0)
    return FastFadingResult(coherence_times=list(coherence_times),
                            normalized=normalized,
                            omniscient_mbps=omniscient_mbps)
