"""Fig. 7: SoftPHY-based vs SNR-based BER estimation, static channel.

Runs the bit-exact PHY over AWGN at a grid of transmit powers and
rates (the Table 4 "Static" experiment, scaled down), then produces:

* **7(a)** — per-frame SoftPHY BER estimate vs ground truth, binned;
* **7(b)** — the same with all bits of a bin aggregated, resolving
  true BERs far below what one frame can measure;
* **7(c)** — ground-truth BER vs the frame's preamble SNR estimate,
  per rate, exposing the spread that makes SNR an unreliable
  predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.binning import (BinnedBer, aggregate_bits_per_bin,
                                    log_bin_ber)
from repro.core.hints import frame_ber_estimate
from repro.experiments.api import register_experiment
from repro.phy.rates import RATE_TABLE
from repro.phy.snr import db_to_linear
from repro.phy.transceiver import Transceiver

__all__ = ["Fig7Data", "run_fig7"]


@dataclass
class Fig7Data:
    """All three panels of Fig. 7."""

    estimates: np.ndarray           # per frame
    truths: np.ndarray
    error_counts: np.ndarray
    snr_estimates: np.ndarray
    rate_indices: np.ndarray
    bits_per_frame: int

    def panel_a(self, decades_per_bin: float = 0.25) -> List[BinnedBer]:
        """Per-frame binned estimate vs truth."""
        return log_bin_ber(self.estimates, self.truths, decades_per_bin)

    def panel_b(self, decades_per_bin: float = 0.5) -> List[Tuple]:
        """Aggregated-bits estimate vs truth."""
        return aggregate_bits_per_bin(self.estimates, self.error_counts,
                                      self.bits_per_frame,
                                      decades_per_bin)

    def panel_c(self, rate_index: int,
                bin_db: float = 1.0) -> List[Tuple[float, float, float]]:
        """(snr_bin, mean true BER, std true BER) for one rate."""
        mask = self.rate_indices == rate_index
        snrs = self.snr_estimates[mask]
        truths = self.truths[mask]
        out = []
        for edge in np.arange(np.floor(snrs.min()),
                              np.ceil(snrs.max()) + bin_db, bin_db):
            sel = (snrs >= edge) & (snrs < edge + bin_db)
            if sel.sum() < 3:
                continue
            out.append((float(edge + bin_db / 2),
                        float(truths[sel].mean()),
                        float(truths[sel].std())))
        return out

    def estimator_error_decades(self) -> float:
        """Median |log10(estimate / truth)| over errored frames."""
        mask = self.truths > 0
        if not mask.any():
            return float("nan")
        err = np.abs(np.log10(np.clip(self.estimates[mask], 1e-12, 1))
                     - np.log10(self.truths[mask]))
        return float(np.median(err))


def _metrics(data: Fig7Data) -> dict:
    return {
        "estimator_error_decades": data.estimator_error_decades(),
        "n_frames": float(data.truths.size),
        "errored_fraction": float((data.truths > 0).mean()),
    }


@register_experiment(
    "fig07",
    description="SoftPHY vs SNR BER estimation on a static channel",
    params={"seed": 7, "payload_bits": 1600, "frames_per_point": 4,
            "batch_size": 16, "phy_backend": "full"},
    traces=(), algorithms=(), metrics=_metrics)
def run_fig7(seed: int = 7, payload_bits: int = 1600,
             frames_per_point: int = 4, batch_size: int = 16,
             snr_grid_db: np.ndarray = None,
             rate_indices: List[int] = None,
             phy_backend="full") -> Fig7Data:
    """Run the static BER-estimation experiment.

    The default grid covers each rate's waterfall region so the
    collected frames span BERs from ~0.3 down past 1e-6.

    ``batch_size`` frames are decoded at a time through the batched
    PHY fast path.  Noise is drawn frame-by-frame in sweep order, so
    the results are bit-identical for every ``batch_size`` (including
    1, the per-frame reference path) — the knob only trades memory for
    throughput.

    ``phy_backend`` selects how frames are computed: ``"full"`` (the
    bit-exact pipeline, default) or ``"surrogate"`` (the calibrated
    table-driven backend of :mod:`repro.phy.backend` — statistically
    matched, not bit-identical, orders of magnitude faster).
    """
    rng = np.random.default_rng(seed)
    rates = RATE_TABLE.prototype_subset()
    if rate_indices is None:
        rate_indices = list(range(len(rates)))
    if snr_grid_db is None:
        snr_grid_db = np.arange(0.0, 19.0, 1.0)
    batch_size = max(int(batch_size), 1)

    if phy_backend != "full":
        from repro.phy.backend import get_backend
        backend = get_backend(phy_backend, rates=rates)
        return _run_fig7_backend(backend, rng, payload_bits,
                                 frames_per_point, snr_grid_db,
                                 rate_indices)

    phy = Transceiver(rates=rates)
    payload = rng.integers(0, 2, payload_bits).astype(np.uint8)
    estimates, truths, errors, snrs, rates_used = [], [], [], [], []
    for rate_index in rate_indices:
        tx = phy.transmit(payload, rate_index=rate_index)
        # One noise variance per frame of this rate's grid, in the
        # same order the sequential loop would visit them.
        noise_vars = np.repeat([db_to_linear(-float(s))
                                for s in snr_grid_db], frames_per_point)
        for start in range(0, noise_vars.size, batch_size):
            chunk = noise_vars[start:start + batch_size]
            gains = np.ones((chunk.size, tx.layout.n_symbols),
                            dtype=complex)
            for rx in phy.run_batch(tx, gains, chunk, rng):
                estimates.append(frame_ber_estimate(rx.hints))
                truths.append(rx.true_ber)
                errors.append(int(rx.error_mask.sum()))
                snrs.append(rx.snr_db)
                rates_used.append(rate_index)
    return Fig7Data(estimates=np.array(estimates),
                    truths=np.array(truths),
                    error_counts=np.array(errors),
                    snr_estimates=np.array(snrs),
                    rate_indices=np.array(rates_used),
                    bits_per_frame=payload_bits + 32)


def _run_fig7_backend(backend, rng, payload_bits: int,
                      frames_per_point: int, snr_grid_db,
                      rate_indices) -> Fig7Data:
    """The fig07 sweep through a :class:`PhyBackend`.

    Same (rate, SNR, frame) visit order as the bit-exact path, but
    each frame outcome comes from ``backend.frame_outcome`` on a flat
    SNR trajectory.
    """
    estimates, truths, errors, snrs, rates_used = [], [], [], [], []
    for rate_index in rate_indices:
        for snr_db in snr_grid_db:
            trajectory = np.array([float(snr_db)])
            for _ in range(frames_per_point):
                out = backend.frame_outcome(rate_index, trajectory,
                                            payload_bits, rng)
                estimates.append(out.ber_est)
                truths.append(out.ber_true)
                errors.append(out.n_bit_errors)
                snrs.append(out.snr_db)
                rates_used.append(rate_index)
    return Fig7Data(estimates=np.array(estimates),
                    truths=np.array(truths),
                    error_counts=np.array(errors),
                    snr_estimates=np.array(snrs),
                    rate_indices=np.array(rates_used),
                    bits_per_frame=payload_bits + 32)
