"""Fig. 5: BER at QPSK 3/4 vs BER at the other bit rates.

Validates the two observations behind SoftRate's BER prediction
heuristic (section 3.3): at any instant the BER is monotone in bit
rate, and adjacent rates are separated by at least an order of
magnitude within the usable BER range.

Data comes from a walking trace, as in the paper: every 5 ms snapshot
provides one (BER@QPSK3/4, BER@other) pair per rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.channel.mobility import WalkingTrajectory
from repro.experiments.api import register_experiment
from repro.traces.format import LinkTrace
from repro.traces.generate import generate_fading_trace

__all__ = ["Fig5Data", "run_fig5"]

_REFERENCE_RATE = 3            # QPSK 3/4
_USABLE_BER = (1e-7, 1e-2)


@dataclass
class Fig5Data:
    """Per-rate BER pairs against the QPSK 3/4 reference."""

    pairs: Dict[int, np.ndarray]         # rate -> (n, 2) [ref, other]
    rate_names: List[str]

    def monotone_fraction(self, floor: float = 1e-7) -> float:
        """Fraction of snapshots where BER is monotone across rates.

        BERs below ``floor`` are unmeasurable in practice (and in the
        paper's 960-byte frames), so they are treated as ties; the
        paper reports 96% of 5 ms cycles monotone by this criterion.
        """
        refs = self.pairs[_REFERENCE_RATE][:, 0]
        count = 0
        total = len(refs)
        for i in range(total):
            series = [max(self.pairs[r][i, 1], floor)
                      for r in sorted(self.pairs)]
            if all(a <= b * (1 + 1e-9) for a, b in zip(series,
                                                       series[1:])):
                count += 1
        return count / total if total else 0.0

    def median_separation_decades(self, rate: int) -> float:
        """Median log10(BER_rate / BER_ref) in the usable band."""
        data = self.pairs[rate]
        ref = data[:, 0]
        mask = (ref >= _USABLE_BER[0]) & (ref <= _USABLE_BER[1])
        if not mask.any():
            return float("nan")
        ratio = np.log10(np.clip(data[mask, 1], 1e-12, 1.0)) \
            - np.log10(ref[mask])
        return float(np.median(ratio))


def _metrics(data: Fig5Data) -> dict:
    out = {"monotone_fraction": data.monotone_fraction()}
    for rate in sorted(data.pairs):
        if rate == _REFERENCE_RATE:
            continue
        out[f"separation_decades/{data.rate_names[rate]}"] = \
            data.median_separation_decades(rate)
    return out


@register_experiment(
    "fig05",
    description="Cross-rate BER monotonicity and separation",
    params={"seed": 5, "duration": 10.0},
    traces=("walking",), algorithms=(), metrics=_metrics)
def run_fig5(seed: int = 5, duration: float = 10.0,
             trace: LinkTrace = None) -> Fig5Data:
    """Collect cross-rate BER pairs from a walking trace."""
    if trace is None:
        rng = np.random.default_rng(seed)
        trajectory = WalkingTrajectory(rng, start_distance=5.0)
        trace = generate_fading_trace(rng, duration,
                                      trajectory.mean_snr_db,
                                      doppler_hz=40.0)
    ref = trace.ber_true[_REFERENCE_RATE]
    pairs = {}
    for r in range(trace.n_rates):
        pairs[r] = np.column_stack([ref, trace.ber_true[r]])
    return Fig5Data(pairs=pairs, rate_names=list(trace.rate_names))
