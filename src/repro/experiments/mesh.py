"""The mesh campaign cell: one multi-hop roaming scenario.

One registered experiment (``mesh``) that the mesh campaign family
expands over — a short saturated flood from a (possibly roaming)
client across a relay chain built by
:class:`repro.sim.mesh.network.MeshNetwork`, reduced to flat scalar
metrics in the same style as the single-AP ``cell`` experiment:
end-to-end goodput and delivery, per-hop link delivery, handoff
counts/disruption, and the exact ``frame_log_digest`` the campaign
determinism wall asserts on.

Unlike ``cell`` there are no traces: channels derive from geometry,
path loss, shadowing and per-link Rayleigh fading, so only the
untrained protocols can run (``snr``/``charm`` need a training trace
and ``omniscient`` needs a future to read).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.metrics import (frame_log_digest,
                                    handoff_disruption,
                                    per_hop_delivery)
from repro.experiments.api import register_experiment
from repro.sim.mesh import CLIENT_ID, run_mesh_scenario

__all__ = ["run_mesh", "MESH_PROTOCOLS"]

#: Protocols that can run without a training trace (mesh links are
#: generated from geometry, so there is nothing to train on).
MESH_PROTOCOLS = ("softrate", "samplerate", "rraa", "snr-untrained")


@register_experiment(
    "mesh",
    description="one mesh campaign cell (relay chain + roaming client)",
    params={"protocol": "softrate", "n_relays": 2, "spacing_m": 9.0,
            "speed_mps": 0.0, "shadowing_sigma_db": 0.0,
            "doppler_hz": 10.0, "duration": 0.08, "payload_bits": 368,
            "ttl": 0, "detect_prob": 0.8, "use_postambles": True,
            "seed": 1, "replicate": 0, "phy_backend": "surrogate"},
    traces=(),
    algorithms=MESH_PROTOCOLS,
    seed_param="seed")
def run_mesh(protocol: str = "softrate", n_relays: int = 2,
             spacing_m: float = 9.0, speed_mps: float = 0.0,
             shadowing_sigma_db: float = 0.0, doppler_hz: float = 10.0,
             duration: float = 0.08, payload_bits: int = 368,
             ttl: int = 0, detect_prob: float = 0.8,
             use_postambles: bool = True, seed: int = 1,
             replicate: int = 0,
             phy_backend: Optional[str] = "surrogate") -> dict:
    """Run one mesh scenario; return its flat metric dict.

    Args:
        protocol: untrained rate adaptation protocol name (one of
            :data:`MESH_PROTOCOLS`).
        n_relays: relays/APs in the chain (the last is the sink).
        spacing_m: relay spacing in metres — the hidden-terminal knob
            (relays two hops apart fall below carrier sense).
        speed_mps: client roaming speed along the chain (0 = static;
            vehicular speeds like 15-30 m/s produce handoffs within a
            MAC-scale window).
        shadowing_sigma_db: per-link log-normal shadowing spread.
        doppler_hz: Rayleigh Doppler spread of every link.
        duration: simulated seconds of saturated flood.
        payload_bits: packet payload size.
        ttl: packet TTL in MAC hops; 0 picks the network default
            (``n_relays + 2``).
        detect_prob / use_postambles: SoftPHY interference-detection
            fidelity.
        seed: scenario seed (campaigns derive one per scenario).
        replicate: replicate index; ignored by the simulation, it only
            diversifies a campaign scenario's derived seed.
        phy_backend: ``"surrogate"`` (default) or ``"full"``.

    Returns:
        Flat ``{metric: float}`` dict: ``mbps`` (end-to-end goodput),
        ``delivery_rate`` / ``mean_hops`` (network layer),
        ``loss_rate`` / ``retry_rate`` (over logged MAC attempts),
        ``access_delivery`` and ``mean_hop_delivery`` /
        ``min_hop_delivery`` (link layer), ``handoff_count`` /
        ``handoff_disruption_s`` (roaming), drop counters, ``n_frames``
        and ``frame_log_digest``.
    """
    from repro.experiments.common import protocol_factory

    if protocol not in MESH_PROTOCOLS:
        raise ValueError(f"unknown mesh protocol {protocol!r}; "
                         f"available: {list(MESH_PROTOCOLS)}")
    result = run_mesh_scenario(
        protocol_factory(protocol), duration=duration,
        n_relays=n_relays, spacing_m=spacing_m,
        client_speed_mps=speed_mps,
        shadowing_sigma_db=shadowing_sigma_db, doppler_hz=doppler_hz,
        phy_backend=phy_backend, detect_prob=detect_prob,
        use_postambles=use_postambles, payload_bits=payload_bits,
        ttl=ttl if ttl > 0 else None, seed=seed)

    entries = [e for log in result.frame_logs.values() for e in log]
    n_frames = len(entries)
    lost = sum(1 for e in entries if not e.delivered)
    retries = sum(1 for e in entries if e.retry > 0)

    client_log = result.frame_logs.get(CLIENT_ID, [])
    access_ok = sum(1 for e in client_log if e.delivered)
    access = access_ok / len(client_log) if client_log \
        else float("nan")

    chain = [(i, i + 1) for i in range(1, n_relays)]
    hops = per_hop_delivery(result.frame_logs, chain)
    import numpy as np
    used = [h for h in hops if not np.isnan(h)]
    return {
        "mbps": result.goodput_mbps,
        "delivery_rate": result.delivery_rate,
        "mean_hops": result.mean_hops,
        "loss_rate": lost / n_frames if n_frames else float("nan"),
        "retry_rate": retries / n_frames if n_frames else float("nan"),
        "access_delivery": access,
        "mean_hop_delivery": float(np.mean(used)) if used
        else float("nan"),
        "min_hop_delivery": float(np.min(used)) if used
        else float("nan"),
        "handoff_count": float(len(result.handoff_times)),
        "handoff_disruption_s": handoff_disruption(
            [t for t, _ in result.delivered], result.handoff_times,
            result.duration),
        "ttl_drops": float(result.ttl_drops),
        "duplicate_drops": float(result.duplicate_drops),
        "n_frames": float(n_frames),
        "frame_log_digest": float(frame_log_digest(result.frame_logs)),
    }
