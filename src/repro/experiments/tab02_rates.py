"""Tables 2 & 3: the 802.11a/g rate table and OFDM operating modes.

Deterministic (no RNG): the experiment packages the static tables the
paper reports, so the registry covers every table/figure of the
evaluation and ``repro run tab02`` renders them like the benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import format_table
from repro.experiments.api import register_experiment
from repro.phy.rates import MODES, RATE_TABLE

__all__ = ["RateTableData", "run_tab02"]


@dataclass
class RateTableData:
    """Rows of Tables 2 and 3 plus summary counts."""

    rate_rows: List[List[str]]          # Table 2
    mode_rows: List[List[str]]          # Table 3
    n_rates: int
    n_prototype: int
    n_modes: int
    max_mbps: float

    def render(self) -> str:
        table2 = format_table(
            ["Modulation", "Code Rate", "802.11 Rate", "Implemented"],
            self.rate_rows)
        table3 = format_table(
            ["Mode", "Bandwidth", "Tones", "Symbol time"],
            self.mode_rows)
        return f"{table2}\n\n{table3}"


def _metrics(data: RateTableData) -> dict:
    return {
        "n_rates": float(data.n_rates),
        "n_prototype": float(data.n_prototype),
        "n_modes": float(data.n_modes),
        "max_mbps": float(data.max_mbps),
    }


@register_experiment(
    "tab02",
    description="Rate table (Table 2) and OFDM modes (Table 3)",
    params={}, traces=(), algorithms=(), seed_param=None,
    metrics=_metrics)
def run_tab02() -> RateTableData:
    """Build the rate/mode tables the paper's Tables 2 and 3 list."""
    rate_rows = [[r.modulation, str(r.code_rate), f"{r.mbps:g} Mbps",
                  "Yes" if r.in_prototype else "No"]
                 for r in RATE_TABLE]
    mode_rows = [[m.name, f"{m.bandwidth_hz / 1e6:g} MHz",
                  str(m.n_subcarriers), f"{m.symbol_time * 1e6:g} us"]
                 for m in MODES.values()]
    return RateTableData(
        rate_rows=rate_rows, mode_rows=mode_rows,
        n_rates=len(RATE_TABLE),
        n_prototype=len(RATE_TABLE.prototype_subset()),
        n_modes=len(MODES),
        max_mbps=max(r.mbps for r in RATE_TABLE))
