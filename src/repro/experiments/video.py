"""The ``video`` experiment: rateless-over-PPR vs plain ARQ streaming.

One deadline-annotated GoP video workload
(:mod:`repro.traces.video`) is streamed over one fading link under
two delivery schemes sharing the same packet size, bit rate, and
channel — so airtime per transmission is identical and the schemes
differ only in what a transmission is worth:

* ``arq`` — plain 802.11-style delivery: each video frame is
  segmented into packets, every packet is retransmitted until its CRC
  passes (bounded retries), and a frame is decodable only when all
  its packets arrived.
* ``rateless`` — each video frame becomes a fountain-symbol stream
  (:mod:`repro.recovery.rateless`); the sender never retransmits,
  it just keeps sending fresh symbols.  Symbols from CRC-verified
  packets count with weight 1.0; packets that failed their CRC are
  *salvaged* PPR-style — each symbol-aligned chunk whose SoftPHY
  hint confidence is high enough joins the decode with its
  probability of being error-free as weight.

QoE comes out through :mod:`repro.analysis.metrics`:
``decodable_frame_rate``, cascading ``rebuffer_time``, and
``deadline_miss_ratio``, per scheme, plus the airtime each scheme
actually spent — the acceptance comparison is decodable frames at
equal-or-less airtime.

Every decode is verified bit-exact against the sent frame; a decode
poisoned by a confidently-wrong salvaged chunk counts as *not*
decodable (and is reported in ``rateless/poisoned_frames``).
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.analysis.metrics import (deadline_miss_ratio,
                                    decodable_frame_rate,
                                    rebuffer_time)
from repro.core.hints import error_probabilities
from repro.experiments.api import register_experiment
from repro.phy.backend import get_backend
from repro.recovery.rateless import RatelessDecoder, RatelessEncoder
from repro.traces.video import generate_video_trace, reference_video_trace
from repro.traces.workloads import simulation_traces, walking_traces

__all__ = ["run_video", "VIDEO_SCHEMES", "VIDEO_SCENARIOS"]

VIDEO_SCHEMES = ("rateless", "arq", "both")
VIDEO_SCENARIOS = ("fading", "walking")

#: Trajectory sample points per packet airtime (matches
#: :meth:`repro.phy.backend.PhyBackend.observe`).
_SNR_SAMPLES = 8


def _frame_bits(seed: int, index: int, size_bits: int) -> np.ndarray:
    """The deterministic content of video frame ``index``."""
    rng = np.random.default_rng((seed, 91, index))
    return rng.integers(0, 2, size_bits).astype(np.uint8)


def _link_trace(scenario: str, duration: float, mean_snr_db: float,
                doppler_hz: float, payload_bits: int, seed: int):
    """One link trace of the requested family (fig16 / fig08)."""
    if scenario == "fading":
        return simulation_traces(doppler_hz, n_links=1,
                                 duration=duration,
                                 mean_snr_db=mean_snr_db, seed=seed,
                                 payload_bits=payload_bits)[0]
    if scenario == "walking":
        return walking_traces(1, duration=duration, seed=seed,
                              payload_bits=payload_bits)[0]
    raise ValueError(f"unknown scenario {scenario!r}; available: "
                     f"{list(VIDEO_SCENARIOS)}")


def _trajectory(trace, time: float, airtime: float) -> np.ndarray:
    """The trace's true-SNR trajectory across one packet's airtime."""
    times = time + np.linspace(0.0, airtime, _SNR_SAMPLES)
    slots = (times / trace.slot_duration).astype(np.int64) \
        % trace.n_slots
    source = trace.true_snr_db if trace.true_snr_db is not None \
        else trace.snr_db
    return np.asarray(source, dtype=np.float64)[slots]


class _Streamer:
    """Shared transmission bookkeeping for both schemes."""

    def __init__(self, backend, trace, rate_index: int,
                 payload_bits: int, rng: np.random.Generator,
                 window: float):
        self.backend = backend
        self.trace = trace
        self.rate_index = rate_index
        self.payload_bits = payload_bits
        self.rng = rng
        self.window = window
        self.airtime_per_packet = backend.frame_airtime(payload_bits,
                                                        rate_index)
        self.time = 0.0
        self.airtime = 0.0
        self.packets = 0

    def can_send(self, limit: float) -> bool:
        """One more packet fits before both ``limit`` and the window."""
        end = self.time + self.airtime_per_packet
        return end <= self.window and self.time <= limit

    def send(self, need_hints: bool = False,
             need_error_mask: bool = False):
        """Transmit one packet now; advance time and airtime."""
        trajectory = _trajectory(self.trace, self.time,
                                 self.airtime_per_packet)
        out = self.backend.frame_outcome(
            self.rate_index, trajectory, self.payload_bits, self.rng,
            need_hints=need_hints, need_error_mask=need_error_mask)
        self.time += self.airtime_per_packet
        self.airtime += self.airtime_per_packet
        self.packets += 1
        return out


def _frame_budget(size_bits: int, payload_bits: int,
                  budget_factor: float) -> int:
    """Per-frame packet budget, identical for both schemes: the
    frame's ideal packet count times ``budget_factor``."""
    ideal = -(-size_bits // payload_bits)
    return max(int(np.ceil(budget_factor * ideal)), 1)


def _run_arq(video, streamer: _Streamer, payload_bits: int,
             abandon_slack: float, budget_factor: float,
             max_attempts: int, seed: int):
    """Stream the workload under plain per-packet ARQ."""
    decode_times = [None] * video.n_frames
    for frame in video.frames:
        limit = frame.deadline + abandon_slack
        if streamer.time > limit:
            continue
        budget = _frame_budget(frame.size_bits, payload_bits,
                               budget_factor)
        n_packets = -(-frame.size_bits // payload_bits)
        delivered_all = True
        for _ in range(n_packets):
            attempts = 0
            delivered = False
            while (not delivered and attempts < max_attempts
                   and budget > 0 and streamer.can_send(limit)):
                out = streamer.send()
                attempts += 1
                budget -= 1
                delivered = out.delivered
            if not delivered:
                delivered_all = False
                break                   # frame lost; stop wasting air
        if delivered_all:
            decode_times[frame.index] = streamer.time
    return decode_times


def _run_rateless(video, streamer: _Streamer, symbol_bits: int,
                  symbols_per_packet: int, abandon_slack: float,
                  budget_factor: float, salvage_max_error_prob: float,
                  overhead: float, seed: int):
    """Stream the workload as fountain symbols with PPR salvage."""
    payload_bits = symbol_bits * symbols_per_packet
    decode_times = [None] * video.n_frames
    poisoned = 0
    salvaged_weight = 0.0
    symbols_received = 0
    for frame in video.frames:
        limit = frame.deadline + abandon_slack
        if streamer.time > limit:
            continue
        budget = _frame_budget(frame.size_bits, payload_bits,
                               budget_factor)
        data = _frame_bits(seed, frame.index, frame.size_bits)
        enc = RatelessEncoder(data, symbol_bits,
                              seed=(seed * 1000003 + frame.index))
        dec = RatelessDecoder(frame.size_bits, symbol_bits,
                              seed=enc.seed, overhead=overhead)
        next_index = 0
        while (not dec.decodable and budget > 0
               and streamer.can_send(limit)):
            budget -= 1
            indices = range(next_index,
                            next_index + symbols_per_packet)
            payload = np.concatenate([enc.symbol(i) for i in indices])
            next_index += symbols_per_packet
            out = streamer.send(need_hints=True, need_error_mask=True)
            if not out.detected:
                continue
            if out.delivered:
                for offset, index in enumerate(indices):
                    dec.add(index, payload[offset * symbol_bits:
                                           (offset + 1) * symbol_bits])
                    symbols_received += 1
                continue
            # PPR-style salvage of the failed packet: the receiver's
            # body estimate is the sent bits with the channel's error
            # positions flipped; chunk confidence comes from the
            # SoftPHY hints over the same positions.
            p = error_probabilities(out.hints)
            for offset, index in enumerate(indices):
                sl = slice(offset * symbol_bits,
                           (offset + 1) * symbol_bits)
                chunk_p = p[sl]
                if float(chunk_p.mean()) > salvage_max_error_prob:
                    continue
                bits = payload[sl] ^ out.error_mask[sl]
                weight = float(np.prod(1.0 - chunk_p))
                dec.add(index, bits, weight=weight)
                salvaged_weight += weight
                symbols_received += 1
        if dec.decodable:
            decoded = dec.decode()
            if decoded is not None and np.array_equal(decoded, data):
                decode_times[frame.index] = streamer.time
            else:
                poisoned += 1
    return decode_times, poisoned, salvaged_weight, symbols_received


def _digest(decode_times) -> int:
    """48-bit content digest of per-frame decode times (determinism
    wall currency, like ``frame_log_digest``)."""
    h = hashlib.sha256()
    for t in decode_times:
        h.update(f"{t!r}\n".encode())
    return int.from_bytes(h.digest()[:6], "big")


def _qoe(prefix: str, video, decode_times, streamer: _Streamer) -> dict:
    deadlines = [f.deadline for f in video.frames]
    return {
        f"{prefix}/decodable_frame_rate":
            decodable_frame_rate(decode_times),
        f"{prefix}/rebuffer_time":
            rebuffer_time(decode_times, deadlines),
        f"{prefix}/deadline_miss_ratio":
            deadline_miss_ratio(decode_times, deadlines),
        f"{prefix}/airtime": streamer.airtime,
        f"{prefix}/packets": float(streamer.packets),
        f"{prefix}/digest": float(_digest(decode_times)),
    }


@register_experiment(
    "video",
    description="rateless-coded video over PPR salvage vs plain ARQ",
    params={"scenario": "fading", "scheme": "both",
            "workload": "reference", "video_duration": 4.0,
            "video_bitrate_bps": 4.8e5, "fps": 30.0, "gop": 15,
            "mean_snr_db": 7.0, "doppler_hz": 200.0, "rate_index": 3,
            "symbol_bits": 256, "symbols_per_packet": 4,
            "salvage_max_error_prob": 1e-3, "overhead": 0.05,
            "abandon_slack": 0.5, "budget_factor": 2.0,
            "max_attempts": 8, "seed": 1,
            "replicate": 0, "phy_backend": "surrogate"},
    traces=("rayleigh", "walking"),
    algorithms=VIDEO_SCHEMES,
    seed_param="seed")
def run_video(scenario: str = "fading", scheme: str = "both",
              workload: str = "reference", video_duration: float = 4.0,
              video_bitrate_bps: float = 4.8e5, fps: float = 30.0,
              gop: int = 15, mean_snr_db: float = 7.0,
              doppler_hz: float = 200.0, rate_index: int = 3,
              symbol_bits: int = 256, symbols_per_packet: int = 4,
              salvage_max_error_prob: float = 1e-3,
              overhead: float = 0.05, abandon_slack: float = 0.5,
              budget_factor: float = 2.0, max_attempts: int = 8,
              seed: int = 1, replicate: int = 0,
              phy_backend: Optional[str] = "surrogate") -> dict:
    """Stream one video workload under the requested scheme(s).

    Args:
        scenario: link family — ``"fading"`` (fig16-style fixed
            Doppler) or ``"walking"`` (fig08-style mobility).
        scheme: ``"rateless"``, ``"arq"``, or ``"both"`` (runs each
            over its own copy of the identical channel and adds the
            comparison metrics).
        workload: ``"reference"`` (the checked-in trace) or
            ``"generated"`` (grown from ``video_duration`` /
            ``video_bitrate_bps`` / ``fps`` / ``gop`` and the seed).
        video_duration / video_bitrate_bps / fps / gop: generated-
            workload knobs (ignored for ``"reference"``).
        mean_snr_db / doppler_hz: fading-scenario channel knobs.
        rate_index: fixed transmit rate for every packet.
        symbol_bits: fountain symbol (= salvage chunk) size.
        symbols_per_packet: symbols per transmitted packet; the packet
            payload is ``symbol_bits * symbols_per_packet`` for both
            schemes, so per-packet airtime is identical.
        salvage_max_error_prob: chunk salvage threshold on mean
            per-bit error probability.
        overhead: rateless decode threshold margin.
        abandon_slack: how long past its deadline the sender keeps
            working on a frame before dropping it.
        budget_factor: per-frame airtime budget for *both* schemes,
            as a multiple of the frame's ideal packet count — the
            equal-airtime knob of the comparison.
        max_attempts: ARQ per-packet retry bound.
        seed: scenario seed (drives channel, workload, and content).
        replicate: diversifies a campaign scenario's derived seed.
        phy_backend: ``"surrogate"`` (default) or ``"full"``.

    Returns:
        Flat ``{metric: float}`` dict with per-scheme
        ``decodable_frame_rate`` / ``rebuffer_time`` /
        ``deadline_miss_ratio`` / ``airtime`` / ``packets`` /
        ``digest``; the rateless side adds ``poisoned_frames``,
        ``salvaged_weight`` and ``symbols_received``; ``"both"`` adds
        ``dfr_gain`` (rateless minus ARQ decodable-frame rate).
    """
    if scheme not in VIDEO_SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; available: "
                         f"{list(VIDEO_SCHEMES)}")
    if workload not in ("reference", "generated"):
        raise ValueError(f"unknown workload {workload!r}; available: "
                         "['reference', 'generated']")
    if workload == "reference":
        video = reference_video_trace()
    else:
        video = generate_video_trace(
            duration=video_duration, fps=fps, gop=gop,
            mean_bitrate_bps=video_bitrate_bps, seed=seed)
    payload_bits = symbol_bits * symbols_per_packet
    window = video.frames[-1].deadline + abandon_slack
    trace = _link_trace(scenario, window + 0.5, mean_snr_db,
                        doppler_hz, payload_bits, seed)
    backend = get_backend(phy_backend or "surrogate")

    out: dict = {}
    schemes = ("rateless", "arq") if scheme == "both" else (scheme,)
    for name in schemes:
        # Each scheme streams over the same trace with its own
        # deterministic draw stream: equal channel, equal airtime
        # per packet, independent noise realisations.
        rng = np.random.default_rng(
            (seed, replicate, 1 if name == "rateless" else 2))
        streamer = _Streamer(backend, trace, rate_index, payload_bits,
                             rng, window)
        if name == "arq":
            times = _run_arq(video, streamer, payload_bits,
                             abandon_slack, budget_factor,
                             max_attempts, seed)
        else:
            times, poisoned, weight, n_sym = _run_rateless(
                video, streamer, symbol_bits, symbols_per_packet,
                abandon_slack, budget_factor, salvage_max_error_prob,
                overhead, seed)
            out["rateless/poisoned_frames"] = float(poisoned)
            out["rateless/salvaged_weight"] = weight
            out["rateless/symbols_received"] = float(n_sym)
        out.update(_qoe(name, video, times, streamer))
    if scheme == "both":
        out["dfr_gain"] = (out["rateless/decodable_frame_rate"]
                           - out["arq/decodable_frame_rate"])
    return out
