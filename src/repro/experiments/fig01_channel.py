"""Fig. 1: SNR and BER fluctuations over a walking-speed fading channel.

Samples a :class:`WalkingTrajectory` at two zoom levels (a 10-second
window and a 350 ms detail) and reports the BPSK-1/2 BER implied by
the instantaneous SNR — the same three panels as the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.channel.mobility import WalkingTrajectory
from repro.experiments.api import register_experiment
from repro.phy.rates import RATE_TABLE
from repro.phy.snr import db_to_linear
from repro.traces.analytic import coded_ber

__all__ = ["Fig1Data", "run_fig1"]


@dataclass
class Fig1Data:
    """The three panels of Fig. 1."""

    window_times: np.ndarray        # 10 s panel
    window_snr_db: np.ndarray
    detail_times: np.ndarray        # 350 ms panel
    detail_snr_db: np.ndarray
    ber_times: np.ndarray           # BPSK 1/2 BER panel
    ber: np.ndarray

    def fade_depth_db(self) -> float:
        """Peak-to-trough SNR swing in the detail window."""
        return float(self.detail_snr_db.max() - self.detail_snr_db.min())

    def fade_durations_ms(self, threshold_db: float = 10.0) -> List[float]:
        """Durations of detail-window fades below median - threshold."""
        median = np.median(self.detail_snr_db)
        below = self.detail_snr_db < median - threshold_db
        dt = (self.detail_times[1] - self.detail_times[0]) * 1e3
        runs, current = [], 0
        for flag in below:
            if flag:
                current += 1
            elif current:
                runs.append(current * dt)
                current = 0
        if current:
            runs.append(current * dt)
        return runs


def _metrics(data: Fig1Data) -> dict:
    fades = data.fade_durations_ms()
    ber_floor = max(float(data.ber.min()), 1e-12)
    return {
        "fade_depth_db": data.fade_depth_db(),
        "num_fades": float(len(fades)),
        "median_fade_ms": float(np.median(fades)) if fades
        else float("nan"),
        "ber_dynamic_range_decades": float(
            np.log10(max(float(data.ber.max()), 1e-12) / ber_floor)),
    }


@register_experiment(
    "fig01",
    description="SNR/BER fluctuation over a walking fading channel",
    params={"seed": 1, "detail_start": 4.0, "duration": 10.0},
    traces=("walking",), algorithms=(), metrics=_metrics)
def run_fig1(seed: int = 1, detail_start: float = 4.0,
             duration: float = 10.0) -> Fig1Data:
    """Generate the Fig. 1 panels from one walking trajectory."""
    rng = np.random.default_rng(seed)
    trajectory = WalkingTrajectory(rng, start_distance=5.0)
    bpsk_half = RATE_TABLE.prototype_subset()[0]

    window_times = np.linspace(0.0, duration,
                               max(int(200 * duration), 2))
    window_snr = np.array([trajectory.instantaneous_snr_db(t)
                           for t in window_times])

    detail_times = detail_start + np.linspace(0.0, 0.350, 700)
    detail_snr = np.array([trajectory.instantaneous_snr_db(t)
                           for t in detail_times])

    ber = coded_ber(bpsk_half,
                    np.array([db_to_linear(s) for s in detail_snr]))
    return Fig1Data(window_times=window_times, window_snr_db=window_snr,
                    detail_times=detail_times, detail_snr_db=detail_snr,
                    ber_times=detail_times, ber=ber)
