"""Table 1 and Fig. 4: silent losses under hidden-terminal collisions.

Two senders that cannot carrier-sense each other saturate the medium
with UDP at random rates (the paper's setup: "the two senders s1 and
s2 transmit UDP packets as fast as possible, picking a random transmit
bit rate on each packet ... only collisions result in frame losses").
For each sender we measure the fraction of frames for which *neither*
preamble nor postamble was interference-free (Table 1) and the run
lengths of consecutive such silent losses (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.metrics import ccdf, run_lengths
from repro.experiments.api import register_experiment
from repro.phy.rates import RATE_TABLE
from repro.rateadapt.base import RateAdapter
from repro.sim.eventsim import Simulator
from repro.sim.mac import MacConfig, Station
from repro.sim.topology import make_airtime_fn
from repro.sim.udp import UdpSource
from repro.sim.wireless import WirelessChannel
from repro.traces.synthetic import constant_trace

__all__ = ["SilentLossResult", "run_silent_loss_experiment"]


class _RandomRate(RateAdapter):
    """Picks a uniformly random rate per frame (the paper's workload)."""

    name = "Random"

    def __init__(self, rates, rng: np.random.Generator):
        super().__init__(rates)
        self._rng = rng

    def choose_rate(self, now: float) -> int:
        self.current_rate = int(self._rng.integers(0, len(self.rates)))
        return self.current_rate


@dataclass
class SilentLossResult:
    """Outcome of one Table 1 configuration."""

    frame_sizes: Tuple[int, int]
    silent_fraction: Dict[int, float]       # per sender id
    silent_run_ccdf: Dict[int, List[tuple]]
    frames_sent: Dict[int, int]


def _metrics(result: "SilentLossResult") -> dict:
    out = {}
    for sender, fraction in result.silent_fraction.items():
        out[f"silent_fraction/sender_{sender}"] = float(fraction)
    for sender, count in result.frames_sent.items():
        out[f"frames_sent/sender_{sender}"] = float(count)
    return out


@register_experiment(
    "tab01",
    description="Silent losses under hidden-terminal collisions",
    params={"frame_bytes": (1400, 1400), "duration": 5.0, "seed": 4},
    traces=("constant",), algorithms=("random-rate",),
    metrics=_metrics)
def run_silent_loss_experiment(frame_bytes: Tuple[int, int] = (1400, 1400),
                               duration: float = 5.0,
                               seed: int = 4) -> SilentLossResult:
    """Run one row of Table 1.

    Args:
        frame_bytes: payload sizes of the two senders.
        duration: simulated seconds.
        seed: RNG seed.
    """
    rates = RATE_TABLE.prototype_subset()
    sim = Simulator()
    rng = np.random.default_rng(seed)

    # Lossless channel: only collisions cause losses (paper: "the
    # physical layer parameters ... such that only collisions result in
    # frame losses").  Senders 1 and 2 each talk to their own receiver
    # (3 and 4).
    trace = constant_trace(best_rate=len(rates) - 1, duration=1.0)
    traces = {(1, 3): trace, (2, 4): trace}

    def cs_prob(listener: int, transmitter: int) -> float:
        if {listener, transmitter} == {1, 2}:
            return 0.0                # perfect hidden terminals
        return 1.0

    channel = WirelessChannel(traces, rng, use_postambles=True,
                              carrier_sense_prob=cs_prob)
    airtime = make_airtime_fn(rates)
    # The standard retry limit matters here: binary exponential backoff
    # up to CW_max is what re-aligns the two hidden senders after a
    # collision (section 3.2's argument for why full-overlap rarely
    # repeats on retries).
    config = MacConfig(retry_limit=7)

    stations = {}
    sources = {}
    for sender, receiver, size in [(1, 3, frame_bytes[0]),
                                   (2, 4, frame_bytes[1])]:
        station_rng = np.random.default_rng(seed + sender)
        station = Station(
            sim, channel, sender, station_rng,
            adapter_factory=lambda peer, r=station_rng: _RandomRate(
                rates, r),
            airtime_fn=airtime, config=config)
        # Receivers are passive stations.
        Station(sim, channel, receiver,
                np.random.default_rng(seed + receiver),
                adapter_factory=lambda peer: _RandomRate(
                    rates, np.random.default_rng(0)),
                airtime_fn=airtime, config=config)
        source = UdpSource(sim, flow=sender,
                           transmit=lambda d, s=station, rx=receiver:
                           s.send(rx, d, d.size_bits),
                           size_bytes=size)
        station.on_queue_drain = source.pump
        stations[sender] = station
        sources[sender] = source

    for source in sources.values():
        source.start()
    sim.run_until(duration)

    silent_fraction = {}
    run_ccdfs = {}
    frames = {}
    for sender, station in stations.items():
        log = station.frame_log
        silent_flags = [entry.kind == "silent" for entry in log]
        frames[sender] = len(log)
        silent_fraction[sender] = (np.mean(silent_flags)
                                   if log else 0.0)
        run_ccdfs[sender] = ccdf(run_lengths(silent_flags))
    return SilentLossResult(frame_sizes=frame_bytes,
                            silent_fraction=silent_fraction,
                            silent_run_ccdf=run_ccdfs,
                            frames_sent=frames)
