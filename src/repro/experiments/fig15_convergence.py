"""Fig. 15: convergence of frame-level protocols after a channel step.

The channel alternates between a good state (best rate QAM16 3/4) and
a bad state (best rate QAM16 1/2) every second; we record the rate
each protocol picks per transmission and measure how long it takes to
settle on the new optimum after each step.

Paper's measurements: RRAA converges in 15-85 ms, SampleRate in
600-650 ms, and RRAA's choice is visibly unstable in the good state —
frame-level protocols must keep probing because a zero loss rate
cannot distinguish "barely working" from "comfortably working".
SoftRate (measured here for contrast) converges in a frame or two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.feedback import Feedback
from repro.experiments.api import register_experiment
from repro.experiments.common import protocol_factory
from repro.phy.rates import RATE_TABLE
from repro.rateadapt import SoftRate
from repro.rateadapt.base import RateAdapter
from repro.sim.topology import make_airtime_fn
from repro.traces.format import LinkTrace
from repro.traces.synthetic import alternating_trace

__all__ = ["ConvergenceResult", "run_fig15", "measure_convergence",
           "run_fig15_protocol"]

_GAP = 80e-6      # DIFS + mean backoff + feedback slot


@dataclass
class ConvergenceResult:
    """Rate choices over time plus summary statistics."""

    times: np.ndarray
    rates: np.ndarray
    period: float
    good_rate: int
    bad_rate: int

    def convergence_times(self, settle_window: int = 20,
                          settle_fraction: float = 0.8
                          ) -> Dict[str, List[float]]:
        """Per channel step, seconds until the protocol *settles* on
        the new optimal rate.

        "Settled" means: from this transmission on, at least
        ``settle_fraction`` of the next ``settle_window`` frames use
        the target rate — so a protocol that merely *samples* the
        target (SampleRate's probes) does not count as converged.

        Returns ``{"to_bad": [...], "to_good": [...]}`` in seconds.
        """
        out = {"to_bad": [], "to_good": []}
        n_periods = int(self.times[-1] / self.period)
        for k in range(n_periods):
            t_step = k * self.period
            in_good = (k % 2) == 1
            target = self.good_rate if in_good else self.bad_rate
            mask = (self.times >= t_step) & \
                (self.times < t_step + self.period)
            times = self.times[mask]
            rates = self.rates[mask]
            key = "to_good" if in_good else "to_bad"
            hits = rates == target
            for i in range(len(times)):
                window = hits[i:i + settle_window]
                if window.size == 0:
                    break
                if window.mean() >= settle_fraction:
                    out[key].append(float(times[i] - t_step))
                    break
        return out

    def instability(self) -> float:
        """Mean rate switches per second (RRAA's wobble in Fig. 15)."""
        switches = np.count_nonzero(np.diff(self.rates))
        return switches / float(self.times[-1] - self.times[0])


def measure_convergence(adapter: RateAdapter, trace: LinkTrace,
                        duration: float = 10.0,
                        payload_bits: int = 11200,
                        airtime_fn: Optional[Callable] = None
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Drive an adapter over a trace with a saturated link-level loop."""
    airtime = airtime_fn or make_airtime_fn(RATE_TABLE.prototype_subset())
    t = 0.0
    times, rates = [], []
    while t < duration:
        rate = adapter.choose_rate(t)
        times.append(t)
        rates.append(rate)
        obs = trace.observe(t, rate)
        duration_s = airtime(payload_bits, rate)
        if obs.detected:
            feedback = Feedback(src=1, dest=0, seq=0, ber=obs.ber_est,
                                frame_ok=obs.delivered, snr_db=obs.snr_db)
            adapter.on_feedback(t, rate, feedback, duration_s)
        else:
            adapter.on_silent_loss(t, rate, duration_s)
        t += duration_s + _GAP
    return np.array(times), np.array(rates)


def run_fig15(adapter_factory, good_rate: int = 5, bad_rate: int = 4,
              period: float = 1.0, duration: float = 10.0,
              seed: int = 15) -> ConvergenceResult:
    """Measure one protocol's convergence on the alternating channel."""
    rates_table = RATE_TABLE.prototype_subset()
    trace = alternating_trace(good_rate=good_rate, bad_rate=bad_rate,
                              period=period, duration=duration)
    adapter = adapter_factory(rates_table, trace)
    times, rates = measure_convergence(adapter, trace, duration)
    return ConvergenceResult(times=times, rates=rates, period=period,
                             good_rate=good_rate, bad_rate=bad_rate)


def _metrics(result: ConvergenceResult) -> dict:
    times = result.convergence_times()

    def _median_s(values):
        return float(np.median(values)) if values else float("nan")

    return {
        "median_to_bad_s": _median_s(times["to_bad"]),
        "median_to_good_s": _median_s(times["to_good"]),
        "rate_switches_per_s": result.instability(),
    }


#: The synthetic alternating trace reports paper-scale BER estimates,
#: so SoftRate runs with its default (paper, separation=10) thresholds
#: here, not the trace-calibrated ones the TCP experiments need; the
#: other protocols come straight from the shared factory mapping.
_CONVERGENCE_ADAPTERS = {
    "softrate": lambda rates, trace: SoftRate(rates),
}


@register_experiment(
    "fig15",
    description="Protocol convergence after an abrupt channel step",
    params={"protocol": "softrate", "good_rate": 5, "bad_rate": 4,
            "period": 1.0, "duration": 10.0},
    traces=("alternating",),
    algorithms=("softrate", "rraa", "samplerate"),
    seed_param=None, metrics=_metrics)
def run_fig15_protocol(protocol: str = "softrate", good_rate: int = 5,
                       bad_rate: int = 4, period: float = 1.0,
                       duration: float = 10.0) -> ConvergenceResult:
    """Declarative front-end to :func:`run_fig15`: protocol by name.

    The alternating channel and the adapters are deterministic, so the
    experiment carries no seed parameter.  ``snr``/``charm`` are
    rejected: their trained thresholds have no meaning here and the
    declarative interface offers no training trace to supply.
    """
    if protocol in ("snr", "charm"):
        raise ValueError(
            f"fig15 does not support trained protocol {protocol!r}; "
            "supported: ['softrate', 'rraa', 'samplerate', "
            "'omniscient', 'snr-untrained']")
    factory = _CONVERGENCE_ADAPTERS.get(protocol) \
        or protocol_factory(protocol)
    return run_fig15(factory, good_rate=good_rate, bad_rate=bad_rate,
                     period=period, duration=duration)
