"""Fig. 3: SoftPHY hint patterns for collision vs fading losses.

Runs two frames through the bit-exact PHY:

* one whose tail is overlapped by an interferer (collision) — the
  hints collapse abruptly at the collision boundary;
* one crossing a deep multipath fade — the hints degrade smoothly
  over the faded region.

The contrast between the two patterns is precisely what the
interference detector thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import apply_channel
from repro.channel.interference import overlay_interference
from repro.channel.rayleigh import RayleighFadingProcess
from repro.core.hints import symbol_ber_profile
from repro.core.interference import InterferenceDetector
from repro.experiments.api import register_experiment
from repro.phy.snr import db_to_linear
from repro.phy.transceiver import Transceiver

__all__ = ["Fig3Data", "run_fig3"]


@dataclass
class Fig3Data:
    """Hints and per-symbol profiles for the two loss types."""

    collision_hints: np.ndarray
    collision_errors: np.ndarray
    collision_profile: np.ndarray
    collision_boundary_symbol: int
    fading_hints: np.ndarray
    fading_errors: np.ndarray
    fading_profile: np.ndarray
    collision_detected: bool
    fading_detected: bool


def _metrics(data: Fig3Data) -> dict:
    return {
        "collision_detected": float(data.collision_detected),
        "fading_detected": float(data.fading_detected),
        "collision_boundary_symbol": float(
            data.collision_boundary_symbol),
        "collision_errors": float(data.collision_errors.sum()),
        "fading_errors": float(data.fading_errors.sum()),
    }


@register_experiment(
    "fig03",
    description="SoftPHY hint patterns: collision vs fading losses",
    params={"seed": 3, "payload_bits": 12800, "snr_db": 11.0,
            "rate_index": 3, "fade_doppler_hz": 300.0},
    traces=(), algorithms=(), metrics=_metrics)
def run_fig3(seed: int = 3, payload_bits: int = 12800,
             snr_db: float = 11.0, rate_index: int = 3,
             fade_doppler_hz: float = 300.0) -> Fig3Data:
    """Produce the two hint traces of Fig. 3.

    The fading case uses a Doppler spread whose coherence time spans
    many OFDM symbols, so the fade's edges are gradual at per-symbol
    granularity — the physical property ("whose physics are more
    gradual", section 3.2) that distinguishes it from a collision.
    """
    rng = np.random.default_rng(seed)
    phy = Transceiver()
    payload = rng.integers(0, 2, payload_bits).astype(np.uint8)
    tx = phy.transmit(payload, rate_index=rate_index)
    layout = tx.layout
    noise_var = db_to_linear(-snr_db)

    # Collision: interferer overlaps the tail 40% of the frame.
    interference, (start, _end) = overlay_interference(
        layout.n_symbols, layout.n_subcarriers, relative_power_db=-1.0,
        rng=rng, overlap_fraction=0.4, align="tail")
    gains = np.ones(layout.n_symbols, dtype=complex)
    rx_sym, g = apply_channel(tx.symbols, gains, noise_var, rng,
                              interference=interference)
    collided = phy.receive(rx_sym, g, layout, tx_frame=tx)

    # Fading: a moderate fade drifting across the body, smooth edges.
    # Search fading realisations for one that dips into the waterfall
    # (producing bit errors) without the cliff-like per-symbol jump a
    # collision produces; marginal fades that do look cliff-like exist
    # (see EXPERIMENTS.md on residual false positives) and are skipped
    # here because the figure illustrates the *typical* contrast.
    detector = InterferenceDetector()
    fade_rng = np.random.default_rng(seed + 1)
    faded = None
    for _attempt in range(100):
        fading = RayleighFadingProcess(doppler_hz=fade_doppler_hz,
                                       rng=fade_rng)
        gains = 1.3 * fading.symbol_gains(0.0, layout.n_symbols,
                                          phy.mode.symbol_time)
        body_gains = np.abs(gains[layout.body])
        if not (0.3 < body_gains.min() < 0.5 and body_gains.max() > 0.85):
            continue
        rx_sym, g = apply_channel(tx.symbols, gains, noise_var,
                                  np.random.default_rng(seed + 2))
        candidate = phy.receive(rx_sym, g, layout, tx_frame=tx)
        if candidate.true_ber <= 0:
            continue
        report = detector.analyze(candidate.hints, candidate.info_symbol,
                                  candidate.n_body_symbols)
        if not report.detected:
            faded = candidate
            break
    if faded is None:
        raise RuntimeError("no suitable fading realisation found")

    collision_report = detector.analyze(
        collided.hints, collided.info_symbol, collided.n_body_symbols)
    fading_report = detector.analyze(
        faded.hints, faded.info_symbol, faded.n_body_symbols)

    return Fig3Data(
        collision_hints=collided.hints,
        collision_errors=collided.error_mask,
        collision_profile=symbol_ber_profile(
            collided.hints, collided.info_symbol,
            collided.n_body_symbols),
        collision_boundary_symbol=start - layout.body.start,
        fading_hints=faded.hints,
        fading_errors=faded.error_mask,
        fading_profile=symbol_ber_profile(
            faded.hints, faded.info_symbol, faded.n_body_symbols),
        collision_detected=collision_report.detected,
        fading_detected=fading_report.detected)
