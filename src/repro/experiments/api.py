"""Unified experiment API: specs, a registry, and a parallel runner.

Every paper reproduction (``figXX``/``tabXX`` module) declares itself
with :func:`register_experiment`, providing a declarative
:class:`ExperimentSpec` — name, description, parameter space with
defaults, trace requirements, and the algorithms involved.  A concrete
parameterization is a :class:`Scenario`; executing one (or a fan of
seed replicates / sweep points) through :class:`Runner` yields a
uniform :class:`ExperimentResult` that serializes to JSON or ``.npz``
and caches under a content hash.

Entry points::

    from repro.experiments.api import run, Runner, list_experiments

    run("fig13")                        # defaults, in-process
    run("fig13", duration=2.0)          # validated overrides
    Runner(jobs=4).run("fig13", seeds=[1, 2, 3, 4])   # parallel fan

The CLI (``repro list`` / ``repro run`` / ``repro sweep``) is a thin
shell over the same calls.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Mapping,
                    Optional, Sequence, Tuple)

import numpy as np

from repro.analysis.aggregate import aggregate_metrics

__all__ = ["ExperimentSpec", "Scenario", "ExperimentResult", "Runner",
           "register_experiment", "get_experiment", "experiment_names",
           "list_experiments", "load_all", "run", "derive_seeds",
           "execute_task", "UnknownParameterError",
           "UnknownExperimentError", "ExperimentExecutionError"]

#: Bump to invalidate previously cached results on disk.
CACHE_VERSION = 1

#: Parameters that tune throughput but are guaranteed (and tested) not
#: to change an experiment's results — e.g. ``batch_size``, which only
#: sets how many frames the PHY decodes at once.  They are excluded
#: from content hashes so a cached result stays valid at any setting,
#: and the Runner injects its own default into specs that declare them.
PERF_PARAMS = frozenset({"batch_size"})

#: Modules that self-register an experiment on import; ``load_all``
#: imports them so the registry is complete in any process.
_EXPERIMENT_MODULES = (
    "cell", "fig01_channel", "fig03_hints", "fig05_crossrate",
    "fig07_static", "fig08_mobile", "fig10_interference",
    "fig13_slow_fading", "fig15_convergence", "fig16_fast_fading",
    "fig17_interference", "mesh", "tab01_silent", "tab02_rates",
    "video",
)


class UnknownParameterError(ValueError):
    """An override names a parameter the spec does not declare."""


class UnknownExperimentError(KeyError):
    """The requested name is not in the experiment registry."""


class ExperimentExecutionError(RuntimeError):
    """An experiment function raised while executing a scenario.

    Wraps the underlying exception with the experiment name and the
    worker-side traceback text, so failures crossing a process-pool
    boundary stay attributable — the parent sees *which* experiment
    broke and *how*, not just a bare re-raised exception.  Picklable
    by construction (``__reduce__``) because process pools must ship
    it back to the parent intact.
    """

    def __init__(self, message: str, experiment: Optional[str] = None,
                 traceback_text: str = ""):
        super().__init__(message)
        #: Name of the experiment whose function raised.
        self.experiment = experiment
        #: Formatted worker-side traceback of the original error.
        self.traceback_text = traceback_text

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.experiment,
                                 self.traceback_text))


def _canonical(value: Any) -> Any:
    """Reduce a parameter value to a JSON-stable representation.

    Non-finite floats become ``null`` so the output is strict JSON
    (``json.dumps`` would otherwise emit the non-standard ``NaN``).
    """
    if isinstance(value, Mapping):
        return {str(k): _canonical(value[k]) for k in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, np.generic):
        return _canonical(value.item())
    if isinstance(value, np.ndarray):
        return [_canonical(v) for v in value.tolist()]
    if isinstance(value, float) and not np.isfinite(value):
        return None if np.isnan(value) else \
            ("inf" if value > 0 else "-inf")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _decode_metrics(data: Mapping[str, Any]) -> Dict[str, float]:
    """Invert ``_canonical`` for a metric dict (``null`` -> NaN,
    ``"inf"``/``"-inf"`` -> infinities)."""
    return {str(k): float("nan") if v is None else float(v)
            for k, v in data.items()}


def _canonical_json(value: Any) -> str:
    return json.dumps(_canonical(value), sort_keys=True,
                      separators=(",", ":"))


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one reproducible experiment.

    ``params`` is the parameter space: every overridable knob with its
    default value.  ``run()``/``Runner`` reject overrides outside this
    space, so a spec doubles as the experiment's public schema.

    Example::

        spec = get_experiment("fig07")
        spec.scenario({"payload_bits": 256}).execute()
    """

    name: str
    description: str
    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    traces: Tuple[str, ...] = ()
    algorithms: Tuple[str, ...] = ()
    #: Name of the parameter that seeds the experiment's RNG (``None``
    #: for deterministic experiments).  When the runner fans seed
    #: replicates, it rewrites this parameter per replicate; a
    #: tuple-valued default (e.g. fig13's ``seeds=(1, 2)``) receives a
    #: one-element tuple instead of a scalar.
    seed_param: Optional[str] = "seed"
    metrics: Optional[Callable[[Any], Dict[str, float]]] = None

    def scenario(self, overrides: Optional[Mapping[str, Any]] = None
                 ) -> "Scenario":
        """Validate ``overrides`` and bind a concrete parameterization."""
        overrides = dict(overrides or {})
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            raise UnknownParameterError(
                f"{self.name}: unknown parameter(s) {unknown}; "
                f"declared: {sorted(self.params)}")
        merged = dict(self.params)
        merged.update(overrides)
        return Scenario(experiment=self.name, params=merged)

    def extract_metrics(self, raw: Any) -> Dict[str, float]:
        """Flatten a raw result into scalar metrics for aggregation."""
        if self.metrics is not None:
            return {str(k): float(v)
                    for k, v in self.metrics(raw).items()}
        if isinstance(raw, Mapping):
            return {str(k): float(v) for k, v in raw.items()
                    if isinstance(v, (int, float, np.generic))}
        return {}

    @property
    def supports_batching(self) -> bool:
        """Whether the spec declares the ``batch_size`` throughput knob."""
        return "batch_size" in self.params


@dataclass(frozen=True)
class Scenario:
    """One concrete parameterization of a registered experiment.

    Example::

        scenario = get_experiment("fig01").scenario({"duration": 0.5})
        scenario.content_hash()    # stable cache identity
    """

    experiment: str
    params: Dict[str, Any]

    def content_hash(self) -> str:
        """Stable digest of (experiment, params, cache version).

        Performance-only parameters (:data:`PERF_PARAMS`) are excluded:
        they cannot change results, so one cached record serves every
        setting.  Surrogate-backend scenarios additionally fold in the
        calibration table's content digest, so ``repro calibrate``
        invalidates their cached results instead of silently serving
        pre-recalibration numbers.
        """
        params = {k: v for k, v in self.params.items()
                  if k not in PERF_PARAMS}
        if params.get("phy_backend") == "surrogate":
            from repro.phy.calibration import default_fingerprint
            params["calibration_fingerprint"] = default_fingerprint()
        payload = (f"v{CACHE_VERSION}:{self.experiment}:"
                   f"{_canonical_json(params)}")
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def with_seed(self, seed: Any) -> "Scenario":
        """Rewrite the spec's seed parameter for one replicate."""
        spec = get_experiment(self.experiment)
        if spec.seed_param is None:
            return self
        params = dict(self.params)
        default = spec.params.get(spec.seed_param)
        if isinstance(default, (list, tuple)):
            params[spec.seed_param] = (seed,)
        else:
            params[spec.seed_param] = seed
        return Scenario(experiment=self.experiment, params=params)

    def execute(self) -> Any:
        """Run the experiment function in-process; return its raw result."""
        spec = get_experiment(self.experiment)
        return spec.fn(**self.params)


# --------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------

_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(name: str, *, description: str = "",
                        params: Optional[Mapping[str, Any]] = None,
                        traces: Sequence[str] = (),
                        algorithms: Sequence[str] = (),
                        seed_param: Optional[str] = "seed",
                        metrics: Optional[Callable] = None
                        ) -> Callable[[Callable], Callable]:
    """Class the decorated function as experiment ``name``.

    The function is returned unchanged, so modules keep exporting
    their historical ``run_*`` entry points; the registry simply makes
    the same callable reachable as ``run(name, **overrides)``.

    Example::

        @register_experiment("myexp", description="...",
                             params={"seed": 1})
        def run_myexp(seed=1):
            return {"metric": float(seed)}
    """
    def decorate(fn: Callable) -> Callable:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.fn is not fn:
            raise ValueError(
                f"experiment {name!r} already registered "
                f"by {existing.fn.__module__}")
        _REGISTRY[name] = ExperimentSpec(
            name=name, description=description, fn=fn,
            params=dict(params or {}), traces=tuple(traces),
            algorithms=tuple(algorithms), seed_param=seed_param,
            metrics=metrics)
        return fn
    return decorate


def load_all() -> None:
    """Import every experiment module so the registry is complete.

    Idempotent; called automatically by every registry lookup.

    Example::

        load_all()
        len(experiment_names())    # 12
    """
    for module in _EXPERIMENT_MODULES:
        importlib.import_module(f"repro.experiments.{module}")


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered spec, importing modules on first use.

    Raises :class:`UnknownExperimentError` (listing the available
    names) for anything unregistered.

    Example::

        get_experiment("fig13").algorithms    # ("omniscient", ...)
    """
    if name not in _REGISTRY:
        load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; available: "
            f"{experiment_names()}") from None


def experiment_names() -> List[str]:
    """All registered experiment names, sorted (deterministic order).

    Example::

        experiment_names()[:2]    # ["fig01", "fig03"]
    """
    load_all()
    return sorted(_REGISTRY)


def list_experiments() -> List[ExperimentSpec]:
    """Registered specs in :func:`experiment_names` order — the exact
    row order ``repro list`` prints.

    Example::

        [spec.name for spec in list_experiments()]   # sorted ids
    """
    return [_REGISTRY[name] for name in experiment_names()]


# --------------------------------------------------------------------
# Results
# --------------------------------------------------------------------

@dataclass
class ExperimentResult:
    """Uniform record of one experiment run (possibly seed-fanned).

    ``per_seed`` holds one flat metric dict per replicate;
    ``aggregates`` is their nan-aware mean.  ``raw`` is the last
    replicate's native result object (kept only for in-process serial
    runs; never serialized).

    Example::

        result = run("fig01", duration=0.5)
        result.aggregates["fade_depth_db"]
        result.save("fig01.json")
    """

    experiment: str
    params: Dict[str, Any]
    seeds: List[Any]
    per_seed: List[Dict[str, float]]
    aggregates: Dict[str, float]
    cache_key: str
    elapsed_s: float = 0.0
    cached: bool = field(default=False, compare=False)
    raw: Any = field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (non-finite floats become ``null`` /
        ``"inf"`` strings); inverse of :meth:`from_dict`.

        Example::

            run("tab02").to_dict()["experiment"]    # "tab02"
        """
        return {
            "experiment": self.experiment,
            "params": _canonical(self.params),
            "seeds": _canonical(self.seeds),
            "per_seed": _canonical(self.per_seed),
            "aggregates": _canonical(self.aggregates),
            "cache_key": self.cache_key,
            "elapsed_s": self.elapsed_s,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a strict-JSON string (see :meth:`to_dict`).

        Example::

            path.write_text(result.to_json())
        """
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (``raw`` is
        not serialized and stays ``None``).

        Example::

            ExperimentResult.from_dict(result.to_dict())
        """
        return cls(experiment=data["experiment"],
                   params=dict(data["params"]),
                   seeds=list(data["seeds"]),
                   per_seed=[_decode_metrics(d)
                             for d in data["per_seed"]],
                   aggregates=_decode_metrics(data["aggregates"]),
                   cache_key=data["cache_key"],
                   elapsed_s=float(data.get("elapsed_s", 0.0)))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`.

        Example::

            ExperimentResult.from_json(path.read_text()).aggregates
        """
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the result as ``.json`` or ``.npz`` (by extension)."""
        if path.endswith(".npz"):
            self.save_npz(path)
        else:
            with open(path, "w") as fh:
                fh.write(self.to_json())
                fh.write("\n")

    def save_npz(self, path: str) -> None:
        """Write per-seed metric arrays plus aggregates as ``.npz``
        (full JSON metadata embedded under the ``metadata`` key).

        Example::

            result.save_npz("out.npz")
            np.load("out.npz")["aggregate/mbps"]
        """
        arrays: Dict[str, np.ndarray] = {
            "metadata": np.array(self.to_json(indent=None))}
        keys = sorted({k for d in self.per_seed for k in d})
        for key in keys:
            arrays[f"per_seed/{key}"] = np.array(
                [d.get(key, np.nan) for d in self.per_seed], dtype=float)
        for key, value in self.aggregates.items():
            arrays[f"aggregate/{key}"] = np.array(float(value))
        np.savez(path, **arrays)


def derive_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` deterministic, well-separated seeds from ``base_seed``.

    Example::

        Runner(jobs=4).run("fig05", seeds=derive_seeds(0, 4))
    """
    state = np.random.SeedSequence(base_seed).generate_state(n)
    return [int(s) for s in state]


# --------------------------------------------------------------------
# Runner
# --------------------------------------------------------------------

def execute_task(name: str, module: str,
                 params: Mapping[str, Any]) -> Dict[str, float]:
    """Execute one scenario point; safe inside any worker process.

    ``module`` is the module that registered the experiment: under a
    ``spawn`` start method the child registry starts empty, and
    importing that module re-registers experiments that live outside
    the built-in ``_EXPERIMENT_MODULES`` list.  Both the Runner's pool
    worker and the campaign engine's shard workers funnel through
    here, so every execution path extracts metrics identically.
    """
    load_all()
    if name not in _REGISTRY:
        importlib.import_module(module)
    spec = _REGISTRY[name]
    try:
        return spec.extract_metrics(spec.fn(**dict(params)))
    except Exception as exc:
        import traceback
        raise ExperimentExecutionError(
            f"experiment {name!r} failed: "
            f"{type(exc).__name__}: {exc}",
            experiment=name,
            traceback_text=traceback.format_exc()) from exc


def _pool_worker(task: Tuple[str, str, Dict[str, Any]]
                 ) -> Dict[str, float]:
    """Picklable map target for the Runner's process pool."""
    return execute_task(*task)


def _recorded_params(spec: ExperimentSpec, base: Scenario,
                     seed_list: Optional[Sequence[Any]]
                     ) -> Dict[str, Any]:
    """Params to record on a result: on a seed-fanned run the spec's
    seed parameter was rewritten per replicate, so its base value is
    dropped — the ``seeds`` field is the authoritative record."""
    params = dict(base.params)
    if seed_list and spec.seed_param is not None:
        params.pop(spec.seed_param, None)
    return params


class Runner:
    """Fans scenarios over processes, with content-hash result caching.

    Args:
        jobs: worker processes (1 = run serially in-process, keeping
            the raw result object on the returned record).
        cache_dir: directory for cached result JSON (created lazily).
        use_cache: read/write the cache; disable for benchmarking.
        batch_size: injected as the ``batch_size`` override for specs
            that declare the knob — a pure throughput setting,
            excluded from cache hashes (:data:`PERF_PARAMS`).
        phy_backend: PHY backend name (``"full"`` / ``"surrogate"``)
            injected for specs that declare a ``phy_backend``
            parameter.  Unlike ``batch_size`` it **changes results**
            (the surrogate is calibrated, not bit-exact), so it
            participates in cache hashes like any other parameter.

    Raises:
        ValueError: ``phy_backend`` names no known backend; the
            message lists the valid names.

    Example::

        Runner(jobs=4, phy_backend="surrogate").run(
            "fig07", seeds=[1, 2, 3, 4])
    """

    def __init__(self, jobs: int = 1, cache_dir: str = ".repro-cache",
                 use_cache: bool = True,
                 batch_size: Optional[int] = None,
                 phy_backend: Optional[str] = None):
        self.jobs = max(int(jobs), 1)
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        #: When set, injected as the ``batch_size`` override for specs
        #: that declare the knob (see :data:`PERF_PARAMS`); specs
        #: without it are unaffected, so sweeps can pass one value for
        #: a mixed bag of experiments.
        self.batch_size = batch_size
        if phy_backend is not None:
            from repro.phy.backend import validate_backend_name
            validate_backend_name(phy_backend)
        #: Backend name injected for specs declaring ``phy_backend``.
        self.phy_backend = phy_backend

    def _with_runner_knobs(self, spec: ExperimentSpec,
                           overrides: Optional[Mapping[str, Any]]
                           ) -> Dict[str, Any]:
        """Merge the runner's batch_size / phy_backend into
        ``overrides`` where the spec declares the knob and the caller
        did not pin it."""
        merged = dict(overrides or {})
        if (self.batch_size is not None and spec.supports_batching
                and "batch_size" not in merged):
            merged["batch_size"] = int(self.batch_size)
        if (self.phy_backend is not None
                and "phy_backend" in spec.params
                and "phy_backend" not in merged):
            merged["phy_backend"] = self.phy_backend
        return merged

    # -- caching ------------------------------------------------------

    def _cache_path(self, name: str, key: str) -> str:
        return os.path.join(self.cache_dir, f"{name}-{key}.json")

    def _cache_load(self, name: str, key: str
                    ) -> Optional[ExperimentResult]:
        if not self.use_cache:
            return None
        path = self._cache_path(name, key)
        try:
            with open(path) as fh:
                result = ExperimentResult.from_json(fh.read())
        except (OSError, ValueError, KeyError):
            return None
        result.cached = True
        return result

    @staticmethod
    def _refresh_perf_params(result: ExperimentResult,
                             base: Scenario) -> None:
        """Stamp the requested performance-only parameters onto a
        cache hit: the stored record carries whatever values the
        original run used, and since PERF_PARAMS cannot change
        results, the honest record for *this* run is what was asked
        for now."""
        for key in PERF_PARAMS:
            if key in base.params and key in result.params:
                result.params[key] = base.params[key]

    def _cache_store(self, result: ExperimentResult) -> None:
        if not self.use_cache:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        path = self._cache_path(result.experiment, result.cache_key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            fh.write(result.to_json())
            fh.write("\n")
        os.replace(tmp, path)

    # -- execution ----------------------------------------------------

    @staticmethod
    def _run_key(base: Scenario, seeds: Optional[Sequence[Any]]) -> str:
        params = {k: v for k, v in base.params.items()
                  if k not in PERF_PARAMS}
        payload = _canonical_json({"scenario": params,
                                   "seeds": list(seeds or [])})
        return hashlib.sha256(
            f"{base.content_hash()}:{payload}".encode()).hexdigest()[:16]

    def _execute(self, name: str, points: List[Scenario]
                 ) -> Tuple[List[Dict[str, float]], Any]:
        spec = get_experiment(name)
        if self.jobs > 1 and len(points) > 0:
            tasks = [(name, spec.fn.__module__, p.params)
                     for p in points]
            workers = min(self.jobs, len(tasks))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                metrics = list(pool.map(_pool_worker, tasks,
                                        chunksize=1))
            return metrics, None
        metrics, raw = [], None
        for point in points:
            raw = point.execute()
            metrics.append(spec.extract_metrics(raw))
        return metrics, raw

    def run(self, name: str,
            overrides: Optional[Mapping[str, Any]] = None,
            seeds: Optional[Sequence[Any]] = None) -> ExperimentResult:
        """Run one experiment, optionally fanned over ``seeds``.

        Without ``seeds`` the experiment runs once with its declared
        defaults plus ``overrides``; with ``seeds`` one replicate runs
        per entry, each with the spec's seed parameter rewritten
        deterministically, and ``aggregates`` averages the replicates.
        """
        spec = get_experiment(name)
        base = spec.scenario(self._with_runner_knobs(spec, overrides))
        seed_list = list(seeds) if seeds is not None else None
        if seed_list and spec.seed_param is None:
            raise ValueError(
                f"{name} is deterministic (no seed parameter); "
                "seed replication would repeat identical runs")
        key = self._run_key(base, seed_list)
        hit = self._cache_load(name, key)
        if hit is not None:
            self._refresh_perf_params(hit, base)
            return hit

        if seed_list:
            points = [base.with_seed(s) for s in seed_list]
        else:
            points = [base]
        start = time.perf_counter()
        per_seed, raw = self._execute(name, points)
        elapsed = time.perf_counter() - start
        result = ExperimentResult(
            experiment=name,
            params=_recorded_params(spec, base, seed_list),
            seeds=seed_list if seed_list else [None],
            per_seed=per_seed,
            aggregates=aggregate_metrics(per_seed),
            cache_key=key, elapsed_s=elapsed, raw=raw)
        self._cache_store(result)
        return result

    def sweep(self, name: str, param: str, values: Iterable[Any],
              overrides: Optional[Mapping[str, Any]] = None,
              seeds: Optional[Sequence[Any]] = None
              ) -> List[ExperimentResult]:
        """Run one experiment across a parameter sweep.

        Each sweep point is an independent cached run; uncached points
        (all their seed replicates) share one process pool, so a cold
        ``--jobs N`` sweep keeps N workers busy across the whole
        point x seed grid.
        """
        spec = get_experiment(name)
        values = list(values)
        seed_list = list(seeds) if seeds is not None else None
        if seed_list and spec.seed_param is None:
            raise ValueError(
                f"{name} is deterministic (no seed parameter); "
                "seed replication would repeat identical runs")
        if seed_list and param == spec.seed_param:
            raise ValueError(
                f"cannot sweep {param!r} while fanning seeds: the "
                "replicate fan rewrites that parameter per seed")
        runs: List[Optional[ExperimentResult]] = []
        pending: List[Tuple[int, Scenario, str, List[Scenario]]] = []
        for value in values:
            merged = self._with_runner_knobs(spec, overrides)
            merged[param] = value
            base = spec.scenario(merged)
            key = self._run_key(base, seed_list)
            hit = self._cache_load(name, key)
            if hit is not None:
                self._refresh_perf_params(hit, base)
            runs.append(hit)
            if hit is None:
                points = ([base.with_seed(s) for s in seed_list]
                          if seed_list else [base])
                pending.append((len(runs) - 1, base, key, points))

        if pending:
            flat = [(index, point) for index, _b, _k, points in pending
                    for point in points]
            start = time.perf_counter()
            all_metrics, _raw = self._execute(
                name, [point for _i, point in flat])
            elapsed = time.perf_counter() - start
            by_index: Dict[int, List[Dict[str, float]]] = {}
            for (index, _point), metrics in zip(flat, all_metrics):
                by_index.setdefault(index, []).append(metrics)
            share = elapsed / max(len(pending), 1)
            for index, base, key, _points in pending:
                per_seed = by_index[index]
                result = ExperimentResult(
                    experiment=name,
                    params=_recorded_params(spec, base, seed_list),
                    seeds=seed_list if seed_list else [None],
                    per_seed=per_seed,
                    aggregates=aggregate_metrics(per_seed),
                    cache_key=key, elapsed_s=share)
                self._cache_store(result)
                runs[index] = result
        return [r for r in runs if r is not None]


def run(name: str, **overrides: Any) -> ExperimentResult:
    """Run one experiment in-process with defaults plus ``overrides``.

    The returned record keeps the experiment's native result object on
    ``.raw`` — this is the registry-mediated path the historical
    ``run_figXX`` wrappers and the benchmark suite go through.
    """
    return Runner(jobs=1, use_cache=False).run(name, overrides)
