"""Figs. 17 & 18: TCP throughput in interference-dominated channels.

Five clients upload TCP through a *static* channel (isolating the
interference effect from mobility) while the pairwise carrier-sense
probability between clients sweeps from 0 (perfect hidden terminals)
to 1 (no collisions).  Two SoftRate variants are compared, as in the
paper: the present implementation (80% interference detection, no
postamble feedback) and the ideal one (perfect detection with
postambles).

Expected shape (section 6.4): RRAA collapses as carrier sense degrades
(it reacts to short-term loss, so collisions drag its rate down, and
adaptive RTS flaps without helping); SampleRate is resilient (its long
window spreads collision losses over all rates); SoftRate matches
SampleRate with the present detector and beats it with the ideal one;
Fig. 18 shows RRAA underselecting at Pr[CS] = 0.8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.metrics import RateAccuracy, rate_selection_accuracy
from repro.experiments.api import register_experiment
from repro.experiments.common import (averaged_tcp_throughput,
                                      rraa_factory, samplerate_factory,
                                      softrate_factory)
from repro.traces.workloads import static_short_range_traces

__all__ = ["InterferenceTcpResult", "run_fig17"]


@dataclass
class InterferenceTcpResult:
    """Throughput vs carrier-sense probability, plus Fig. 18 accuracy."""

    cs_probabilities: List[float]
    throughput_mbps: Dict[str, List[float]]
    accuracy_at: Dict[str, RateAccuracy]       # at cs = accuracy_cs
    accuracy_cs: float


def _metrics(result: "InterferenceTcpResult") -> dict:
    out = {}
    for name, values in result.throughput_mbps.items():
        for cs, mbps in zip(result.cs_probabilities, values):
            out[f"mbps/{name}/cs={cs:g}"] = float(mbps)
    for name, acc in result.accuracy_at.items():
        out[f"accuracy/{name}"] = float(acc.accurate)
    return out


@register_experiment(
    "fig17",
    description="TCP throughput under hidden-terminal interference",
    params={"cs_probabilities": (0.0, 0.4, 0.8, 1.0), "n_clients": 5,
            "duration": 4.0, "seeds": (1,), "trace_seed": 17,
            "accuracy_cs": 0.8, "mean_snr_db": 16.0},
    traces=("static",),
    algorithms=("softrate", "rraa", "samplerate"),
    seed_param="seeds", metrics=_metrics)
def run_fig17(cs_probabilities: Sequence[float] = (0.0, 0.4, 0.8, 1.0),
              n_clients: int = 5, duration: float = 4.0, seeds=(1,),
              trace_seed: int = 17, accuracy_cs: float = 0.8,
              mean_snr_db: float = 16.0) -> InterferenceTcpResult:
    """Run the interference-dominated TCP experiment."""
    up = static_short_range_traces(n_clients, seed=trace_seed,
                                   mean_snr_db=mean_snr_db)
    down = static_short_range_traces(n_clients, seed=trace_seed + 50,
                                     mean_snr_db=mean_snr_db)
    algorithms = [
        ("SoftRate (Ideal)", softrate_factory,
         {"detect_prob": 1.0, "use_postambles": True}),
        ("SoftRate", softrate_factory,
         {"detect_prob": 0.8, "use_postambles": False}),
        ("RRAA", rraa_factory, {}),
        ("SampleRate", samplerate_factory, {}),
    ]

    throughput: Dict[str, List[float]] = {name: []
                                          for name, _f, _k in algorithms}
    accuracy: Dict[str, RateAccuracy] = {}
    for cs in cs_probabilities:
        for name, factory, kwargs in algorithms:
            outcome = averaged_tcp_throughput(
                up, down, factory, n_clients=n_clients,
                duration=duration, seeds=seeds,
                carrier_sense_prob=cs, **kwargs)
            throughput[name].append(outcome["mbps"])
            if abs(cs - accuracy_cs) < 1e-9:
                logs = outcome["last_result"].frame_logs
                merged = []
                for client in range(1, n_clients + 1):
                    merged.extend(
                        (entry, up[client - 1])
                        for entry in logs[client])
                over = acc = under = 0
                for entry, trace in merged:
                    best = trace.best_rate_at(entry.time)
                    if best is None:
                        continue
                    if entry.rate_index > best:
                        over += 1
                    elif entry.rate_index == best:
                        acc += 1
                    else:
                        under += 1
                n = max(over + acc + under, 1)
                accuracy[name] = RateAccuracy(
                    overselect=over / n, accurate=acc / n,
                    underselect=under / n, n_frames=n)
    return InterferenceTcpResult(
        cs_probabilities=list(cs_probabilities),
        throughput_mbps=throughput, accuracy_at=accuracy,
        accuracy_cs=accuracy_cs)
