"""The campaign matrix cell: one point of a large scenario sweep.

Every campaign (:mod:`repro.campaigns`) expands into thousands of
parameterizations of this one registered experiment — a short
contention run at a single (protocol, channel model, interference
level, client count, SNR, PHY backend) point, reduced to the tidy
scalar metrics the paper's matrix claim is argued over: throughput,
loss, convergence time, and rate-selection accuracy.  The workload is
either the Fig. 12 TCP uplink (default) or a saturated MAC flood,
and the MAC flood can run on either the event-driven engine or the
vectorised slot-synchronous one (``mac_engine="slot"``), which is how
campaigns reach 1000-station cells.

Design notes for campaign scale:

* **Trace pooling** — trace generation dominates large-``N`` runs, so
  ``trace_pool`` caps the number of distinct fading realisations per
  direction; the topology recycles them across clients
  (``recycle_traces``).  An in-process LRU cache additionally shares
  generated traces between cells that differ only in protocol or MAC
  seed, which is the common case inside a matrix.
* **Determinism** — everything derives from ``seed`` / ``trace_seed``;
  the ``frame_log_digest`` metric is an exact content hash of every
  station's frame log, so the campaign determinism wall can assert
  bit-identical behaviour across serial, pooled and sharded execution.
* **Replicates** — ``replicate`` is deliberately unused by the
  simulation: it exists so a campaign's replicate axis changes the
  scenario identity (and therefore its derived seed) without touching
  any physical knob.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

from repro.analysis.metrics import (frame_log_digest,
                                    rate_selection_accuracy,
                                    settling_time)
from repro.experiments.api import register_experiment
from repro.sim.slotmac import run_slot_contention
from repro.sim.topology import AP_ID, run_mac_contention, run_tcp_uplink
from repro.traces.format import LinkTrace
from repro.traces.workloads import (simulation_traces,
                                    static_short_range_traces,
                                    walking_traces)

__all__ = ["run_cell", "CHANNEL_MODELS"]

#: Channel models a cell can run under (the paper's three regimes).
CHANNEL_MODELS = ("walking", "static", "fading")

#: Trace time generated beyond the simulated duration, so frames in
#: flight at the end of the run still observe in-range trace slots.
_TRACE_MARGIN_S = 0.1

#: Seed offset separating downlink from uplink trace generation.  The
#: workload generators seed per link as ``seed + link`` (plus a small
#: per-generator constant), so this must exceed any plausible pool
#: size — a small offset like 50 would make uplink trace ``50`` and
#: downlink trace ``0`` bit-identical on larger pools.
_DOWNLINK_SEED_OFFSET = 500_009


@lru_cache(maxsize=64)
def _trace_pool(channel: str, n_links: int, duration: float,
                mean_snr_db: float, doppler_hz: float, seed: int
                ) -> Tuple[LinkTrace, ...]:
    """Generate (and memoize) one direction's fading traces.

    Key facts that make caching safe: trace generation is a pure
    function of these arguments, and traces are treated as read-only
    by the simulator — so cells differing only in protocol, MAC seed
    or carrier sensing share one realisation per direction.
    """
    if channel == "walking":
        return tuple(walking_traces(n_links, duration=duration,
                                    seed=seed))
    if channel == "static":
        return tuple(static_short_range_traces(
            n_links, duration=duration, mean_snr_db=mean_snr_db,
            seed=seed))
    if channel == "fading":
        return tuple(simulation_traces(
            doppler_hz, n_links=n_links, duration=duration,
            mean_snr_db=mean_snr_db, seed=seed))
    raise ValueError(f"unknown channel model {channel!r}; "
                     f"available: {list(CHANNEL_MODELS)}")


@register_experiment(
    "cell",
    description="one campaign matrix cell (short contention TCP run)",
    params={"protocol": "softrate", "channel": "static",
            "mean_snr_db": 16.0, "doppler_hz": 200.0, "n_clients": 1,
            "duration": 0.3, "carrier_sense_prob": 1.0,
            "detect_prob": 0.8, "use_postambles": True,
            "trace_pool": 0, "trace_seed": 2009, "seed": 1,
            "replicate": 0, "phy_backend": "surrogate",
            "workload": "tcp", "mac_engine": "event",
            "payload_bits": 368},
    traces=("walking", "static", "rayleigh"),
    algorithms=("softrate", "samplerate", "rraa", "snr", "charm",
                "snr-untrained", "omniscient"),
    seed_param="seed")
def run_cell(protocol: str = "softrate", channel: str = "static",
             mean_snr_db: float = 16.0, doppler_hz: float = 200.0,
             n_clients: int = 1, duration: float = 0.3,
             carrier_sense_prob: float = 1.0, detect_prob: float = 0.8,
             use_postambles: bool = True, trace_pool: int = 0,
             trace_seed: int = 2009, seed: int = 1, replicate: int = 0,
             phy_backend: Optional[str] = "surrogate",
             workload: str = "tcp", mac_engine: str = "event",
             payload_bits: int = 368) -> dict:
    """Run one campaign cell; return its flat metric dict.

    Args:
        protocol: rate adaptation protocol name (``snr``/``charm``
            train their thresholds on the first uplink trace).
        channel: ``"walking"`` (mobility), ``"static"`` (short-range,
            interference studies) or ``"fading"`` (fixed Doppler).
        mean_snr_db: mean link SNR for static/fading channels
            (walking derives SNR from the trajectory).
        doppler_hz: Doppler spread for the fading channel.
        n_clients: stations contending for the AP.
        duration: seconds of TCP transfer.
        carrier_sense_prob: pairwise client carrier sensing — the
            interference axis (1.0 = none, 0.0 = hidden terminals).
        detect_prob / use_postambles: SoftPHY interference-detection
            fidelity.
        trace_pool: distinct fading realisations per direction
            (0 = one per client); smaller pools are recycled across
            clients, the large-``N`` scaling knob.
        trace_seed: trace-generation seed.
        seed: MAC simulation seed (campaigns derive one per scenario).
        replicate: replicate index; ignored by the simulation, it only
            diversifies a campaign scenario's derived seed.
        phy_backend: ``"surrogate"`` (default), ``"full"``, or ``None``
            for the traces' precomputed frame fates.
        workload: ``"tcp"`` (Fig. 12 TCP uplink, the default) or
            ``"mac"`` — saturated link-layer flooding, the workload
            both MAC engines implement, and the only one the slot
            engine supports.
        mac_engine: ``"event"`` (the event-driven oracle) or
            ``"slot"`` (:mod:`repro.sim.slotmac`, the vectorised
            slot-synchronous engine for 1000-station cells; requires
            ``workload="mac"`` and full carrier sensing).
        payload_bits: frame payload for the MAC workload (the TCP
            workload derives frame sizes from the transport).

    Returns:
        Flat ``{metric: float}`` dict: ``mbps``, ``fairness`` (Jain
        index over flows), ``loss_rate`` / ``retry_rate`` (over logged
        attempts), ``convergence_s``, rate-selection accuracy
        fractions, ``n_frames`` and ``frame_log_digest``.
    """
    from repro.experiments.common import protocol_factory

    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if workload not in ("tcp", "mac"):
        raise ValueError(f"unknown workload {workload!r}; "
                         f"available: ['tcp', 'mac']")
    if mac_engine not in ("event", "slot"):
        raise ValueError(f"unknown mac_engine {mac_engine!r}; "
                         f"available: ['event', 'slot']")
    if mac_engine == "slot" and workload != "mac":
        raise ValueError("the slot-synchronous engine only implements "
                         "the saturated 'mac' workload")
    pool = n_clients if trace_pool <= 0 else min(trace_pool, n_clients)
    trace_duration = duration + _TRACE_MARGIN_S
    uplinks = _trace_pool(channel, pool, trace_duration, mean_snr_db,
                          doppler_hz, trace_seed)
    factory = protocol_factory(protocol, training_trace=uplinks[0])
    if workload == "tcp":
        downlinks = _trace_pool(channel, pool, trace_duration,
                                mean_snr_db, doppler_hz,
                                trace_seed + _DOWNLINK_SEED_OFFSET)
        result = run_tcp_uplink(
            list(uplinks), list(downlinks), factory,
            n_clients=n_clients, duration=duration, seed=seed,
            carrier_sense_prob=carrier_sense_prob,
            detect_prob=detect_prob, use_postambles=use_postambles,
            phy_backend=phy_backend, recycle_traces=True)
        flows: List[float] = result.per_flow_mbps
        client_trace = result.traces[(1, AP_ID)]
    else:
        run_contention = run_mac_contention if mac_engine == "event" \
            else run_slot_contention
        result = run_contention(
            list(uplinks), factory, n_clients=n_clients,
            duration=duration, payload_bits=payload_bits, seed=seed,
            carrier_sense_prob=carrier_sense_prob,
            detect_prob=detect_prob, use_postambles=use_postambles,
            phy_backend=phy_backend)
        flows = result.per_client_mbps
        client_trace = uplinks[0]

    square_sum = sum(x * x for x in flows)
    fairness = (sum(flows) ** 2 / (len(flows) * square_sum)) \
        if square_sum > 0 else 0.0

    entries = [e for log in result.frame_logs.values() for e in log]
    n_frames = len(entries)
    lost = sum(1 for e in entries if not e.delivered)
    retries = sum(1 for e in entries if e.retry > 0)

    client_log = result.frame_logs.get(1, [])
    accuracy = rate_selection_accuracy(client_log, client_trace)
    return {
        "mbps": result.aggregate_mbps,
        "fairness": fairness,
        "loss_rate": lost / n_frames if n_frames else float("nan"),
        "retry_rate": retries / n_frames if n_frames else float("nan"),
        "convergence_s": settling_time(client_log),
        "accuracy": accuracy.accurate,
        "overselect": accuracy.overselect,
        "underselect": accuracy.underselect,
        "n_frames": float(n_frames),
        "frame_log_digest": float(frame_log_digest(result.frame_logs)),
    }
