"""Reproductions of every table and figure in the paper's evaluation.

One module per experiment; each exposes a ``run_*`` function returning
plain data structures that the corresponding benchmark prints and
sanity-checks.  The module mapping is recorded in DESIGN.md's
experiment index and EXPERIMENTS.md's results log.
"""
