"""Reproductions of every table and figure in the paper's evaluation.

One module per experiment.  Each module keeps its historical ``run_*``
entry point and registers a declarative :class:`ExperimentSpec` with
the unified experiment API (:mod:`repro.experiments.api`), so the same
code is reachable three ways::

    from repro.experiments.fig13_slow_fading import run_fig13
    run_fig13(duration=2.0)                    # historical wrapper

    from repro.experiments import run
    run("fig13", duration=2.0).raw             # registry-mediated

    python -m repro run fig13 --set duration=2.0   # CLI

``Runner`` adds seed fan-out over processes, sweeps, and content-hash
result caching on top.
"""

from repro.experiments.api import (ExperimentResult, ExperimentSpec,
                                   Runner, Scenario, experiment_names,
                                   get_experiment, list_experiments,
                                   load_all, register_experiment, run)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "Runner",
    "Scenario",
    "experiment_names",
    "get_experiment",
    "list_experiments",
    "load_all",
    "register_experiment",
    "run",
]
