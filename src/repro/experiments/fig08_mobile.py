"""Figs. 8 & 9: BER estimation in mobile channels.

Runs the bit-exact PHY through Rayleigh fading at walking (40 Hz) and
vehicular (400 Hz) Doppler spreads:

* **Fig. 8** — the SoftPHY estimate vs ground truth curve is the *same*
  at both speeds (mobility-invariant);
* **Fig. 9** — the preamble-SNR vs ground-truth-BER curve *shifts* with
  Doppler, because the preamble cannot see mid-frame fades whose
  number grows as coherence time shrinks.  This is why SNR protocols
  need retraining per environment and SoftRate does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.binning import BinnedBer, log_bin_ber
from repro.channel.awgn import apply_channel
from repro.channel.rayleigh import RayleighFadingProcess
from repro.core.hints import frame_ber_estimate
from repro.experiments.api import register_experiment
from repro.phy.snr import db_to_linear, snr_to_db
from repro.phy.transceiver import Transceiver

__all__ = ["MobileBerData", "run_fig8"]


@dataclass
class MobileBerData:
    """Per-Doppler estimation data for Figs. 8 and 9."""

    doppler_hz: Dict[str, float]
    estimates: Dict[str, np.ndarray]
    truths: Dict[str, np.ndarray]
    snrs: Dict[str, np.ndarray]

    def softphy_curve(self, label: str) -> List[BinnedBer]:
        """Fig. 8 curve for one mobility speed."""
        return log_bin_ber(self.estimates[label], self.truths[label],
                           decades_per_bin=0.5, min_frames=3)

    def snr_curve(self, label: str, bin_db: float = 2.0
                  ) -> List[Tuple[float, float]]:
        """Fig. 9 curve: (snr_bin_center, mean true BER).

        Bin edges are anchored at multiples of ``bin_db`` so curves
        from different mobility speeds share bin centres and can be
        compared point-by-point.
        """
        snrs = self.snrs[label]
        truths = self.truths[label]
        out = []
        start = np.floor(snrs.min() / bin_db) * bin_db
        for edge in np.arange(start, np.ceil(snrs.max()) + bin_db,
                              bin_db):
            sel = (snrs >= edge) & (snrs < edge + bin_db)
            if sel.sum() < 3:
                continue
            out.append((float(edge + bin_db / 2),
                        float(truths[sel].mean())))
        return out

    def curve_divergence(self, label_a: str, label_b: str,
                         curve: str) -> float:
        """Mean |log10 BER| gap between two speeds' curves.

        For ``curve="softphy"`` the x-axis is the BER estimate; for
        ``curve="snr"`` it is the SNR estimate.  Fig. 8 expects a small
        value, Fig. 9 a large one.
        """
        if curve == "softphy":
            a = {round(np.log10(b.estimate_center), 1): b.mean_true
                 for b in self.softphy_curve(label_a)}
            b = {round(np.log10(c.estimate_center), 1): c.mean_true
                 for c in self.softphy_curve(label_b)}
        elif curve == "snr":
            a = {x: y for x, y in self.snr_curve(label_a)}
            b = {x: y for x, y in self.snr_curve(label_b)}
        else:
            raise ValueError(f"unknown curve {curve!r}")
        shared = sorted(set(a) & set(b))
        gaps = [abs(np.log10(max(a[k], 1e-7))
                    - np.log10(max(b[k], 1e-7))) for k in shared]
        return float(np.mean(gaps)) if gaps else float("nan")


def _metrics(data: MobileBerData) -> dict:
    labels = sorted(data.doppler_hz)
    out = {}
    if len(labels) >= 2:
        a, b = labels[0], labels[1]
        out["softphy_divergence_decades"] = data.curve_divergence(
            a, b, "softphy")
        out["snr_divergence_decades"] = data.curve_divergence(
            a, b, "snr")
    for label in labels:
        out[f"errored_fraction/{label}"] = float(
            (data.truths[label] > 0).mean())
    return out


@register_experiment(
    "fig08",
    description="BER estimation across mobility speeds (Figs. 8 & 9)",
    params={"seed": 8, "payload_bits": 1600, "n_frames": 60,
            "rate_index": 3, "batch_size": 16, "phy_backend": "full"},
    traces=("rayleigh",), algorithms=(), metrics=_metrics)
def run_fig8(seed: int = 8, payload_bits: int = 1600,
             n_frames: int = 60, rate_index: int = 3,
             batch_size: int = 16,
             dopplers: Dict[str, float] = None,
             mean_snr_range_db: Tuple[float, float] = (4.0, 14.0),
             phy_backend="full") -> MobileBerData:
    """Collect per-frame BER estimates across mobility speeds.

    Each frame sees an independent fading realisation whose mean SNR is
    drawn uniformly across the waterfall region, so both lossy and
    clean frames appear at every Doppler.

    Frames are decoded ``batch_size`` at a time through the batched
    PHY fast path; fading and noise are drawn frame-by-frame in the
    original sequential order, so results are bit-identical for every
    ``batch_size`` (1 reproduces the per-frame reference path).

    ``phy_backend`` selects how frames are computed: ``"full"`` (the
    bit-exact pipeline, default) or ``"surrogate"`` (the calibrated
    table-driven backend — statistically matched, not bit-identical,
    orders of magnitude faster).
    """
    if dopplers is None:
        dopplers = {"walking": 40.0, "vehicular": 400.0}
    phy = Transceiver()
    batch_size = max(int(batch_size), 1)

    if phy_backend != "full":
        from repro.phy.backend import get_backend
        backend = get_backend(phy_backend, rates=phy.rates)
        # Layout arithmetic only — no need to modulate a frame the
        # surrogate will never decode.
        n_symbols = phy.frame_layout(payload_bits,
                                     rate_index).n_symbols
        return _run_fig8_backend(
            backend, seed, payload_bits, n_frames, rate_index,
            dopplers, mean_snr_range_db, n_symbols,
            phy.mode.symbol_time)

    payload = np.random.default_rng(seed).integers(
        0, 2, payload_bits).astype(np.uint8)
    tx = phy.transmit(payload, rate_index=rate_index)
    n_symbols = tx.layout.n_symbols

    estimates, truths, snrs = {}, {}, {}
    for label, doppler in dopplers.items():
        rng = np.random.default_rng(seed + int(doppler))
        est, tru, snr = [], [], []
        for start in range(0, n_frames, batch_size):
            chunk = min(batch_size, n_frames - start)
            gains = np.empty((chunk, n_symbols), dtype=complex)
            rx_syms = np.empty((chunk, n_symbols,
                                phy.mode.n_subcarriers), dtype=complex)
            for i in range(chunk):
                mean_snr = rng.uniform(*mean_snr_range_db)
                fading = RayleighFadingProcess(doppler, rng)
                amplitude = np.sqrt(db_to_linear(mean_snr))
                gains[i] = amplitude * fading.symbol_gains(
                    0.0, n_symbols, phy.mode.symbol_time)
                rx_syms[i], _ = apply_channel(tx.symbols, gains[i],
                                              1.0, rng)
            for rx in phy.receive_batch(rx_syms, gains, tx.layout,
                                        tx=tx):
                est.append(frame_ber_estimate(rx.hints))
                tru.append(rx.true_ber)
                snr.append(rx.snr_db)
        estimates[label] = np.array(est)
        truths[label] = np.array(tru)
        snrs[label] = np.array(snr)
    return MobileBerData(doppler_hz=dict(dopplers), estimates=estimates,
                         truths=truths, snrs=snrs)


def _run_fig8_backend(backend, seed: int, payload_bits: int,
                      n_frames: int, rate_index: int,
                      dopplers: Dict[str, float],
                      mean_snr_range_db: Tuple[float, float],
                      n_symbols: int, symbol_time: float
                      ) -> MobileBerData:
    """The fig08 sweep through a :class:`PhyBackend`.

    Draws the same kind of per-frame fading trajectories as the
    bit-exact path (uniform mean SNR across the waterfall, one
    independent Rayleigh realisation per frame) and hands the
    per-symbol SNR trajectory to ``backend.frame_outcome``.
    """
    estimates, truths, snrs = {}, {}, {}
    for label, doppler in dopplers.items():
        rng = np.random.default_rng(seed + int(doppler))
        est, tru, snr = [], [], []
        for _ in range(n_frames):
            mean_snr = rng.uniform(*mean_snr_range_db)
            fading = RayleighFadingProcess(doppler, rng)
            amplitude = np.sqrt(db_to_linear(mean_snr))
            gains = amplitude * fading.symbol_gains(
                0.0, n_symbols, symbol_time)
            trajectory = snr_to_db(np.abs(gains) ** 2)
            out = backend.frame_outcome(rate_index, trajectory,
                                        payload_bits, rng)
            est.append(out.ber_est)
            tru.append(out.ber_true)
            snr.append(out.snr_db)
        estimates[label] = np.array(est)
        truths[label] = np.array(tru)
        snrs[label] = np.array(snr)
    return MobileBerData(doppler_hz=dict(dopplers), estimates=estimates,
                         truths=truths, snrs=snrs)
