"""Shared experiment configuration.

Protocol factories with the environment-calibrated parameters used
throughout section-6 reproductions.  The one deliberate calibration:
SoftRate's cross-rate BER separation factor.  The paper measures a
~10x separation between adjacent rates on its USRP testbed (Fig. 5,
observation 2: "at least a factor of 10") and uses 10; our simulated
channel has steeper waterfalls (less hardware noise), with a measured
separation of ~3 decades per step, so the trace-driven experiments use
``CALIBRATED_SEPARATION = 1000``.  The ablation bench
``test_ablation_softrate.py`` quantifies the sensitivity.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.core.thresholds import FrameLevelArq, compute_thresholds
from repro.phy.rates import RATE_TABLE, RateTable
from repro.rateadapt import (OmniscientAdapter, Rraa, SampleRate,
                             SnrBasedAdapter, SoftRate,
                             theoretical_snr_thresholds,
                             train_snr_thresholds)
from repro.sim.topology import run_tcp_uplink
from repro.traces.format import LinkTrace

__all__ = ["CALIBRATED_SEPARATION", "PAYLOAD_BITS", "softrate_factory",
           "omniscient_factory", "samplerate_factory", "rraa_factory",
           "snr_trained_factory", "charm_factory", "snr_untrained_factory",
           "standard_algorithms", "averaged_tcp_throughput",
           "PROTOCOL_NAMES", "protocol_factory"]

#: Cross-rate BER separation factor of the simulated channel: adjacent
#: rates sit ~3 decades apart here (vs the paper's ~1 decade on USRP
#: hardware), so the factor is 10^3 = 1000; see module docstring.
CALIBRATED_SEPARATION = 1000.0

#: 1400-byte TCP segments (paper section 6.1).
PAYLOAD_BITS = 11200

_RATES = RATE_TABLE.prototype_subset()


#: Computed SoftRate thresholds per distinct rate set.  Threshold
#: computation is a pure (and expensive) function of the rate table,
#: yet every station of a contention cell builds its own adapter —
#: without this cache a 50-station cell spends more time deriving 50
#: identical threshold sets than simulating.
_THRESHOLD_CACHE: dict = {}


def _softrate_thresholds(rates: RateTable):
    key = tuple((r.modulation, r.bits_per_symbol, r.code_rate, r.mbps)
                for r in rates)
    if key not in _THRESHOLD_CACHE:
        _THRESHOLD_CACHE[key] = compute_thresholds(
            rates, FrameLevelArq(PAYLOAD_BITS + 32),
            separation=CALIBRATED_SEPARATION)
    return _THRESHOLD_CACHE[key]


def softrate_factory(rates: RateTable, trace=None) -> SoftRate:
    """SoftRate with thresholds calibrated for the simulated channel."""
    return SoftRate(rates, thresholds=_softrate_thresholds(rates))


def omniscient_factory(rates: RateTable, trace: LinkTrace
                       ) -> OmniscientAdapter:
    return OmniscientAdapter(rates, trace)


def samplerate_factory(rates: RateTable, trace=None) -> SampleRate:
    return SampleRate(rates)


def rraa_factory(rates: RateTable, trace=None) -> Rraa:
    return Rraa(rates)


def snr_trained_factory(training_trace: LinkTrace
                        ) -> Callable[..., SnrBasedAdapter]:
    """Factory closure over thresholds trained on ``training_trace``."""
    thresholds = train_snr_thresholds(training_trace)

    def build(rates: RateTable, trace=None) -> SnrBasedAdapter:
        return SnrBasedAdapter(rates, thresholds)

    return build


def charm_factory(training_trace: LinkTrace, averaging: float = 0.1
                  ) -> Callable[..., SnrBasedAdapter]:
    """CHARM-like averaged-SNR variant (trained thresholds + EWMA)."""
    thresholds = train_snr_thresholds(training_trace)

    def build(rates: RateTable, trace=None) -> SnrBasedAdapter:
        return SnrBasedAdapter(rates, thresholds, averaging=averaging)

    return build


def snr_untrained_factory(rates_for_thresholds: Optional[RateTable] = None
                          ) -> Callable[..., SnrBasedAdapter]:
    """SNR protocol with theoretical (AWGN) thresholds — untrained."""
    table = rates_for_thresholds if rates_for_thresholds is not None \
        else _RATES
    thresholds = theoretical_snr_thresholds(table, PAYLOAD_BITS)

    def build(rates: RateTable, trace=None) -> SnrBasedAdapter:
        return SnrBasedAdapter(rates, thresholds)

    return build


#: Every protocol reachable by name — the single mapping behind both
#: ``repro simulate --protocol`` and the experiment registry.
PROTOCOL_NAMES = ("softrate", "samplerate", "rraa", "snr", "charm",
                  "snr-untrained", "omniscient")

#: Protocols whose thresholds must be trained on a link trace before
#: the factory can be built.
_TRAINED_PROTOCOLS = ("snr", "charm")


def protocol_factory(name: str,
                     training_trace: Optional[LinkTrace] = None
                     ) -> Callable:
    """Resolve a protocol name to an ``(rates, trace) -> adapter`` factory.

    ``snr`` and ``charm`` require ``training_trace`` (their thresholds
    are trained, section 6.2); the others ignore it.
    """
    if name in _TRAINED_PROTOCOLS:
        if training_trace is None:
            raise ValueError(
                f"protocol {name!r} needs a training trace")
        return (snr_trained_factory(training_trace) if name == "snr"
                else charm_factory(training_trace))
    simple = {
        "softrate": softrate_factory,
        "samplerate": samplerate_factory,
        "rraa": rraa_factory,
        "omniscient": omniscient_factory,
    }
    if name in simple:
        return simple[name]
    if name == "snr-untrained":
        return snr_untrained_factory()
    raise ValueError(f"unknown protocol {name!r}; "
                     f"available: {list(PROTOCOL_NAMES)}")


def standard_algorithms(training_trace: LinkTrace) -> List[tuple]:
    """The six algorithms of Fig. 13, as (name, factory) pairs."""
    return [
        ("Omniscient", omniscient_factory),
        ("SoftRate", softrate_factory),
        ("SNR (trained)", snr_trained_factory(training_trace)),
        ("CHARM", charm_factory(training_trace)),
        ("RRAA", rraa_factory),
        ("SampleRate", samplerate_factory),
    ]


def averaged_tcp_throughput(uplink_traces, downlink_traces, factory,
                            n_clients: int, duration: float,
                            seeds=(1, 2), **kwargs) -> dict:
    """Run the Fig. 12 topology over several seeds; average throughput.

    Returns a dict with ``mbps`` (mean aggregate), ``per_seed`` and the
    last run's result object (for log inspection).
    """
    results = []
    last = None
    for seed in seeds:
        last = run_tcp_uplink(uplink_traces, downlink_traces, factory,
                              n_clients=n_clients, duration=duration,
                              seed=seed, **kwargs)
        results.append(last.aggregate_mbps)
    return {"mbps": float(np.mean(results)), "per_seed": results,
            "last_result": last}
