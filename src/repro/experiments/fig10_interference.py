"""Figs. 10 & 11: interference detection accuracy.

The Table 4 "Static (interference)" experiment: a sender and an
interferer transmit simultaneously at a random relative offset; for
frames received *with bit errors*, we measure the fraction the
SoftPHY-based detector flags as collisions — sliced by relative
interferer power (Fig. 10) and by the sender's bit rate (Fig. 11).

The false-positive side (fading losses misflagged as collisions,
section 5.3's "<1%") is measured by :func:`run_false_positives`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.channel.awgn import apply_channel
from repro.channel.interference import overlay_interference
from repro.channel.rayleigh import RayleighFadingProcess
from repro.core.interference import InterferenceDetector
from repro.experiments.api import register_experiment
from repro.phy.snr import db_to_linear
from repro.phy.transceiver import Transceiver

__all__ = ["InterferenceAccuracy", "run_fig10", "run_false_positives"]


@dataclass
class InterferenceAccuracy:
    """Detection statistics for one experimental slice."""

    errored_frames: int
    detected: int
    clean_frames: int
    total_frames: int

    @property
    def accuracy(self) -> float:
        """Fraction of errored frames flagged as collisions."""
        if self.errored_frames == 0:
            return float("nan")
        return self.detected / self.errored_frames


def _run_slice(phy: Transceiver, tx, rel_power_db: float, snr_db: float,
               n_frames: int, rng: np.random.Generator,
               detector: InterferenceDetector) -> InterferenceAccuracy:
    layout = tx.layout
    noise_var = db_to_linear(-snr_db)
    errored = detected = clean = 0
    for _ in range(n_frames):
        frac = float(rng.uniform(0.15, 0.75))
        interference, _span = overlay_interference(
            layout.n_symbols, layout.n_subcarriers, rel_power_db, rng,
            overlap_fraction=frac, align="tail")
        gains = np.ones(layout.n_symbols, dtype=complex)
        rx_sym, g = apply_channel(tx.symbols, gains, noise_var, rng,
                                  interference=interference)
        rx = phy.receive(rx_sym, g, layout, tx_frame=tx)
        if rx.true_ber > 0:
            errored += 1
            report = detector.analyze(rx.hints, rx.info_symbol,
                                      rx.n_body_symbols)
            if report.detected:
                detected += 1
        else:
            clean += 1
    return InterferenceAccuracy(errored_frames=errored,
                                detected=detected, clean_frames=clean,
                                total_frames=n_frames)


def _metrics(result) -> dict:
    by_power, by_rate = result
    out = {}
    for rel, acc in by_power.items():
        out[f"accuracy/power_{rel:g}dB"] = acc.accuracy
    for rate_index, acc in by_rate.items():
        out[f"accuracy/rate_{rate_index}"] = acc.accuracy
    return out


@register_experiment(
    "fig10",
    description="Interference detection accuracy by power and rate",
    params={"seed": 10, "payload_bits": 1600, "n_frames": 25,
            "snr_db": 10.0},
    traces=(), algorithms=(), metrics=_metrics)
def run_fig10(seed: int = 10, payload_bits: int = 1600,
              n_frames: int = 25, snr_db: float = 10.0,
              rel_powers_db: List[float] = None,
              rate_indices: List[int] = None,
              detector: InterferenceDetector = None
              ) -> Tuple[Dict[float, InterferenceAccuracy],
                         Dict[int, InterferenceAccuracy]]:
    """Run the interference-detection accuracy experiment.

    Returns ``(by_power, by_rate)``: Fig. 10 slices detection accuracy
    by relative interferer power at a fixed mid rate; Fig. 11 slices by
    the sender's bit rate at a strong interferer.
    """
    if rel_powers_db is None:
        rel_powers_db = [0.0, -2.0, -4.0, -8.0, -15.0]
    if rate_indices is None:
        rate_indices = [0, 1, 2, 3, 4]
    detector = detector or InterferenceDetector()
    rng = np.random.default_rng(seed)
    phy = Transceiver()
    payload = rng.integers(0, 2, payload_bits).astype(np.uint8)

    by_power = {}
    tx = phy.transmit(payload, rate_index=3)
    for rel in rel_powers_db:
        by_power[rel] = _run_slice(phy, tx, rel, snr_db, n_frames, rng,
                                   detector)
    by_rate = {}
    for rate_index in rate_indices:
        tx_r = phy.transmit(payload, rate_index=rate_index)
        by_rate[rate_index] = _run_slice(phy, tx_r, -1.0, snr_db,
                                         n_frames, rng, detector)
    return by_power, by_rate


def run_false_positives(seed: int = 11, payload_bits: int = 1600,
                        n_frames: int = 40, rate_index: int = 3,
                        doppler_hz: float = 40.0,
                        detector: InterferenceDetector = None
                        ) -> Tuple[int, int]:
    """Fading-only losses misflagged as collisions (section 5.3).

    Returns ``(false_positives, errored_frames)``; the paper measures
    under 1% across its static and walking traces.
    """
    detector = detector or InterferenceDetector()
    rng = np.random.default_rng(seed)
    phy = Transceiver()
    payload = rng.integers(0, 2, payload_bits).astype(np.uint8)
    tx = phy.transmit(payload, rate_index=rate_index)
    false_positives = errored = 0
    while errored < n_frames:
        mean_snr = rng.uniform(6.0, 12.0)
        fading = RayleighFadingProcess(doppler_hz, rng)
        amplitude = np.sqrt(db_to_linear(mean_snr))
        gains = amplitude * fading.symbol_gains(
            0.0, tx.layout.n_symbols, phy.mode.symbol_time)
        rx_sym, g = apply_channel(tx.symbols, gains, 1.0, rng)
        rx = phy.receive(rx_sym, g, tx.layout, tx_frame=tx)
        if rx.true_ber <= 0:
            continue
        errored += 1
        report = detector.analyze(rx.hints, rx.info_symbol,
                                  rx.n_body_symbols)
        if report.detected:
            false_positives += 1
    return false_positives, errored
