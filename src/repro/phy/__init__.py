"""Physical layer: coding, modulation, framing, and the OFDM pipeline.

This package implements an 802.11a/g-like baseband PHY, mirroring the
GNU Radio prototype of the SoftRate paper (SIGCOMM 2009, section 4):

* rate-1/2 constraint-length-7 convolutional coding with puncturing,
* Gray-mapped BPSK/QPSK/16-QAM/64-QAM over OFDM symbols,
* per-symbol frequency interleaving,
* a hard-output Viterbi decoder and a soft-output log-MAP (BCJR)
  decoder whose per-bit log-likelihood ratios are the source of the
  SoftPHY hints used by :mod:`repro.core`,
* a frame-batched fast path (:mod:`repro.phy.batch`) that pushes a
  ``(n_frames, ...)`` stack through the same pipeline bit-identically,
  amortising the Python-level trellis loops across the batch,
* pluggable PHY backends (:mod:`repro.phy.backend`): the bit-exact
  pipeline and a calibrated table-driven surrogate
  (:mod:`repro.phy.calibrate`) behind one frame-outcome contract, so
  simulations choose fidelity vs orders-of-magnitude throughput.
"""

from repro.phy.backend import (FullPhyBackend, PhyBackend,
                               PhyFrameOutcome, SurrogatePhyBackend,
                               UnknownBackendError, get_backend)
from repro.phy.batch import TxBatch, batch_receive, batch_transmit
from repro.phy.rates import RateTable, Rate, RATE_TABLE, OperatingMode, MODES
from repro.phy.transceiver import Transceiver, RxResult

__all__ = [
    "RateTable",
    "Rate",
    "RATE_TABLE",
    "OperatingMode",
    "MODES",
    "Transceiver",
    "RxResult",
    "TxBatch",
    "batch_transmit",
    "batch_receive",
    "PhyBackend",
    "PhyFrameOutcome",
    "FullPhyBackend",
    "SurrogatePhyBackend",
    "UnknownBackendError",
    "get_backend",
]
