"""Calibrate the surrogate PHY backend against the full pipeline.

:func:`calibrate` sweeps the bit-exact transceiver over an SNR grid at
every rate and measures, per (rate, SNR) point:

* the realized post-decoder **BER** and the **frame-loss** fraction
  (frame errors near the waterfall are *bimodal* — the decoder either
  locks on or falls apart — so delivery is calibrated directly from
  the loss curve as a per-bit hazard, not derived from the mean BER);
* the BER of **errored frames** (conditional level and spread), which
  sets how wrong a failed frame looks;
* the BER-estimate distribution of **clean frames** (the estimator's
  noise floor — what lets SoftRate tell a 1e-9 channel from a 1e-4
  one without observing a single bit error) and the estimator's
  decade-level tracking noise on errored frames (Fig. 7a);
* the shape of the per-bit hint distribution (``log10 p_k`` moments),
  used to synthesize hint arrays;
* the preamble SNR estimator's bias and spread;
* the BER under an equal-power interferer (the collision response).

The result is a :class:`CalibrationTable`, stored as JSON under
``src/repro/phy/calibration/`` and loaded by
:class:`repro.phy.backend.SurrogatePhyBackend`.  Regenerate with::

    PYTHONPATH=src python -m repro calibrate \
        --output src/repro/phy/calibration/default.json

Tables are versioned (:data:`TABLE_VERSION`); loading a table written
by an incompatible calibrator fails loudly rather than mis-predicting.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.phy.snr import db_to_linear

__all__ = ["CalibrationTable", "calibrate", "TABLE_VERSION"]

#: Bump when the table schema or its semantics change.
TABLE_VERSION = 1

#: Floor applied to per-bit error probabilities before taking logs.
_LOG_P_FLOOR = 1e-12

#: Minimum decline (decades/dB) enforced when extrapolating a
#: waterfall past the last Monte-Carlo-measurable point.
_MIN_TAIL_SLOPE = -0.3


def _fill_nan(grid: np.ndarray, values: np.ndarray,
              fallback: float) -> np.ndarray:
    """Fill NaN holes by interpolation over the grid (clamped ends)."""
    values = np.asarray(values, dtype=np.float64)
    finite = np.isfinite(values)
    if not finite.any():
        return np.full_like(values, fallback)
    return np.interp(grid, grid[finite], values[finite])


@dataclass
class CalibrationTable:
    """Measured full-PHY response surfaces on an SNR grid.

    All 2-D arrays are indexed ``[rate, snr_point]``.  Lookup methods
    interpolate linearly in dB (log-domain for BER/hazard) and clamp
    at the grid edges.

    Attributes:
        snr_grid_db: the calibration SNR grid (dB), ascending.
        rate_names: provenance labels for the rate axis.
        ber: mean realized BER per (rate, SNR) — the waterfall curves
            validated against the golden fixtures.
        loss: frame-loss fraction per (rate, SNR) at the calibration
            frame size; source of the per-bit delivery hazard.
        errored_log_ber / errored_log_ber_std: mean / std of
            ``log10 BER`` over frames with at least one bit error.
        clean_log_est / clean_log_est_std: mean / std of ``log10`` of
            the frame BER estimate over *error-free* frames (the
            estimator's floor).
        log_p_mean_arr / log_p_std_arr: within-frame moments of
            ``log10 p_k`` over the hint-implied per-bit error
            probabilities (the hint distribution's shape).
        est_noise_decades: decade-level std of the estimator's error
            on errored frames, ``std(log10 est − log10 truth)``
            (Fig. 7a's tracking noise), pooled over the whole sweep.
        snr_bias_grid / snr_std_grid: preamble SNR estimator bias and
            spread (dB) per grid point, pooled over rates.
        interference_ber: mean realized BER under an equal-power
            interferer, per rate.
        meta: provenance (version, payload size, frames per point,
            seed, creation time, decoder variant).
    """

    snr_grid_db: np.ndarray
    rate_names: List[str]
    ber: np.ndarray
    loss: np.ndarray
    errored_log_ber_arr: np.ndarray
    errored_log_ber_std_arr: np.ndarray
    clean_log_est_arr: np.ndarray
    clean_log_est_std_arr: np.ndarray
    log_p_mean_arr: np.ndarray
    log_p_std_arr: np.ndarray
    est_noise_decades: float
    snr_bias_grid: np.ndarray
    snr_std_grid: np.ndarray
    interference_ber: np.ndarray
    meta: Dict = field(default_factory=dict)

    def __post_init__(self):
        self.snr_grid_db = np.asarray(self.snr_grid_db, dtype=np.float64)
        for name in ("ber", "loss", "errored_log_ber_arr",
                     "errored_log_ber_std_arr", "clean_log_est_arr",
                     "clean_log_est_std_arr", "log_p_mean_arr",
                     "log_p_std_arr"):
            setattr(self, name, np.asarray(getattr(self, name),
                                           dtype=np.float64))
        self.est_noise_decades = float(self.est_noise_decades)
        self.snr_bias_grid = np.asarray(self.snr_bias_grid,
                                        dtype=np.float64)
        self.snr_std_grid = np.asarray(self.snr_std_grid,
                                       dtype=np.float64)
        self.interference_ber = np.asarray(self.interference_ber,
                                           dtype=np.float64)
        grid = self.snr_grid_db
        self._errored_log_ber = np.stack(
            [_fill_nan(grid, row, -2.0)
             for row in self.errored_log_ber_arr])
        self._errored_log_ber_std = np.stack(
            [_fill_nan(grid, row, 0.3)
             for row in self.errored_log_ber_std_arr])
        self._clean_log_est = np.stack(
            [_fill_nan(grid, row, -6.0)
             for row in self.clean_log_est_arr])
        self._clean_log_est_std = np.stack(
            [_fill_nan(grid, row, 0.3)
             for row in self.clean_log_est_std_arr])
        self._log_q = self._extend_waterfalls()
        self._log_hazard = self._per_bit_hazard()
        self._interference_snr = {}

    @property
    def n_rates(self) -> int:
        """Number of rates the table covers."""
        return self.ber.shape[0]

    @property
    def n_info_ref(self) -> int:
        """Information bits per calibration frame (payload + CRC-32)."""
        return int(self.meta.get("payload_bits", 1600)) + 32

    # -- waterfall preparation ----------------------------------------

    def _measurable_floor(self) -> float:
        """Smallest BER the calibration Monte Carlo could resolve."""
        frames = int(self.meta.get("frames_per_point", 1))
        return 2.0 / max(frames * self.n_info_ref, 1)

    def _extend_tail(self, logv: np.ndarray,
                     meas: np.ndarray) -> np.ndarray:
        """Continue a log-domain curve past its last measured point.

        Interpolates over the measurable indices ``meas``, then
        extends beyond the last one at the final measured slope (at
        least :data:`_MIN_TAIL_SLOPE` decades/dB), clamps at 1e-12,
        and forces the result monotone non-increasing in SNR.
        """
        grid = self.snr_grid_db
        log_meas = logv[meas]
        out = np.interp(grid, grid[meas], log_meas)
        last = meas[-1]
        if last < grid.size - 1:
            if meas.size >= 2:
                prev = meas[-2]
                slope = (log_meas[-1] - log_meas[-2]) \
                    / (grid[last] - grid[prev])
            else:
                slope = _MIN_TAIL_SLOPE
            slope = min(slope, _MIN_TAIL_SLOPE)
            out[last + 1:] = log_meas[-1] \
                + slope * (grid[last + 1:] - grid[last])
        return np.minimum.accumulate(np.maximum(out, -12.0))

    def _extend_waterfalls(self) -> np.ndarray:
        """Per-rate tail-extrapolated ``log10 BER`` over the grid."""
        floor = self._measurable_floor()
        out = np.empty_like(self.ber)
        for r in range(self.ber.shape[0]):
            meas = np.where(self.ber[r] >= floor)[0]
            if meas.size == 0:
                out[r] = -12.0
                continue
            logv = np.where(self.ber[r] > 0,
                            np.log10(np.maximum(self.ber[r], 1e-300)),
                            -12.0)
            out[r] = self._extend_tail(logv, meas)
        return out

    def _per_bit_hazard(self) -> np.ndarray:
        """Per-rate ``log10`` per-bit delivery hazard over the grid.

        The hazard λ is defined by ``P(frame loss) = 1 − exp(−λ·n)``
        at the calibration frame size, measured from the loss curve
        where it is resolvable and continued with the BER tail (for
        small λ the two coincide: ``loss ≈ n·λ``).
        """
        frames = int(self.meta.get("frames_per_point", 1))
        floor = 1.0 / max(frames, 1)
        n_ref = self.n_info_ref
        out = np.empty_like(self.loss)
        for r in range(self.loss.shape[0]):
            loss = np.clip(self.loss[r], 0.0, 1.0 - 1e-12)
            hazard = -np.log1p(-loss) / n_ref
            meas = np.where(self.loss[r] >= floor)[0]
            if meas.size == 0:
                out[r] = self._log_q[r]
                continue
            logv = np.where(hazard > 0,
                            np.log10(np.maximum(hazard, 1e-300)),
                            -12.0)
            extended = self._extend_tail(logv, meas)
            # Past the last measurable loss point, fall back to the
            # (steeper-informed) BER tail when it is lower.
            last = meas[-1]
            if last < extended.size - 1:
                tail = slice(last + 1, None)
                extended[tail] = np.minimum(extended[tail],
                                            np.maximum(
                                                self._log_q[r][tail],
                                                -12.0))
            out[r] = np.minimum.accumulate(extended)
        return out

    # -- lookups ------------------------------------------------------

    def grid_weights(self, snr_db) -> tuple:
        """Interpolation weights of SNR value(s) on the table's grid.

        One ``searchsorted`` produces an ``(i0, i1, frac)`` triple
        that every surface lookup (:meth:`hazard_at`, the errored and
        clean BER levels) can reuse — the surrogate's per-frame hot
        path queries five surfaces at the same trajectory SNRs, and
        independent ``np.interp`` calls would redo the grid search
        five times.  Out-of-range values clamp to the grid ends,
        matching ``np.interp``.
        """
        x = np.asarray(snr_db, dtype=np.float64)
        g = self.snr_grid_db
        i1 = np.clip(np.searchsorted(g, x), 1, g.size - 1)
        i0 = i1 - 1
        frac = np.clip((x - g[i0]) / (g[i1] - g[i0]), 0.0, 1.0)
        return i0, i1, frac

    @staticmethod
    def _at(surface_row: np.ndarray, weights: tuple) -> np.ndarray:
        i0, i1, frac = weights
        return surface_row[i0] * (1.0 - frac) + surface_row[i1] * frac

    def hazard_at(self, rate_index: int, weights: tuple) -> np.ndarray:
        """:meth:`hazard` via precomputed :meth:`grid_weights`."""
        return 10.0 ** self._at(self._log_hazard[rate_index], weights)

    def errored_log_ber_at(self, rate_index: int,
                           weights: tuple) -> np.ndarray:
        """:meth:`errored_log_ber` via :meth:`grid_weights`."""
        return self._at(self._errored_log_ber[rate_index], weights)

    def errored_log_ber_std_at(self, rate_index: int,
                               weights: tuple) -> np.ndarray:
        """:meth:`errored_log_ber_std` via :meth:`grid_weights`."""
        return self._at(self._errored_log_ber_std[rate_index], weights)

    def clean_log_est_at(self, rate_index: int,
                         weights: tuple) -> np.ndarray:
        """:meth:`clean_log_est` via :meth:`grid_weights`."""
        return self._at(self._clean_log_est[rate_index], weights)

    def clean_log_est_std_at(self, rate_index: int,
                             weights: tuple) -> np.ndarray:
        """:meth:`clean_log_est_std` via :meth:`grid_weights`."""
        return self._at(self._clean_log_est_std[rate_index], weights)

    def bit_error_rate(self, rate_index: int, snr_db) -> np.ndarray:
        """Calibrated mean BER at the given SNR(s)."""
        logq = np.interp(np.asarray(snr_db, dtype=np.float64),
                         self.snr_grid_db, self._log_q[rate_index])
        return 10.0 ** logq

    def hazard(self, rate_index: int, snr_db) -> np.ndarray:
        """Calibrated per-bit delivery hazard at the given SNR(s)."""
        logh = np.interp(np.asarray(snr_db, dtype=np.float64),
                         self.snr_grid_db, self._log_hazard[rate_index])
        return 10.0 ** logh

    def errored_log_ber(self, rate_index: int, snr_db) -> np.ndarray:
        """Mean ``log10 BER`` of errored frames at the SNR(s)."""
        return np.interp(snr_db, self.snr_grid_db,
                         self._errored_log_ber[rate_index])

    def errored_log_ber_std(self, rate_index: int, snr_db) -> np.ndarray:
        """Spread of errored-frame ``log10 BER`` at the SNR(s)."""
        return np.interp(snr_db, self.snr_grid_db,
                         self._errored_log_ber_std[rate_index])

    def clean_log_est(self, rate_index: int, snr_db) -> np.ndarray:
        """Mean ``log10`` estimate of error-free frames at SNR(s)."""
        return np.interp(snr_db, self.snr_grid_db,
                         self._clean_log_est[rate_index])

    def clean_log_est_std(self, rate_index: int, snr_db) -> np.ndarray:
        """Spread of the clean-frame estimate at the SNR(s)."""
        return np.interp(snr_db, self.snr_grid_db,
                         self._clean_log_est_std[rate_index])

    def log_p_mean(self, rate_index: int, snr_db) -> np.ndarray:
        """Within-frame mean of ``log10 p_k`` at the given SNR(s)."""
        return np.interp(snr_db, self.snr_grid_db,
                         self.log_p_mean_arr[rate_index])

    def log_p_std(self, rate_index: int, snr_db) -> np.ndarray:
        """Within-frame std of ``log10 p_k`` at the given SNR(s)."""
        return np.interp(snr_db, self.snr_grid_db,
                         self.log_p_std_arr[rate_index])

    def snr_bias(self, snr_db: float) -> float:
        """Preamble SNR estimator bias (dB) at the given channel SNR."""
        return float(np.interp(snr_db, self.snr_grid_db,
                               self.snr_bias_grid))

    def snr_std(self, snr_db: float) -> float:
        """Preamble SNR estimator spread (dB) at the given SNR."""
        return float(max(np.interp(snr_db, self.snr_grid_db,
                                   self.snr_std_grid), 1e-6))

    def interference_snr_db(self, rate_index: int) -> float:
        """SNR whose calibrated BER equals the interference BER.

        Remapping an interfered trajectory sample to this equivalent
        SNR makes every downstream lookup (delivery hazard, hints,
        estimate) consistent with the measured collision response.
        """
        if rate_index not in self._interference_snr:
            target = np.log10(max(float(
                self.interference_ber[rate_index]), _LOG_P_FLOOR))
            logq = self._log_q[rate_index]
            # logq is non-increasing in SNR; interp wants ascending x.
            snr = np.interp(target, logq[::-1], self.snr_grid_db[::-1])
            self._interference_snr[rate_index] = float(snr)
        return self._interference_snr[rate_index]

    # -- serialization ------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-ready representation (see :meth:`from_dict`).

        NaN holes (points where no errored / no clean frame was
        observed) are stored as ``null``.
        """
        def listify(arr):
            return [[None if not np.isfinite(v) else float(v)
                     for v in row] for row in arr]

        return {
            "meta": dict(self.meta, version=TABLE_VERSION),
            "snr_grid_db": self.snr_grid_db.tolist(),
            "rate_names": list(self.rate_names),
            "ber": self.ber.tolist(),
            "loss": self.loss.tolist(),
            "errored_log_ber": listify(self.errored_log_ber_arr),
            "errored_log_ber_std": listify(self.errored_log_ber_std_arr),
            "clean_log_est": listify(self.clean_log_est_arr),
            "clean_log_est_std": listify(self.clean_log_est_std_arr),
            "log_p_mean": self.log_p_mean_arr.tolist(),
            "log_p_std": self.log_p_std_arr.tolist(),
            "est_noise_decades": float(self.est_noise_decades),
            "snr_bias": self.snr_bias_grid.tolist(),
            "snr_std": self.snr_std_grid.tolist(),
            "interference_ber": self.interference_ber.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CalibrationTable":
        """Rebuild a table from :meth:`to_dict` output.

        Raises:
            ValueError: the stored schema version is incompatible.
        """
        meta = dict(data.get("meta", {}))
        version = int(meta.get("version", -1))
        if version != TABLE_VERSION:
            raise ValueError(
                f"calibration table version {version} unsupported "
                f"(expected {TABLE_VERSION}); re-run `repro calibrate`")

        def arrify(rows):
            return np.array([[np.nan if v is None else float(v)
                              for v in row] for row in rows])

        return cls(snr_grid_db=data["snr_grid_db"],
                   rate_names=list(data["rate_names"]),
                   ber=data["ber"], loss=data["loss"],
                   errored_log_ber_arr=arrify(data["errored_log_ber"]),
                   errored_log_ber_std_arr=arrify(
                       data["errored_log_ber_std"]),
                   clean_log_est_arr=arrify(data["clean_log_est"]),
                   clean_log_est_std_arr=arrify(
                       data["clean_log_est_std"]),
                   log_p_mean_arr=data["log_p_mean"],
                   log_p_std_arr=data["log_p_std"],
                   est_noise_decades=data["est_noise_decades"],
                   snr_bias_grid=data["snr_bias"],
                   snr_std_grid=data["snr_std"],
                   interference_ber=data["interference_ber"],
                   meta=meta)

    def save(self, path: str) -> None:
        """Write the table as JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "CalibrationTable":
        """Load a table saved with :meth:`save`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def calibrate(phy=None,
              snr_grid_db: Optional[np.ndarray] = None,
              frames_per_point: int = 24,
              payload_bits: int = 1600,
              seed: int = 2009,
              batch_size: int = 16,
              interference_snr_db: float = 20.0,
              interference_frames: int = 16,
              progress: Optional[Callable[[str], None]] = None
              ) -> CalibrationTable:
    """Measure a :class:`CalibrationTable` from the full PHY.

    Sweeps every rate over ``snr_grid_db``, decoding
    ``frames_per_point`` independent AWGN realisations per point
    through the batched fast path, then measures the equal-power
    interference response at ``interference_snr_db``.

    Args:
        phy: the :class:`~repro.phy.transceiver.Transceiver` to
            calibrate against (a default one if omitted).
        snr_grid_db: calibration grid; default −2…26 dB in 1 dB steps,
            spanning every rate's waterfall.
        frames_per_point: Monte Carlo frames per (rate, SNR) point.
        payload_bits: payload size of the calibration frames.
        seed: RNG seed (the table records it for provenance).
        batch_size: frames decoded per batched-PHY call.
        interference_snr_db: channel SNR of the interference probe.
        interference_frames: frames for the interference probe.
        progress: optional callback receiving one line per rate.

    Returns:
        The measured :class:`CalibrationTable`.

    Example::

        table = calibrate(frames_per_point=8, payload_bits=400)
        table.save("my_calibration.json")
    """
    from repro.channel.awgn import apply_channel, awgn
    from repro.core.hints import error_probabilities
    from repro.phy.transceiver import Transceiver

    phy = phy if phy is not None else Transceiver()
    if snr_grid_db is None:
        snr_grid_db = np.arange(-2.0, 26.5, 1.0)
    snr_grid_db = np.asarray(snr_grid_db, dtype=np.float64)
    rng = np.random.default_rng(seed)
    rates = phy.rates
    n_rates, n_snr = len(rates), snr_grid_db.size
    payload = rng.integers(0, 2, payload_bits).astype(np.uint8)

    shape = (n_rates, n_snr)
    ber = np.zeros(shape)
    loss = np.zeros(shape)
    errored_log_ber = np.full(shape, np.nan)
    errored_log_ber_std = np.full(shape, np.nan)
    clean_log_est = np.full(shape, np.nan)
    clean_log_est_std = np.full(shape, np.nan)
    log_p_mean = np.zeros(shape)
    log_p_std = np.zeros(shape)
    est_deviations: List[float] = []
    snr_err_sum = np.zeros(n_snr)
    snr_err_sq = np.zeros(n_snr)
    snr_err_n = np.zeros(n_snr)
    interference_ber = np.zeros(n_rates)

    for r in range(n_rates):
        tx = phy.transmit(payload, rate_index=r)
        for s, snr_db in enumerate(snr_grid_db):
            noise_var = db_to_linear(-float(snr_db))
            bers, log_p_all = [], []
            err_logs, clean_logs = [], []
            done = 0
            while done < frames_per_point:
                chunk = min(batch_size, frames_per_point - done)
                gains = np.ones((chunk, tx.layout.n_symbols),
                                dtype=complex)
                for rx in phy.run_batch(tx, gains, noise_var, rng):
                    bers.append(rx.true_ber)
                    p = error_probabilities(rx.hints)
                    log_p_all.append(
                        np.log10(np.clip(p, _LOG_P_FLOOR, 0.5)))
                    est = max(float(np.mean(p)), _LOG_P_FLOOR)
                    if rx.true_ber > 0:
                        err_logs.append(np.log10(rx.true_ber))
                        est_deviations.append(
                            np.log10(est) - np.log10(rx.true_ber))
                    else:
                        clean_logs.append(np.log10(est))
                    err = rx.snr_db - float(snr_db)
                    snr_err_sum[s] += err
                    snr_err_sq[s] += err * err
                    snr_err_n[s] += 1
                done += chunk
            ber[r, s] = float(np.mean(bers))
            loss[r, s] = float(np.mean([b > 0 for b in bers]))
            if err_logs:
                errored_log_ber[r, s] = float(np.mean(err_logs))
                errored_log_ber_std[r, s] = float(np.std(err_logs))
            if clean_logs:
                clean_log_est[r, s] = float(np.mean(clean_logs))
                clean_log_est_std[r, s] = float(np.std(clean_logs))
            pooled = np.concatenate(log_p_all)
            log_p_mean[r, s] = float(np.mean(pooled))
            log_p_std[r, s] = float(np.std(pooled))

        # Equal-power interference probe at a comfortably high SNR.
        noise_var = db_to_linear(-interference_snr_db)
        i_bers = []
        for _ in range(interference_frames):
            interference = awgn(tx.symbols.shape, 1.0, rng)
            rx_sym, gains = apply_channel(
                tx.symbols, np.ones(tx.layout.n_symbols, dtype=complex),
                noise_var, rng, interference=interference)
            rx = phy.receive(rx_sym, gains, tx.layout, tx_frame=tx)
            i_bers.append(rx.true_ber)
        interference_ber[r] = float(np.mean(i_bers))
        if progress is not None:
            progress(f"calibrated rate {r} ({rates[r].name}): "
                     f"interference BER {interference_ber[r]:.3g}")

    n = np.maximum(snr_err_n, 1.0)
    bias = snr_err_sum / n
    std = np.sqrt(np.maximum(snr_err_sq / n - bias ** 2, 0.0))
    est_noise = float(np.std(est_deviations)) if est_deviations else 0.1

    meta = {
        "version": TABLE_VERSION,
        "created": time.strftime("%Y-%m-%d %H:%M:%S"),
        "payload_bits": int(payload_bits),
        "frames_per_point": int(frames_per_point),
        "interference_snr_db": float(interference_snr_db),
        "interference_frames": int(interference_frames),
        "seed": int(seed),
        "decoder_variant": phy.decoder_variant,
        "mode": phy.mode.name,
    }
    return CalibrationTable(
        snr_grid_db=snr_grid_db, rate_names=rates.names(),
        ber=ber, loss=loss,
        errored_log_ber_arr=errored_log_ber,
        errored_log_ber_std_arr=errored_log_ber_std,
        clean_log_est_arr=clean_log_est,
        clean_log_est_std_arr=clean_log_est_std,
        log_p_mean_arr=log_p_mean, log_p_std_arr=log_p_std,
        est_noise_decades=est_noise,
        snr_bias_grid=bias, snr_std_grid=std,
        interference_ber=interference_ber, meta=meta)
