"""OFDM frame layout and symbol assembly.

A transmitted frame is a sequence of OFDM symbols:

    [ preamble | header | body ... | postamble ]

* The **preamble** carries known training symbols used for detection,
  channel estimation, and the Schmidl-Cox-style SNR estimate.
* The **header** carries the link-layer header (:mod:`repro.phy.frame`)
  coded at the lowest rate so it survives conditions that corrupt the
  body.
* The **body** carries the payload at the frame's chosen bit rate,
  convolutionally coded, punctured, and frequency-interleaved per
  symbol.
* The optional **postamble** is one more training symbol; the paper
  (section 3.2) uses it so a receiver can detect the tail of a frame
  whose preamble was destroyed by a collision.

We work at the subcarrier-symbol abstraction: each OFDM symbol is a
vector of ``n_subcarriers`` complex constellation points, and the
channel applies a complex gain per symbol plus additive noise.  The
IFFT/CP stage is omitted because it is a lossless change of basis that
no part of SoftRate observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.phy.convcode import (ConvolutionalCode, PUNCTURE_PATTERNS,
                                n_coded_bits)

__all__ = ["FrameLayout", "training_symbols", "info_bit_symbol_map"]

_TRAINING_SEED = 0x50F7


@lru_cache(maxsize=None)
def _training_cache(n_symbols: int, n_subcarriers: int) -> np.ndarray:
    rng = np.random.default_rng(_TRAINING_SEED)
    qpsk = (rng.integers(0, 2, size=(n_symbols, n_subcarriers)) * 2 - 1
            + 1j * (rng.integers(0, 2, size=(n_symbols, n_subcarriers))
                    * 2 - 1)) / np.sqrt(2)
    qpsk.setflags(write=False)
    return qpsk


def training_symbols(n_symbols: int, n_subcarriers: int) -> np.ndarray:
    """Deterministic unit-energy QPSK training symbols.

    The sequence is fixed (known to every receiver); the same generator
    serves preamble and postamble.
    """
    return _training_cache(n_symbols, n_subcarriers)


def info_bit_symbol_map(n_info_bits: int, n_tail_bits: int,
                        code_rate: Fraction,
                        coded_bits_per_symbol: int) -> np.ndarray:
    """Map each information bit to the body OFDM symbol carrying it.

    Bit ``k``'s mother-code bits sit at positions ``2k`` and ``2k + 1``;
    after puncturing, the first surviving one lands at a position whose
    symbol index we record.  Frequency interleaving permutes bits only
    *within* a symbol, so the symbol index is interleaving-invariant.
    This mapping realises Eq. 4 of the paper: averaging the per-bit
    error probabilities of the bits in one symbol yields the
    per-symbol BER used for interference detection.
    """
    n_steps = n_info_bits + n_tail_bits
    pattern = PUNCTURE_PATTERNS[code_rate]
    reps = -(-2 * n_steps // pattern.size)
    mask = np.tile(pattern, reps)[: 2 * n_steps]
    punctured_pos = np.cumsum(mask) - 1          # position after puncturing
    first = np.where(mask[0::2], punctured_pos[0::2], punctured_pos[1::2])
    return (first[:n_info_bits] // coded_bits_per_symbol).astype(np.int64)


@dataclass(frozen=True)
class FrameLayout:
    """Geometry of one frame's OFDM symbols.

    Built by :meth:`repro.phy.transceiver.Transceiver.frame_layout`;
    the receiver needs the same layout to slice a received frame.
    """

    n_subcarriers: int
    n_payload_bits: int
    body_rate_index: int
    body_modulation: str
    body_code_rate: Fraction
    header_modulation: str
    header_code_rate: Fraction
    n_preamble_symbols: int
    n_header_symbols: int
    n_body_symbols: int
    has_postamble: bool
    n_body_info_bits: int            # payload + CRC-32
    n_body_mother_bits: int          # before puncturing, incl. tail
    n_body_coded_bits: int           # after puncturing, before padding
    body_pad_bits: int
    n_header_mother_bits: int
    n_header_coded_bits: int
    header_pad_bits: int
    info_symbol: np.ndarray = field(repr=False, compare=False)

    @property
    def n_postamble_symbols(self) -> int:
        return 1 if self.has_postamble else 0

    @property
    def n_symbols(self) -> int:
        """Total OFDM symbols in the frame."""
        return (self.n_preamble_symbols + self.n_header_symbols
                + self.n_body_symbols + self.n_postamble_symbols)

    @property
    def preamble(self) -> slice:
        return slice(0, self.n_preamble_symbols)

    @property
    def header(self) -> slice:
        start = self.n_preamble_symbols
        return slice(start, start + self.n_header_symbols)

    @property
    def body(self) -> slice:
        start = self.n_preamble_symbols + self.n_header_symbols
        return slice(start, start + self.n_body_symbols)

    @property
    def postamble(self) -> Optional[slice]:
        if not self.has_postamble:
            return None
        return slice(self.n_symbols - 1, self.n_symbols)

    def airtime(self, symbol_time: float) -> float:
        """Frame duration in seconds."""
        return self.n_symbols * symbol_time


def build_layout(n_payload_bits: int, rate_index: int, body_modulation: str,
                 body_bits_per_symbol: int, body_code_rate: Fraction,
                 header_modulation: str, header_bits_per_symbol: int,
                 header_code_rate: Fraction, n_subcarriers: int,
                 code: ConvolutionalCode, n_preamble_symbols: int,
                 has_postamble: bool, n_header_bits: int) -> FrameLayout:
    """Compute a :class:`FrameLayout` (internal; used by the transceiver)."""
    if n_payload_bits % 8 != 0:
        raise ValueError("payload must be byte-aligned")
    n_body_info = n_payload_bits + 32          # + CRC-32
    n_body_mother = 2 * (n_body_info + code.n_tail_bits)
    n_body_coded = n_coded_bits(n_body_info + code.n_tail_bits,
                                body_code_rate)
    body_block = body_bits_per_symbol * n_subcarriers
    n_body_symbols = -(-n_body_coded // body_block)
    body_pad = n_body_symbols * body_block - n_body_coded

    n_header_mother = 2 * (n_header_bits + code.n_tail_bits)
    n_header_coded = n_coded_bits(n_header_bits + code.n_tail_bits,
                                  header_code_rate)
    header_block = header_bits_per_symbol * n_subcarriers
    n_header_symbols = -(-n_header_coded // header_block)
    header_pad = n_header_symbols * header_block - n_header_coded

    info_symbol = info_bit_symbol_map(n_body_info, code.n_tail_bits,
                                      body_code_rate, body_block)
    info_symbol.setflags(write=False)
    return FrameLayout(
        n_subcarriers=n_subcarriers,
        n_payload_bits=n_payload_bits,
        body_rate_index=rate_index,
        body_modulation=body_modulation,
        body_code_rate=body_code_rate,
        header_modulation=header_modulation,
        header_code_rate=header_code_rate,
        n_preamble_symbols=n_preamble_symbols,
        n_header_symbols=n_header_symbols,
        n_body_symbols=n_body_symbols,
        has_postamble=has_postamble,
        n_body_info_bits=n_body_info,
        n_body_mother_bits=n_body_mother,
        n_body_coded_bits=n_body_coded,
        body_pad_bits=body_pad,
        n_header_mother_bits=n_header_mother,
        n_header_coded_bits=n_header_coded,
        header_pad_bits=header_pad,
        info_symbol=info_symbol,
    )
