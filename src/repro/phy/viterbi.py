"""Hard-output Viterbi decoder for the rate-1/2 convolutional code.

Used for the link header (which never needs soft outputs), as the
conventional receiver baseline, and to cross-check the BCJR decoder:
on the same input, the sign of the BCJR posterior LLRs must agree with
the Viterbi path wherever the LLR magnitude is non-negligible.

The decoder is soft-input: branch metrics are correlations between the
candidate coded bits (bipolar) and the received channel LLRs, so it
accepts the same depunctured LLR stream as :mod:`repro.phy.bcjr`.
Erased (punctured) positions carry LLR 0 and contribute nothing.

Like the BCJR decoder, the implementation is a **batched kernel**
(:func:`viterbi_decode_batch`): a ``(n_frames, n_llrs)`` stack of
equal-length frames advances through every trellis step together, and
the traceback walks all frames' survivor paths in lockstep.
:func:`viterbi_decode` is a thin single-frame wrapper over the same
kernel; both paths are bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.phy.convcode import ConvolutionalCode

__all__ = ["viterbi_decode", "viterbi_decode_batch"]

_NEG_INF = -1e30


def viterbi_decode(code: ConvolutionalCode,
                   channel_llrs: np.ndarray) -> np.ndarray:
    """Maximum-likelihood sequence decoding of a terminated stream.

    Args:
        code: the convolutional code (defines the trellis).
        channel_llrs: depunctured channel LLRs for the rate-1/2 coded
            stream, ``log P(r|c=1) - log P(r|c=0)`` per coded bit,
            length ``2 * n_steps``.

    Returns:
        The decoded information bits (tail bits stripped).
    """
    llrs = np.asarray(channel_llrs, dtype=np.float64)
    if llrs.ndim != 1:
        raise ValueError("viterbi_decode expects a 1-D LLR stream; "
                         "use viterbi_decode_batch for frame stacks")
    return viterbi_decode_batch(code, llrs[None, :])[0]


def viterbi_decode_batch(code: ConvolutionalCode,
                         channel_llrs: np.ndarray) -> np.ndarray:
    """Decode a ``(n_frames, n_llrs)`` stack of equal-length streams.

    The add-compare-select loop runs once per trellis step for the
    whole batch (per-frame path metrics stacked along the leading
    axis), and the traceback advances every frame's state pointer in
    lockstep.  Output is bit-identical to decoding each row alone.

    Args:
        code: the convolutional code (defines the trellis).
        channel_llrs: depunctured channel LLRs, shape
            ``(n_frames, 2 * n_steps)``.

    Returns:
        Decoded information bits, shape
        ``(n_frames, n_steps - n_tail_bits)``.
    """
    llrs = np.asarray(channel_llrs, dtype=np.float64)
    if llrs.ndim != 2:
        raise ValueError("viterbi_decode_batch expects a 2-D LLR array")
    if llrs.shape[-1] % 2 != 0:
        raise ValueError("channel LLR stream must have even length")
    n_frames = llrs.shape[0]
    n_steps = llrs.shape[-1] // 2
    if n_steps <= code.n_tail_bits:
        raise ValueError("input shorter than the code's tail")

    trellis = code.trellis
    n_states = trellis.n_states
    prev_state = trellis.prev_state
    prev_input = trellis.prev_input

    # Branch metric of transition (s, b) at time t, as a correlation of
    # the bipolar coded bits with the received LLR pair.  Time-major
    # layout (like repro.phy.bcjr) keeps each step's slab contiguous.
    bipolar = 2.0 * trellis.outputs.astype(np.float64) - 1.0   # (S, 2, 2)
    pairs = llrs.reshape(n_frames, n_steps, 2).transpose(1, 0, 2)
    branch = (bipolar[None, None, :, :, 0] * pairs[:, :, None, None, 0]
              + bipolar[None, None, :, :, 1] * pairs[:, :, None, None, 1])
    branch_flat = branch.reshape(n_steps, n_frames, 2 * n_states)

    enter_col = prev_state * 2 + prev_input
    enter0, enter1 = enter_col[:, 0], enter_col[:, 1]
    pred0, pred1 = prev_state[:, 0], prev_state[:, 1]

    metric = np.full((n_frames, n_states), _NEG_INF)
    metric[:, 0] = 0.0
    # survivors[t, f, s] = which of the two predecessors won at state s.
    survivors = np.empty((n_steps, n_frames, n_states), dtype=np.uint8)
    for t in range(n_steps):
        bf = branch_flat[t]
        cand0 = metric[:, pred0] + bf[:, enter0]
        cand1 = metric[:, pred1] + bf[:, enter1]
        take1 = cand1 > cand0
        survivors[t] = take1
        metric = np.where(take1, cand1, cand0)
        metric -= metric.max(axis=-1, keepdims=True)

    # Terminated trellis: trace back from state 0, all frames at once.
    state = np.zeros(n_frames, dtype=np.int64)
    rows = np.arange(n_frames)
    decoded = np.empty((n_frames, n_steps), dtype=np.uint8)
    for t in range(n_steps - 1, -1, -1):
        which = survivors[t, rows, state]
        decoded[:, t] = prev_input[state, which]
        state = prev_state[state, which]
    return decoded[:, : n_steps - code.n_tail_bits]
