"""The 802.11 rate-1/2 convolutional code with puncturing.

The mother code is the industry-standard constraint-length-7 code with
generator polynomials 133 and 171 (octal).  Higher code rates (2/3 and
3/4) are obtained by puncturing: deleting coded bits in a fixed periodic
pattern that the receiver re-inserts as erasures before decoding.

The trellis structure (state transition and output tables) built here is
shared by both the hard Viterbi decoder (:mod:`repro.phy.viterbi`) and
the soft-output BCJR decoder (:mod:`repro.phy.bcjr`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "ConvolutionalCode",
    "Trellis",
    "PUNCTURE_PATTERNS",
    "puncture",
    "depuncture",
    "n_coded_bits",
]

#: Puncturing patterns over the interleaved (out0, out1) coded stream.
#: A 1 keeps the coded bit, a 0 deletes it.  The patterns follow the
#: 802.11a convention: rate 2/3 sends A1 B1 A2 (B2 stolen); rate 3/4
#: sends A1 B1 A2 B3 (B2, A3 stolen).
PUNCTURE_PATTERNS: Dict[Fraction, np.ndarray] = {
    Fraction(1, 2): np.array([1, 1], dtype=bool),
    Fraction(2, 3): np.array([1, 1, 1, 0], dtype=bool),
    Fraction(3, 4): np.array([1, 1, 1, 0, 0, 1], dtype=bool),
}


@dataclass(frozen=True)
class Trellis:
    """Precomputed trellis tables for a rate-1/2 convolutional code.

    Attributes:
        n_states: number of encoder states (``2**(K-1)``).
        next_state: ``(n_states, 2)`` array; ``next_state[s, b]`` is the
            state reached from ``s`` on input bit ``b``.
        outputs: ``(n_states, 2, 2)`` array; ``outputs[s, b]`` holds the
            two coded bits emitted on that transition.
        prev_state: ``(n_states, 2)`` array; predecessors of each state,
            one per input bit value.
        prev_input: companion to ``prev_state`` — the input bit on the
            transition from ``prev_state[s, b]`` to ``s`` (always ``b``
            for this code, kept explicit for clarity).
    """

    n_states: int
    next_state: np.ndarray
    outputs: np.ndarray
    prev_state: np.ndarray
    prev_input: np.ndarray


def _parity(x: int) -> int:
    return bin(x).count("1") & 1


def _build_trellis(constraint_length: int, g0: int, g1: int) -> Trellis:
    n_states = 1 << (constraint_length - 1)
    next_state = np.zeros((n_states, 2), dtype=np.int64)
    outputs = np.zeros((n_states, 2, 2), dtype=np.uint8)
    for state in range(n_states):
        for bit in (0, 1):
            register = (bit << (constraint_length - 1)) | state
            next_state[state, bit] = register >> 1
            outputs[state, bit, 0] = _parity(register & g0)
            outputs[state, bit, 1] = _parity(register & g1)
    prev_state = np.zeros((n_states, 2), dtype=np.int64)
    prev_input = np.zeros((n_states, 2), dtype=np.uint8)
    seen = np.zeros(n_states, dtype=np.int64)
    for state in range(n_states):
        for bit in (0, 1):
            nxt = next_state[state, bit]
            prev_state[nxt, seen[nxt]] = state
            prev_input[nxt, seen[nxt]] = bit
            seen[nxt] += 1
    if not np.all(seen == 2):
        raise AssertionError("trellis is not 2-regular; bad generators")
    return Trellis(n_states=n_states, next_state=next_state,
                   outputs=outputs, prev_state=prev_state,
                   prev_input=prev_input)


class ConvolutionalCode:
    """Rate-1/2 convolutional encoder with optional puncturing.

    Args:
        constraint_length: total memory + 1 (802.11 uses 7).
        generators: the two generator polynomials in octal-style ints.

    The encoder is always terminated: ``constraint_length - 1`` zero
    tail bits are appended so the trellis ends in the all-zero state,
    which both decoders exploit.
    """

    def __init__(self, constraint_length: int = 7,
                 generators: Tuple[int, int] = (0o133, 0o171)):
        if constraint_length < 2:
            raise ValueError("constraint length must be at least 2")
        self.constraint_length = constraint_length
        self.generators = generators
        self.trellis = _build_trellis(constraint_length, *generators)

    @property
    def n_tail_bits(self) -> int:
        """Zero bits appended to terminate the trellis."""
        return self.constraint_length - 1

    def encode(self, info_bits: np.ndarray) -> np.ndarray:
        """Encode ``info_bits`` (tail bits appended automatically).

        Returns the rate-1/2 coded stream, interleaved as
        ``[A0, B0, A1, B1, ...]``, of length
        ``2 * (len(info_bits) + n_tail_bits)``.  Thin wrapper over
        :meth:`encode_batch` (the single source of truth).
        """
        info_bits = np.asarray(info_bits, dtype=np.uint8)
        if info_bits.ndim != 1:
            raise ValueError("encode expects a 1-D bit array; "
                             "use encode_batch for frame stacks")
        return self.encode_batch(info_bits[None, :])[0]

    def encode_batch(self, info_bits: np.ndarray) -> np.ndarray:
        """Encode a ``(n_frames, n_info)`` stack of equal-length frames.

        All frames advance through the shift register together: the
        per-bit loop runs once for the whole batch, with the encoder
        state held as a vector of per-frame states.

        Returns the coded streams, shape ``(n_frames, 2 * (n_info +
        n_tail_bits))``, bit-identical to encoding each row alone.
        """
        info_bits = np.asarray(info_bits, dtype=np.uint8)
        if info_bits.ndim != 2:
            raise ValueError("encode_batch expects a 2-D bit array")
        n_frames = info_bits.shape[0]
        bits = np.concatenate(
            [info_bits,
             np.zeros((n_frames, self.n_tail_bits), dtype=np.uint8)],
            axis=1)
        n_steps = bits.shape[1]
        coded = np.empty((n_frames, 2 * n_steps), dtype=np.uint8)
        state = np.zeros(n_frames, dtype=np.int64)
        next_state = self.trellis.next_state
        outputs = self.trellis.outputs
        for i in range(n_steps):
            bit = bits[:, i]
            coded[:, 2 * i] = outputs[state, bit, 0]
            coded[:, 2 * i + 1] = outputs[state, bit, 1]
            state = next_state[state, bit]
        return coded

    def coded_length(self, n_info_bits: int,
                     code_rate: Fraction = Fraction(1, 2)) -> int:
        """Punctured coded length for ``n_info_bits`` information bits."""
        return n_coded_bits(n_info_bits + self.n_tail_bits, code_rate)


def n_coded_bits(n_trellis_steps: int, code_rate: Fraction) -> int:
    """Coded bits surviving puncturing for ``n_trellis_steps`` input bits."""
    pattern = PUNCTURE_PATTERNS[code_rate]
    mother = 2 * n_trellis_steps
    full, rem = divmod(mother, pattern.size)
    return int(full * pattern.sum() + pattern[:rem].sum())


def puncture(coded: np.ndarray, code_rate: Fraction) -> np.ndarray:
    """Delete coded bits according to the pattern for ``code_rate``.

    Accepts a 1-D stream or a ``(n_frames, n_bits)`` stack; the pattern
    applies along the last axis.
    """
    coded = np.asarray(coded)
    pattern = PUNCTURE_PATTERNS[code_rate]
    n = coded.shape[-1]
    reps = -(-n // pattern.size)
    mask = np.tile(pattern, reps)[:n]
    return coded[..., mask]


def depuncture(values: np.ndarray, n_mother_bits: int,
               code_rate: Fraction, fill: float = 0.0) -> np.ndarray:
    """Re-insert punctured positions as erasures.

    Args:
        values: received values (bits or LLRs) for the surviving
            positions, in transmission order.
        n_mother_bits: length of the unpunctured rate-1/2 stream.
        code_rate: the puncturing rate used at the transmitter.
        fill: value for the erased positions (0 = "no information"
            for LLRs, and a neutral value for hard bits).

    Accepts a 1-D stream or a ``(n_frames, n_values)`` stack (erasures
    re-inserted along the last axis); returns a float array whose last
    axis has length ``n_mother_bits``.
    """
    values = np.asarray(values, dtype=np.float64)
    pattern = PUNCTURE_PATTERNS[code_rate]
    reps = -(-n_mother_bits // pattern.size)
    mask = np.tile(pattern, reps)[:n_mother_bits]
    expected = int(mask.sum())
    if values.shape[-1] != expected:
        raise ValueError(
            f"got {values.shape[-1]} values, expected {expected} for "
            f"{n_mother_bits} mother bits at rate {code_rate}")
    out = np.full(values.shape[:-1] + (n_mother_bits,), fill,
                  dtype=np.float64)
    out[..., mask] = values
    return out
