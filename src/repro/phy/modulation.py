"""Gray-mapped constellations and soft demapping to coded-bit LLRs.

Implements the four modulations of the 802.11a/g rate table — BPSK,
QPSK, 16-QAM, and 64-QAM — with the standard per-axis Gray labelling
and unit average symbol energy.

The demapper produces, for every coded bit, the channel LLR

    L = log P(y | c = 1) - log P(y | c = 0)

by marginalising over the constellation points consistent with each bit
value, given the (known) complex channel gain for the symbol and the
receiver's noise-variance estimate.  An exact (``logsumexp``) and a
max-log variant are provided; the exact one is the default since the
constellations are small.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy.special import logsumexp

__all__ = [
    "Constellation",
    "CONSTELLATIONS",
    "modulate",
    "soft_demap",
    "soft_demap_batch",
    "hard_demap",
]


def _gray_code(n: int) -> np.ndarray:
    """The length-``2**n`` Gray code sequence."""
    codes = np.arange(1 << n)
    return codes ^ (codes >> 1)


def _pam_levels(bits_per_axis: int) -> np.ndarray:
    """Gray-labelled PAM levels for one axis, indexed by bit pattern.

    Returns ``levels`` such that ``levels[pattern]`` is the (unnormalised)
    amplitude whose Gray label equals ``pattern``.
    """
    m = 1 << bits_per_axis
    amplitudes = np.arange(-(m - 1), m, 2, dtype=np.float64)
    gray = _gray_code(bits_per_axis)
    levels = np.empty(m)
    for position, label in enumerate(gray):
        levels[label] = amplitudes[position]
    return levels


class Constellation:
    """A Gray-mapped constellation with unit average energy.

    Attributes:
        name: e.g. ``"QAM16"``.
        bits_per_symbol: bits carried per complex symbol.
        points: complex array indexed by the integer formed from the
            symbol's bits (MSB first).
        bit_table: ``(2**bps, bps)`` bit patterns of each point.
    """

    def __init__(self, name: str, bits_per_symbol: int):
        self.name = name
        self.bits_per_symbol = bits_per_symbol
        if name == "BPSK":
            points = np.array([-1.0 + 0j, 1.0 + 0j])
        else:
            half = bits_per_symbol // 2
            levels = _pam_levels(half)
            labels = np.arange(1 << bits_per_symbol)
            i_bits = labels >> half
            q_bits = labels & ((1 << half) - 1)
            points = levels[i_bits] + 1j * levels[q_bits]
        energy = np.mean(np.abs(points) ** 2)
        self.points = points / np.sqrt(energy)
        n = 1 << bits_per_symbol
        self.bit_table = (
            (np.arange(n)[:, None] >> np.arange(bits_per_symbol - 1, -1, -1))
            & 1
        ).astype(np.uint8)
        # Masks of points where bit i equals 1 / 0, for demapping.
        self._ones_mask = self.bit_table.T.astype(bool)   # (bps, n)

    @property
    def min_distance(self) -> float:
        """Minimum Euclidean distance between constellation points."""
        diffs = self.points[:, None] - self.points[None, :]
        distances = np.abs(diffs)
        return float(distances[distances > 0].min())


CONSTELLATIONS: Dict[str, Constellation] = {
    "BPSK": Constellation("BPSK", 1),
    "QPSK": Constellation("QPSK", 2),
    "QAM16": Constellation("QAM16", 4),
    "QAM64": Constellation("QAM64", 6),
}


def modulate(bits: np.ndarray, modulation: str) -> np.ndarray:
    """Map coded bits (MSB-first per symbol) to complex symbols.

    The bit count must be a multiple of the modulation's
    ``bits_per_symbol``.
    """
    const = CONSTELLATIONS[modulation]
    bits = np.asarray(bits, dtype=np.uint8)
    bps = const.bits_per_symbol
    if bits.size % bps != 0:
        raise ValueError(
            f"bit count {bits.size} not a multiple of {bps} for {modulation}")
    groups = bits.reshape(-1, bps)
    weights = 1 << np.arange(bps - 1, -1, -1)
    indices = groups @ weights
    return const.points[indices]


def soft_demap(received: np.ndarray, modulation: str, noise_var: float,
               gains: np.ndarray = None, max_log: bool = False) -> np.ndarray:
    """Compute channel LLRs for each coded bit of each received symbol.

    Args:
        received: complex received symbols ``y = h * x + n``.
        modulation: constellation name.
        noise_var: the receiver's estimate of ``E[|n|^2]``.  SoftRate's
            receiver estimates this from the preamble only, which is
            what makes interference (unmodelled extra noise mid-frame)
            visible as an abrupt change in hint quality.
        gains: per-symbol complex channel gains ``h`` (assumed known to
            the receiver via channel estimation); defaults to 1.
        max_log: use the max-log approximation instead of exact
            marginalisation.

    Returns:
        Float array of length ``len(received) * bits_per_symbol`` with
        ``log P(y|c=1) - log P(y|c=0)`` per coded bit, in symbol order.
    """
    y = np.asarray(received, dtype=np.complex128)
    if gains is None:
        gains_2d = None
    else:
        gains = np.asarray(gains, dtype=np.complex128)
        if gains.size != y.size:
            raise ValueError("one channel gain per received symbol required")
        gains_2d = gains.ravel()[None, :]
    return soft_demap_batch(y.ravel()[None, :], modulation, noise_var,
                            gains=gains_2d, max_log=max_log)[0]


def soft_demap_batch(received: np.ndarray, modulation: str,
                     noise_var, gains: np.ndarray = None,
                     max_log: bool = False) -> np.ndarray:
    """Demap a ``(n_frames, n_symbols)`` stack of received symbols.

    The batched kernel behind :func:`soft_demap`: every frame's symbols
    are demapped together, with an optional per-frame noise variance
    (SoftRate estimates the noise from each frame's own preamble, so
    frames of a batch generally carry different estimates).

    Args:
        received: complex received symbols, shape
            ``(n_frames, n_symbols)``.
        modulation: constellation name.
        noise_var: scalar, or array of ``n_frames`` per-frame noise
            variance estimates.
        gains: per-symbol complex channel gains, shape like
            ``received``; defaults to 1.
        max_log: use the max-log approximation instead of exact
            marginalisation.

    Returns:
        Float array of shape ``(n_frames, n_symbols *
        bits_per_symbol)``, bit-identical to demapping each row alone.
    """
    const = CONSTELLATIONS[modulation]
    y = np.asarray(received, dtype=np.complex128)
    if y.ndim != 2:
        raise ValueError("soft_demap_batch expects a 2-D symbol array")
    n_frames, n_symbols = y.shape
    if gains is None:
        gains = np.ones_like(y)
    else:
        gains = np.asarray(gains, dtype=np.complex128)
        if gains.shape != y.shape:
            raise ValueError("one channel gain per received symbol required")
    nv = np.asarray(noise_var, dtype=np.float64)
    if nv.ndim == 0:
        nv = np.full(n_frames, float(nv))
    elif nv.shape != (n_frames,):
        raise ValueError("noise_var must be scalar or one per frame")
    if np.any(nv <= 0):
        raise ValueError("noise variance must be positive")

    # Squared distances to each candidate point:
    # (n_frames, n_symbols, n_points).
    candidates = gains[:, :, None] * const.points[None, None, :]
    metric = -np.abs(y[:, :, None] - candidates) ** 2 / nv[:, None, None]

    bps = const.bits_per_symbol
    llrs = np.empty((n_frames, n_symbols, bps))
    for i in range(bps):
        ones = const._ones_mask[i]
        if max_log:
            llrs[:, :, i] = (metric[:, :, ones].max(axis=-1)
                             - metric[:, :, ~ones].max(axis=-1))
        else:
            llrs[:, :, i] = (logsumexp(metric[:, :, ones], axis=-1)
                             - logsumexp(metric[:, :, ~ones], axis=-1))
    return llrs.reshape(n_frames, n_symbols * bps)


def hard_demap(received: np.ndarray, modulation: str,
               gains: np.ndarray = None) -> np.ndarray:
    """Minimum-distance hard decisions (no code, no LLRs)."""
    const = CONSTELLATIONS[modulation]
    y = np.asarray(received, dtype=np.complex128)
    if gains is None:
        gains = np.ones(y.size, dtype=np.complex128)
    candidates = gains[:, None] * const.points[None, :]
    nearest = np.argmin(np.abs(y[:, None] - candidates), axis=1)
    return const.bit_table[nearest].ravel()
