"""The 802.11a/g bit rate table and OFDM operating modes.

Reproduces Table 2 (modulation / code rate combinations and their raw
throughput over a 20 MHz channel) and Table 3 (the long range, short
range, and simulation modes of the paper's OFDM prototype).

The paper's prototype implements the six rates from BPSK 1/2 (6 Mbps)
through QAM16 3/4 (36 Mbps); QAM64 rates are listed but unimplemented.
We implement all eight and expose the paper's six-rate subset as the
default adaptation set.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, List, Sequence, Tuple

__all__ = ["Rate", "RateTable", "RATE_TABLE", "OperatingMode", "MODES"]


@dataclass(frozen=True)
class Rate:
    """One modulation / code-rate combination (one row of Table 2).

    Attributes:
        index: position in the rate table, 0 = most robust.
        modulation: constellation name, e.g. ``"QPSK"``.
        bits_per_symbol: coded bits carried per subcarrier use.
        code_rate: convolutional code rate after puncturing.
        mbps: raw 802.11 throughput over a 20 MHz channel.
        in_prototype: whether the paper's prototype implements it.
    """

    index: int
    modulation: str
    bits_per_symbol: int
    code_rate: Fraction
    mbps: float
    in_prototype: bool = True

    @property
    def name(self) -> str:
        """Human-readable label, e.g. ``"QPSK 3/4"``."""
        return f"{self.modulation} {self.code_rate}"

    @property
    def info_bits_per_subcarrier(self) -> float:
        """Information bits carried per subcarrier use."""
        return float(self.bits_per_symbol * self.code_rate)

    def coded_bits_per_ofdm_symbol(self, n_subcarriers: int) -> int:
        """Coded bits per OFDM symbol for a given subcarrier count."""
        return self.bits_per_symbol * n_subcarriers

    def airtime(self, n_info_bits: int, symbol_time: float,
                n_subcarriers: int) -> float:
        """Transmission time in seconds for ``n_info_bits`` payload bits."""
        info_per_symbol = self.info_bits_per_subcarrier * n_subcarriers
        n_symbols = -(-n_info_bits // info_per_symbol)
        return float(n_symbols) * symbol_time


def _build_rates() -> Tuple[Rate, ...]:
    rows = [
        ("BPSK", 1, Fraction(1, 2), 6.0, True),
        ("BPSK", 1, Fraction(3, 4), 9.0, True),
        ("QPSK", 2, Fraction(1, 2), 12.0, True),
        ("QPSK", 2, Fraction(3, 4), 18.0, True),
        ("QAM16", 4, Fraction(1, 2), 24.0, True),
        ("QAM16", 4, Fraction(3, 4), 36.0, True),
        ("QAM64", 6, Fraction(1, 2), 48.0, False),
        ("QAM64", 6, Fraction(2, 3), 54.0, False),
    ]
    return tuple(
        Rate(index=i, modulation=mod, bits_per_symbol=bps, code_rate=cr,
             mbps=mbps, in_prototype=impl)
        for i, (mod, bps, cr, mbps, impl) in enumerate(rows)
    )


class RateTable:
    """An ordered set of available bit rates.

    Rate adaptation protocols index rates by position in this table;
    index 0 is the most robust (lowest) rate.  ``RATE_TABLE`` is the
    full 802.11a/g table; :meth:`prototype_subset` returns the paper's
    six implemented rates.
    """

    def __init__(self, rates: Sequence[Rate]):
        if not rates:
            raise ValueError("rate table cannot be empty")
        mbps = [r.mbps for r in rates]
        if sorted(mbps) != mbps:
            raise ValueError("rates must be ordered by increasing throughput")
        self._rates = tuple(
            Rate(index=i, modulation=r.modulation,
                 bits_per_symbol=r.bits_per_symbol, code_rate=r.code_rate,
                 mbps=r.mbps, in_prototype=r.in_prototype)
            for i, r in enumerate(rates)
        )

    def __len__(self) -> int:
        return len(self._rates)

    def __iter__(self) -> Iterator[Rate]:
        return iter(self._rates)

    def __getitem__(self, index: int) -> Rate:
        return self._rates[index]

    @property
    def lowest(self) -> Rate:
        """The most robust rate (used for feedback frames)."""
        return self._rates[0]

    @property
    def highest(self) -> Rate:
        return self._rates[-1]

    def by_name(self, name: str) -> Rate:
        """Look up a rate by its ``"QPSK 3/4"``-style label."""
        for rate in self._rates:
            if rate.name == name:
                return rate
        raise KeyError(name)

    def prototype_subset(self) -> "RateTable":
        """The six rates implemented by the paper's prototype."""
        return RateTable([r for r in self._rates if r.in_prototype])

    def clamp(self, index: int) -> int:
        """Clamp an index into the valid range of this table."""
        return max(0, min(index, len(self._rates) - 1))

    def names(self) -> List[str]:
        return [r.name for r in self._rates]


RATE_TABLE = RateTable(_build_rates())


@dataclass(frozen=True)
class OperatingMode:
    """One OFDM operating mode (one row of Table 3).

    Attributes:
        name: mode label.
        bandwidth_hz: RF bandwidth sampled.
        n_subcarriers: OFDM subcarriers ("tones").
        symbol_time: OFDM symbol duration in seconds, including the
            cyclic prefix (one-fourth of the subcarrier length).
    """

    name: str
    bandwidth_hz: float
    n_subcarriers: int
    symbol_time: float

    def frame_airtime(self, rate: Rate, n_info_bits: int) -> float:
        """Airtime of a frame at ``rate`` carrying ``n_info_bits``."""
        return rate.airtime(n_info_bits, self.symbol_time,
                            self.n_subcarriers)


MODES = {
    "long_range": OperatingMode("long_range", 500e3, 1024, 2.6e-3),
    "short_range": OperatingMode("short_range", 4e6, 512, 160e-6),
    "simulation": OperatingMode("simulation", 20e6, 128, 8e-6),
}
