"""Link-layer frame format.

SoftRate's protocol (paper section 3) requires the receiver to identify
the sender and the transmit rate of a frame *even when the body has bit
errors*, so that BER feedback can be returned for erroneous frames.
The frame format therefore protects the link-layer header with its own
CRC-16, separate from the CRC-32 over the body:

    | dest (8) | src (8) | seq (12) | rate (4) | length (12) |
    | flags (4) | crc16 (16) |                       = 64 bits

The body is the scrambled payload followed by a CRC-32.  The header is
always transmitted at the lowest (most robust) bit rate; the body at
the rate named in the header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.phy import bits as bitutil

__all__ = ["LinkHeader", "HEADER_BITS", "FLAG_HAS_POSTAMBLE", "FLAG_FEEDBACK"]

HEADER_BITS = 64

#: Header flag: the frame carries a postamble training symbol.
FLAG_HAS_POSTAMBLE = 0b0001
#: Header flag: the frame is a link-layer feedback (ACK) frame.
FLAG_FEEDBACK = 0b0010

_DEST_BITS = 8
_SRC_BITS = 8
_SEQ_BITS = 12
_RATE_BITS = 4
_LEN_BITS = 12
_FLAG_BITS = 4


@dataclass(frozen=True)
class LinkHeader:
    """The link-layer frame header.

    Attributes:
        dest: destination node id (0-255).
        src: source node id (0-255).
        seq: sequence number modulo 4096.
        rate_index: index into the rate table used for the frame body.
        length_bytes: payload length in bytes (without the body CRC).
        flags: bitwise OR of the ``FLAG_*`` constants.
    """

    dest: int
    src: int
    seq: int
    rate_index: int
    length_bytes: int
    flags: int = 0

    def __post_init__(self):
        for value, width, name in [
            (self.dest, _DEST_BITS, "dest"),
            (self.src, _SRC_BITS, "src"),
            (self.seq, _SEQ_BITS, "seq"),
            (self.rate_index, _RATE_BITS, "rate_index"),
            (self.length_bytes, _LEN_BITS, "length_bytes"),
            (self.flags, _FLAG_BITS, "flags"),
        ]:
            if not 0 <= value < (1 << width):
                raise ValueError(f"{name}={value} does not fit in "
                                 f"{width} bits")

    def to_bits(self) -> np.ndarray:
        """Serialise to ``HEADER_BITS`` bits including the CRC-16."""
        fields = np.concatenate([
            bitutil.int_to_bits(self.dest, _DEST_BITS),
            bitutil.int_to_bits(self.src, _SRC_BITS),
            bitutil.int_to_bits(self.seq, _SEQ_BITS),
            bitutil.int_to_bits(self.rate_index, _RATE_BITS),
            bitutil.int_to_bits(self.length_bytes, _LEN_BITS),
            bitutil.int_to_bits(self.flags, _FLAG_BITS),
        ])
        crc = bitutil.int_to_bits(bitutil.crc16(fields), 16)
        return np.concatenate([fields, crc])

    @classmethod
    def from_bits(cls, header_bits: np.ndarray
                  ) -> Tuple[Optional["LinkHeader"], bool]:
        """Parse header bits; returns ``(header, crc_ok)``.

        On CRC failure the header is still parsed (fields may be
        garbage) so callers can log it, but ``crc_ok`` is False and the
        header must not be trusted.
        """
        header_bits = np.asarray(header_bits, dtype=np.uint8)
        if header_bits.size != HEADER_BITS:
            raise ValueError(f"expected {HEADER_BITS} header bits, "
                             f"got {header_bits.size}")
        fields = header_bits[:-16]
        crc_ok = (bitutil.crc16(fields)
                  == bitutil.bits_to_int(header_bits[-16:]))
        cursor = 0

        def take(width: int) -> int:
            nonlocal cursor
            value = bitutil.bits_to_int(fields[cursor:cursor + width])
            cursor += width
            return value

        try:
            header = cls(dest=take(_DEST_BITS), src=take(_SRC_BITS),
                         seq=take(_SEQ_BITS), rate_index=take(_RATE_BITS),
                         length_bytes=take(_LEN_BITS), flags=take(_FLAG_BITS))
        except ValueError:
            return None, False
        return header, crc_ok

    @property
    def has_postamble(self) -> bool:
        return bool(self.flags & FLAG_HAS_POSTAMBLE)

    @property
    def is_feedback(self) -> bool:
        return bool(self.flags & FLAG_FEEDBACK)
