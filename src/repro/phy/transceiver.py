"""The end-to-end PHY pipeline: transmit and receive whole frames.

This is the Python equivalent of the paper's GNU Radio 802.11a/g-like
prototype (section 4).  Transmit side::

    payload -> +CRC-32 -> scramble -> conv. encode -> puncture
            -> pad -> interleave -> modulate -> OFDM symbols

Receive side::

    OFDM symbols -> soft demap (per-symbol CSI, preamble noise est.)
                 -> deinterleave -> unpad -> depuncture
                 -> BCJR (soft outputs)  ->  posterior LLRs
                 -> slice -> descramble -> CRC check

The receiver's posterior LLRs are exactly the SoftPHY hints consumed by
:mod:`repro.core`.  The receiver estimates the noise variance from the
preamble only — deliberately, because that is what makes mid-frame
interference observable as a hint anomaly, and what makes the SNR
estimate blind to mid-frame fades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.phy import bits as bitutil
from repro.phy.bcjr import bcjr_decode
from repro.phy.convcode import ConvolutionalCode, depuncture, puncture
from repro.phy.frame import HEADER_BITS, LinkHeader
from repro.phy.interleaver import deinterleave, interleave
from repro.phy.modulation import CONSTELLATIONS, modulate, soft_demap
from repro.phy.ofdm import FrameLayout, build_layout, training_symbols
from repro.phy.rates import MODES, RATE_TABLE, OperatingMode, RateTable
from repro.phy.snr import estimate_preamble_snr
from repro.phy.viterbi import viterbi_decode

__all__ = ["Transceiver", "TxFrame", "RxResult"]

_SCRAMBLE_SEED = 0x5D


@dataclass
class TxFrame:
    """A transmitted frame: symbols plus everything needed to score it.

    Attributes:
        header: the link-layer header.
        payload_bits: original payload bits (pre-scrambling).
        body_info_bits: the bits the body encoder actually saw
            (scrambled payload + CRC-32); ground truth for BER.
        symbols: complex OFDM symbols, shape ``(n_symbols, n_subcarriers)``.
        layout: the frame geometry.
    """

    header: LinkHeader
    payload_bits: np.ndarray
    body_info_bits: np.ndarray
    symbols: np.ndarray
    layout: FrameLayout


@dataclass
class RxResult:
    """Everything the receiver learned about one frame.

    Attributes:
        header: decoded link header (``None`` if undecodable).
        header_ok: header CRC-16 verified.
        payload_bits: descrambled hard-decision payload (no CRC).
        body_bits: descrambled hard-decision payload *including* the
            CRC-32 field (what partial-packet recovery splices).
        crc_ok: body CRC-32 verified.
        llrs: BCJR posterior LLR per body information bit
            (payload + CRC-32); ``|llrs|`` are the SoftPHY hints.
        info_symbol: map from body info bit to body OFDM symbol index
            (for Eq. 4 per-symbol BER profiles).
        n_body_symbols: number of body OFDM symbols.
        snr_db: preamble-based SNR estimate (Schmidl-Cox analogue).
        noise_var_est: preamble-based noise variance estimate.
        error_mask: ground-truth per-bit errors over body info bits
            (only when the receiver was given the transmitted frame).
        true_ber: ground-truth BER over body info bits, or ``None``.
    """

    header: Optional[LinkHeader]
    header_ok: bool
    payload_bits: np.ndarray
    body_bits: np.ndarray
    crc_ok: bool
    llrs: np.ndarray
    info_symbol: np.ndarray
    n_body_symbols: int
    snr_db: float
    noise_var_est: float
    error_mask: Optional[np.ndarray] = None
    true_ber: Optional[float] = None
    _hints: Optional[np.ndarray] = field(default=None, init=False,
                                         repr=False, compare=False)

    @property
    def hints(self) -> np.ndarray:
        """SoftPHY hints: per-bit LLR magnitudes (paper section 3.1).

        The array is computed once and returned **read-only**: several
        consumers (rate adapters, the interference detector, partial-
        packet recovery) share one ``RxResult``, so an in-place write
        by one would silently corrupt the hints every other consumer
        sees.  Callers that need a scratch buffer must ``.copy()``.
        """
        if self._hints is None:
            hints = np.abs(self.llrs)
            hints.setflags(write=False)
            self._hints = hints
        return self._hints


class Transceiver:
    """A matched 802.11a/g-like OFDM transmitter/receiver pair.

    Args:
        mode: operating mode name from :data:`repro.phy.rates.MODES`
            (``"simulation"`` by default) or an
            :class:`~repro.phy.rates.OperatingMode`.
        rates: the rate table for frame bodies; defaults to the paper's
            six-rate prototype subset.
        code: the convolutional code (802.11's K=7 by default).
        n_preamble_symbols: training symbols prepended to every frame.
        use_postamble: append a postamble training symbol (paper
            section 3.2).
        decoder_variant: ``"log-map"`` or ``"max-log-map"`` BCJR.
        scramble: whiten the body with the 802.11 scrambler.
    """

    def __init__(self, mode="simulation", rates: Optional[RateTable] = None,
                 code: Optional[ConvolutionalCode] = None,
                 n_preamble_symbols: int = 2, use_postamble: bool = True,
                 decoder_variant: str = "log-map", scramble: bool = True,
                 use_interleaver: bool = True):
        if isinstance(mode, OperatingMode):
            self.mode = mode
        else:
            self.mode = MODES[mode]
        self.rates = rates if rates is not None \
            else RATE_TABLE.prototype_subset()
        self.code = code if code is not None else ConvolutionalCode()
        self.n_preamble_symbols = n_preamble_symbols
        self.use_postamble = use_postamble
        self.decoder_variant = decoder_variant
        self.scramble = scramble
        # Disabling the frequency interleaver exposes the PHY to
        # frequency-selective burst errors; kept as a switch for the
        # interleaver ablation (paper section 4's motivation).
        self.use_interleaver = use_interleaver

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------

    def frame_layout(self, n_payload_bits: int, rate_index: int,
                     has_postamble: Optional[bool] = None) -> FrameLayout:
        """Compute the OFDM geometry of a frame before building it."""
        rate = self.rates[rate_index]
        base = self.rates.lowest
        if has_postamble is None:
            has_postamble = self.use_postamble
        return build_layout(
            n_payload_bits=n_payload_bits, rate_index=rate_index,
            body_modulation=rate.modulation,
            body_bits_per_symbol=rate.bits_per_symbol,
            body_code_rate=rate.code_rate,
            header_modulation=base.modulation,
            header_bits_per_symbol=base.bits_per_symbol,
            header_code_rate=base.code_rate,
            n_subcarriers=self.mode.n_subcarriers, code=self.code,
            n_preamble_symbols=self.n_preamble_symbols,
            has_postamble=has_postamble, n_header_bits=HEADER_BITS)

    def frame_airtime(self, n_payload_bits: int, rate_index: int) -> float:
        """Frame duration in seconds including preamble and postamble."""
        layout = self.frame_layout(n_payload_bits, rate_index)
        return layout.airtime(self.mode.symbol_time)

    def _encode_block(self, info_bits: np.ndarray, code_rate,
                      bits_per_symbol: int, pad: int) -> np.ndarray:
        """Encode, puncture, pad, and interleave one coded region."""
        coded = self.code.encode(info_bits)
        punctured = puncture(coded, code_rate)
        padded = np.concatenate(
            [punctured, np.zeros(pad, dtype=np.uint8)])
        if not self.use_interleaver:
            return padded
        block = bits_per_symbol * self.mode.n_subcarriers
        return interleave(padded, block, bits_per_symbol)

    def transmit(self, payload_bits: np.ndarray, rate_index: int,
                 dest: int = 1, src: int = 0, seq: int = 0,
                 flags: int = 0) -> TxFrame:
        """Build the OFDM symbols for one frame.

        Args:
            payload_bits: byte-aligned payload bit array.
            rate_index: index into this transceiver's rate table for
                the frame body.
            dest, src, seq, flags: link-header fields.

        Returns:
            A :class:`TxFrame`; feed its ``symbols`` through a channel
            and the result into :meth:`receive`.
        """
        payload_bits = np.asarray(payload_bits, dtype=np.uint8)
        layout = self.frame_layout(payload_bits.size, rate_index)
        from repro.phy.frame import FLAG_HAS_POSTAMBLE
        if layout.has_postamble:
            flags |= FLAG_HAS_POSTAMBLE
        header = LinkHeader(dest=dest, src=src, seq=seq,
                            rate_index=rate_index,
                            length_bytes=payload_bits.size // 8,
                            flags=flags)

        body_info = bitutil.append_crc32(payload_bits)
        if self.scramble:
            body_info = bitutil.scramble(body_info, _SCRAMBLE_SEED)

        rate = self.rates[rate_index]
        base = self.rates.lowest
        header_stream = self._encode_block(
            header.to_bits(), base.code_rate, base.bits_per_symbol,
            layout.header_pad_bits)
        body_stream = self._encode_block(
            body_info, rate.code_rate, rate.bits_per_symbol,
            layout.body_pad_bits)

        n = self.mode.n_subcarriers
        parts = [training_symbols(layout.n_preamble_symbols, n)]
        parts.append(modulate(header_stream,
                              base.modulation).reshape(-1, n))
        parts.append(modulate(body_stream, rate.modulation).reshape(-1, n))
        if layout.has_postamble:
            parts.append(training_symbols(layout.n_preamble_symbols + 1,
                                          n)[-1:])
        symbols = np.concatenate(parts, axis=0)
        if symbols.shape[0] != layout.n_symbols:
            raise AssertionError("layout/symbol count mismatch")
        return TxFrame(header=header, payload_bits=payload_bits,
                       body_info_bits=body_info, symbols=symbols,
                       layout=layout)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def _decode_block(self, rx, gains, noise_var, modulation,
                      bits_per_symbol, code_rate, n_mother_bits, pad,
                      soft: bool):
        """Demap and decode one coded region; returns LLRs or bits."""
        if gains.ndim == 2:
            per_sample_gains = gains.ravel()
        else:
            per_sample_gains = np.repeat(gains, self.mode.n_subcarriers)
        channel_llrs = soft_demap(rx.ravel(), modulation, noise_var,
                                  gains=per_sample_gains)
        if self.use_interleaver:
            block = bits_per_symbol * self.mode.n_subcarriers
            channel_llrs = deinterleave(channel_llrs, block,
                                        bits_per_symbol)
        if pad:
            channel_llrs = channel_llrs[:-pad]
        mother_llrs = depuncture(channel_llrs, n_mother_bits, code_rate)
        if soft:
            return bcjr_decode(self.code, mother_llrs,
                               variant=self.decoder_variant)
        return viterbi_decode(self.code, mother_llrs)

    def receive(self, rx_symbols: np.ndarray, gains: np.ndarray,
                layout: FrameLayout,
                tx_frame: Optional[TxFrame] = None) -> RxResult:
        """Decode a received frame.

        Args:
            rx_symbols: received OFDM symbols,
                shape ``(layout.n_symbols, n_subcarriers)``.
            gains: the receiver's channel estimate (assumed perfect
                CSI from pilots, as in the paper's prototype): one
                complex gain per OFDM symbol, or a per-(symbol,
                subcarrier) array for frequency-selective channels.
            layout: the frame geometry (in a real system recovered from
                the PLCP; here supplied by the simulation harness).
            tx_frame: if given, ground-truth error statistics are
                computed against it.

        Returns:
            An :class:`RxResult`.
        """
        rx_symbols = np.asarray(rx_symbols, dtype=np.complex128)
        gains = np.asarray(gains, dtype=np.complex128)
        if rx_symbols.shape != (layout.n_symbols, layout.n_subcarriers):
            raise ValueError("received symbol array does not match layout")
        if gains.ndim == 1:
            if gains.size != layout.n_symbols:
                raise ValueError(
                    "one channel gain per OFDM symbol required")
        elif gains.shape != rx_symbols.shape:
            raise ValueError(
                "2-D gains must match the received symbol array")

        training = training_symbols(layout.n_preamble_symbols,
                                    layout.n_subcarriers)
        snr_db, _gain_est = estimate_preamble_snr(
            rx_symbols[layout.preamble], training)
        # Preamble-residual noise power; floor it to keep LLRs finite.
        ref = training.ravel()
        rx_pre = rx_symbols[layout.preamble].ravel()
        if gains.ndim == 2:
            pre_gains = gains[layout.preamble].ravel()
        else:
            pre_gains = np.repeat(gains[layout.preamble],
                                  layout.n_subcarriers)
        noise_var = float(np.mean(np.abs(rx_pre - pre_gains * ref) ** 2))
        noise_var = max(noise_var, 1e-9)

        header_bits = self._decode_block(
            rx_symbols[layout.header], gains[layout.header], noise_var,
            layout.header_modulation,
            CONSTELLATIONS[layout.header_modulation].bits_per_symbol,
            layout.header_code_rate, layout.n_header_mother_bits,
            layout.header_pad_bits, soft=False)
        header, header_ok = LinkHeader.from_bits(header_bits)

        rate = self.rates[layout.body_rate_index]
        body = self._decode_block(
            rx_symbols[layout.body], gains[layout.body], noise_var,
            layout.body_modulation, rate.bits_per_symbol,
            layout.body_code_rate, layout.n_body_mother_bits,
            layout.body_pad_bits, soft=True)

        decoded = body.bits
        if self.scramble:
            decoded = bitutil.descramble(decoded, _SCRAMBLE_SEED)
        crc_ok = bitutil.check_crc32(decoded)
        payload = decoded[:-32]

        error_mask = None
        true_ber = None
        if tx_frame is not None:
            error_mask = body.bits != tx_frame.body_info_bits
            true_ber = float(np.mean(error_mask))

        return RxResult(header=header if header_ok else header,
                        header_ok=header_ok, payload_bits=payload,
                        body_bits=decoded,
                        crc_ok=crc_ok, llrs=body.llrs,
                        info_symbol=layout.info_symbol,
                        n_body_symbols=layout.n_body_symbols,
                        snr_db=snr_db, noise_var_est=noise_var,
                        error_mask=error_mask, true_ber=true_ber)

    # ------------------------------------------------------------------
    # Batched fast path (see repro.phy.batch)
    # ------------------------------------------------------------------

    def transmit_batch(self, payloads: np.ndarray, rate_index: int,
                       dest: int = 1, src: int = 0, seqs=None,
                       flags: int = 0):
        """Build a :class:`~repro.phy.batch.TxBatch` of equal-length
        frames; bit-identical to calling :meth:`transmit` per frame."""
        from repro.phy.batch import batch_transmit
        return batch_transmit(self, payloads, rate_index, dest=dest,
                              src=src, seqs=seqs, flags=flags)

    def receive_batch(self, rx_symbols: np.ndarray, gains: np.ndarray,
                      layout: FrameLayout, tx=None) -> list:
        """Decode a ``(n_frames, n_symbols, n_subcarriers)`` stack.

        Returns one :class:`RxResult` per frame, bit-identical to
        calling :meth:`receive` per frame; ``tx`` may be a
        :class:`~repro.phy.batch.TxBatch` or a single :class:`TxFrame`
        used as ground truth for every entry.
        """
        from repro.phy.batch import batch_receive
        return batch_receive(self, rx_symbols, gains, layout, tx=tx)

    def run_batch(self, tx, gains: np.ndarray, noise_var, rng,
                  with_truth: bool = True) -> list:
        """Push a stack of frames through a channel and batch-decode.

        The Monte Carlo workhorse: one transmitted frame (or a
        :class:`~repro.phy.batch.TxBatch`), ``n_frames`` independent
        channel realisations, one batched decode.  AWGN is drawn
        frame-by-frame in batch order, so for the same ``rng`` state
        the results are **bit-identical** to a sequential
        transmit/``apply_channel``/:meth:`receive` loop — batching is
        purely a throughput knob.

        Args:
            tx: a :class:`TxFrame` (same frame for every entry) or a
                :class:`~repro.phy.batch.TxBatch`.
            gains: per-frame channel gains, ``(n_frames, n_symbols)``
                or ``(n_frames, n_symbols, n_subcarriers)``.
            noise_var: scalar or per-frame AWGN variance.
            rng: random source for the noise draws.
            with_truth: attach ground-truth error statistics.

        Returns:
            One :class:`RxResult` per frame.
        """
        from repro.channel.awgn import apply_channel
        gains = np.asarray(gains, dtype=np.complex128)
        if gains.ndim not in (2, 3):
            raise ValueError(
                "run_batch gains must be (n_frames, n_symbols[, "
                "n_subcarriers])")
        n_frames = gains.shape[0]
        symbols = np.asarray(tx.symbols)
        batched_tx = symbols.ndim == 3
        if batched_tx and symbols.shape[0] != n_frames:
            raise ValueError(
                f"TxBatch has {symbols.shape[0]} frames but gains "
                f"cover {n_frames}")
        nv = np.broadcast_to(np.asarray(noise_var, dtype=np.float64),
                             (n_frames,))
        frame_shape = symbols.shape[1:] if batched_tx else symbols.shape
        rx = np.empty((n_frames,) + frame_shape, dtype=np.complex128)
        for i in range(n_frames):
            tx_i = symbols[i] if batched_tx else symbols
            rx[i], _ = apply_channel(tx_i, gains[i], float(nv[i]), rng)
        return self.receive_batch(rx, gains, tx.layout,
                                  tx=tx if with_truth else None)
