"""Pluggable PHY backends: one contract, two ways to compute it.

Everything above the PHY consumes the same three facts about a frame —
was it delivered, what BER did the channel impose, and what SoftPHY
feedback (hints, BER estimate, SNR estimate) did the receiver extract.
This module decouples *what the PHY reports* from *how it is
computed*, the surrogate-model technique large-scale link simulators
use:

* :class:`FullPhyBackend` — the bit-exact path: every frame is OFDM-
  modulated, pushed through the channel, and BCJR-decoded by
  :class:`repro.phy.transceiver.Transceiver`.  Slow (tens to hundreds
  of milliseconds per frame) but ground truth.
* :class:`SurrogatePhyBackend` — a calibrated table-driven model
  mapping ``(rate, per-symbol SNR trajectory, interference mask)`` to
  a frame outcome plus synthetic SoftPHY hints.  Its tables are
  *measured from the full PHY* by :func:`repro.phy.calibrate.calibrate`
  (CLI: ``repro calibrate``), not derived analytically, so its BER
  waterfalls, estimator noise, and SNR-estimate error reproduce the
  full pipeline within the tolerances asserted by
  ``tests/validation/test_surrogate_fidelity.py``.  Three to four
  orders of magnitude faster — the backend for million-frame sweeps.

Both implement the :class:`PhyBackend` contract, selected everywhere
by name::

    from repro.phy.backend import get_backend

    backend = get_backend("surrogate")
    out = backend.frame_outcome(rate_index=3,
                                snr_db_per_symbol=np.full(16, 12.0),
                                n_payload_bits=1600,
                                rng=np.random.default_rng(1))
    out.delivered, out.ber_true, out.ber_est   # frame facts
    out.hints                                  # per-bit |LLR| array

The trace-driven simulator reaches the same contract through
:meth:`PhyBackend.observe`, which samples a link trace's true-SNR
trajectory over a frame's airtime and wraps the outcome as a
:class:`repro.traces.format.FrameObservation`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.phy.rates import MODES, RATE_TABLE, OperatingMode, RateTable
from repro.phy.snr import db_to_linear

__all__ = ["PhyFrameOutcome", "PhyBackend", "FullPhyBackend",
           "SurrogatePhyBackend", "get_backend",
           "validate_backend_name", "UnknownBackendError",
           "BACKEND_NAMES", "DETECTION_SNR_DB"]

#: Preamble SNR (dB) below which the receiver cannot detect the frame
#: at all (silent loss).  BPSK-coded preamble correlation works a
#: couple of dB below the lowest data rate's threshold.
DETECTION_SNR_DB = -2.0

#: Names accepted by :func:`get_backend`.
BACKEND_NAMES = ("full", "surrogate")

#: Trace-sample points taken across a frame's airtime by
#: :meth:`PhyBackend.observe` (5 ms slots vs ~1 ms frames: a handful
#: of samples already captures every slot boundary a frame can cross).
_OBSERVE_SNR_SAMPLES = 8


class UnknownBackendError(ValueError):
    """A PHY backend was requested by a name nobody registered.

    Raised by :func:`get_backend`; the message lists the valid names so
    CLI users see their options immediately.
    """


@dataclass(frozen=True)
class PhyFrameOutcome:
    """Everything a PHY backend reports about one simulated frame.

    This is the backend-agnostic contract: the full PHY measures these
    fields from an actual decode, the surrogate synthesizes them from
    calibrated tables — consumers cannot (and must not) tell which.

    Attributes:
        detected: the receiver found the preamble; when False the
            frame is a *silent* loss (no feedback of any kind).
        delivered: every information bit decoded correctly (body
            CRC-32 would pass).
        ber_true: realized ground-truth BER over the frame's
            information bits (``n_bit_errors / n_info_bits``).
        ber_est: the BER estimate the SoftPHY receiver would feed
            back, i.e. :func:`repro.core.hints.frame_ber_estimate`
            over the hints.
        snr_db: the (noisy) preamble SNR estimate the receiver would
            report.
        n_bit_errors: number of wrong information bits.
        n_info_bits: information bits in the frame — the byte-aligned
            payload plus CRC-32 (:meth:`PhyBackend.aligned_payload_bits`).
        hints: per-bit SoftPHY hints (posterior-LLR magnitudes), or
            ``None`` when the caller asked to skip their synthesis
            (``need_hints=False``).
        error_mask: boolean array over the information bits marking
            the positions the channel flipped, or ``None`` unless the
            caller asked for it (``need_error_mask=True``).  Chunk
            consumers (PPR-style salvage, the rateless video decoder)
            use it to reconstruct what each chunk of a failed frame
            actually carried.
    """

    detected: bool
    delivered: bool
    ber_true: float
    ber_est: float
    snr_db: float
    n_bit_errors: int
    n_info_bits: int
    hints: Optional[np.ndarray] = None
    error_mask: Optional[np.ndarray] = None


class PhyBackend(abc.ABC):
    """Contract every PHY backend implements.

    A backend maps ``(rate, per-symbol SNR trajectory, interference
    mask)`` to a :class:`PhyFrameOutcome`.  The trajectory is sampled
    at any resolution the caller has (one value per OFDM symbol, per
    trace slot, or a single scalar for AWGN); backends spread the
    frame's bits evenly across the samples.

    Example::

        backend = get_backend("full")
        out = backend.frame_outcome(3, np.full(8, 10.0), 1600,
                                    np.random.default_rng(0))
        assert out.n_info_bits == 1600 + 32
    """

    #: Registry name (``"full"`` / ``"surrogate"``).
    name = "abstract"

    def __init__(self, rates: Optional[RateTable] = None,
                 mode: Union[str, OperatingMode] = "simulation"):
        """Bind the backend to a rate table and OFDM operating mode.

        Args:
            rates: available bit rates (the paper's six-rate prototype
                subset by default).
            mode: OFDM operating mode name or instance; sets symbol
                time and subcarrier count for airtime computations.
        """
        self.rates = rates if rates is not None \
            else RATE_TABLE.prototype_subset()
        self.mode = mode if isinstance(mode, OperatingMode) \
            else MODES[mode]
        #: Transceiver used for frame-geometry arithmetic only
        #: (lazily built; FullPhyBackend reuses its decode pipeline).
        self._layout_phy = None
        self._airtime_cache = {}
        #: trace objects already validated by :meth:`observe` (by id).
        self._validated_traces: set = set()
        #: per-airtime sample-offset arrays for :meth:`observe`.
        self._offsets_cache: dict = {}

    @abc.abstractmethod
    def frame_outcome(self, rate_index: int,
                      snr_db_per_symbol: np.ndarray,
                      n_payload_bits: int, rng: np.random.Generator,
                      interference_mask: Optional[np.ndarray] = None,
                      need_hints: bool = True,
                      need_error_mask: bool = False) -> PhyFrameOutcome:
        """Simulate one frame against a per-symbol SNR trajectory.

        Args:
            rate_index: index into this backend's rate table.
            snr_db_per_symbol: channel SNR trajectory in dB across the
                frame's airtime, at any sampling resolution (a scalar
                array of length 1 means a flat channel).
            n_payload_bits: payload size, rounded up to a whole number
                of bytes as the MAC does; the frame carries the
                aligned size plus 32 CRC bits of information
                (:meth:`aligned_payload_bits`).
            rng: random source (noise realisations / outcome draws).
            interference_mask: optional boolean array aligned with the
                trajectory; ``True`` samples see an equal-power
                interferer on top of the channel (a collision
                overlapping that part of the frame).
            need_hints: set False to skip synthesizing/collecting the
                per-bit hints array when only the scalar outcome is
                needed (a throughput win for the surrogate).
            need_error_mask: set True to also report the per-bit error
                positions (``PhyFrameOutcome.error_mask``).  Off by
                default — the surrogate draws error positions *after*
                every pre-existing draw, so leaving this off keeps its
                random stream (and every golden that depends on it)
                bit-identical to before the field existed.

        Returns:
            A :class:`PhyFrameOutcome`.
        """

    @staticmethod
    def aligned_payload_bits(n_payload_bits: int) -> int:
        """Payload size rounded up to whole bytes (min one byte).

        Link-layer payloads are byte-aligned; both backends apply the
        same rounding so their ``n_info_bits`` agree for any input.
        """
        return max(-(-int(n_payload_bits) // 8) * 8, 8)

    def _geometry(self):
        """Transceiver for frame-layout arithmetic (no decoding)."""
        if self._layout_phy is None:
            from repro.phy.transceiver import Transceiver
            self._layout_phy = Transceiver(mode=self.mode,
                                           rates=self.rates)
        return self._layout_phy

    def frame_airtime(self, n_payload_bits: int, rate_index: int) -> float:
        """Frame duration in seconds, full geometry — preamble,
        base-rate header, body, postamble — matching the airtime the
        MAC schedules (:func:`repro.sim.topology.make_airtime_fn`).

        Used by :meth:`observe` to know how much of the trace's SNR
        trajectory one frame spans; a body-only window would hide
        tail fades of frames crossing a slot boundary.
        """
        key = (self.aligned_payload_bits(n_payload_bits),
               int(rate_index))
        if key not in self._airtime_cache:
            self._airtime_cache[key] = self._geometry().frame_airtime(
                key[0], key[1])
        return self._airtime_cache[key]

    def observe(self, trace, time: float, rate_index: int,
                n_payload_bits: int, rng: np.random.Generator):
        """Recompute a trace-driven frame fate through this backend.

        Samples the trace's *true* SNR trajectory (falling back to the
        recorded estimate for traces that predate the field) across
        the frame's airtime, runs :meth:`frame_outcome`, and wraps the
        result as a :class:`repro.traces.format.FrameObservation` —
        the exact record :meth:`repro.traces.format.LinkTrace.observe`
        would have produced from precomputed columns.

        Args:
            trace: the :class:`~repro.traces.format.LinkTrace`
                modelling the link.
            time: transmission start time in seconds.
            rate_index: transmit rate.
            n_payload_bits: link-layer payload size in bits.
            rng: random source for the outcome draws.

        Returns:
            A :class:`~repro.traces.format.FrameObservation`.
        """
        from repro.traces.format import FrameObservation

        # A contention run observes thousands of frames against a
        # handful of traces: validate each trace object once.
        if id(trace) not in self._validated_traces:
            if trace.n_rates != len(self.rates):
                raise ValueError(
                    f"trace has {trace.n_rates} rates but the backend's "
                    f"rate table has {len(self.rates)}; construct the "
                    "backend with the simulation's rate table "
                    "(get_backend(name, rates=...))")
            names = list(getattr(trace, "rate_names", None) or [])
            placeholders = [f"rate{i}" for i in range(trace.n_rates)]
            if names and names != placeholders \
                    and names != self.rates.names():
                raise ValueError(
                    f"trace rates {names} do not match the backend's "
                    f"{self.rates.names()}; construct the backend with "
                    "the simulation's rate table "
                    "(get_backend(name, rates=...))")
            self._validated_traces.add(id(trace))
        airtime = self.frame_airtime(n_payload_bits, rate_index)
        offsets = self._offsets_cache.get(airtime)
        if offsets is None:
            offsets = np.linspace(0.0, airtime, _OBSERVE_SNR_SAMPLES)
            self._offsets_cache[airtime] = offsets
        times = time + offsets
        # Vectorized trace.slot_at (truncation matches int() for the
        # non-negative times the MAC produces).
        slots = (times / trace.slot_duration).astype(np.int64) \
            % trace.n_slots
        source = trace.true_snr_db if trace.true_snr_db is not None \
            else trace.snr_db
        trajectory = np.asarray(source, dtype=np.float64)[slots]
        out = self.frame_outcome(rate_index, trajectory, n_payload_bits,
                                 rng, need_hints=False)
        return FrameObservation(
            detected=out.detected,
            delivered=out.detected and out.delivered,
            ber_true=out.ber_true, ber_est=out.ber_est,
            snr_db=out.snr_db, slot=int(slots[0]))


class FullPhyBackend(PhyBackend):
    """The bit-exact backend: every frame really goes through the PHY.

    Each :meth:`frame_outcome` call modulates a cached frame, applies
    per-symbol channel gains (and an equal-power interferer over any
    masked symbols), adds unit-variance AWGN, and runs the full soft
    (BCJR) receive pipeline.  Ground truth for everything the
    surrogate is calibrated against.

    Example::

        backend = FullPhyBackend()
        out = backend.frame_outcome(0, np.array([20.0]), 256,
                                    np.random.default_rng(0))
        assert out.delivered and out.n_bit_errors == 0

    Args:
        transceiver: the PHY pipeline to use (a default
            :class:`~repro.phy.transceiver.Transceiver` if omitted).
        payload_seed: seed of the deterministic per-(size, rate)
            payload cache, so outcomes are reproducible across runs.
    """

    name = "full"

    def __init__(self, transceiver=None, payload_seed: int = 2009):
        from repro.phy.transceiver import Transceiver

        self.phy = transceiver if transceiver is not None \
            else Transceiver()
        super().__init__(rates=self.phy.rates, mode=self.phy.mode)
        self._layout_phy = self.phy
        self._payload_seed = payload_seed
        self._tx_cache = {}

    def _tx_frame(self, n_payload_bits: int, rate_index: int):
        """A cached transmitted frame for this (size, rate) pair."""
        padded = self.aligned_payload_bits(n_payload_bits)
        key = (padded, int(rate_index))
        if key not in self._tx_cache:
            rng = np.random.default_rng(
                (self._payload_seed, padded, rate_index))
            payload = rng.integers(0, 2, padded).astype(np.uint8)
            self._tx_cache[key] = self.phy.transmit(
                payload, rate_index=rate_index)
        return self._tx_cache[key]

    def frame_outcome(self, rate_index: int,
                      snr_db_per_symbol: np.ndarray,
                      n_payload_bits: int, rng: np.random.Generator,
                      interference_mask: Optional[np.ndarray] = None,
                      need_hints: bool = True,
                      need_error_mask: bool = False) -> PhyFrameOutcome:
        """Transmit, propagate, and BCJR-decode one real frame.

        See :meth:`PhyBackend.frame_outcome` for the argument
        contract.  The trajectory is linearly interpolated onto the
        frame's OFDM symbols; masked samples receive an additional
        complex-Gaussian interferer at the local signal power.
        """
        from repro.channel.awgn import apply_channel
        from repro.core.hints import frame_ber_estimate

        tx = self._tx_frame(n_payload_bits, rate_index)
        n_symbols = tx.layout.n_symbols
        trajectory = np.atleast_1d(
            np.asarray(snr_db_per_symbol, dtype=np.float64))
        position = np.linspace(0.0, 1.0, n_symbols)
        sample_pos = np.linspace(0.0, 1.0, trajectory.size)
        snr_syms = np.interp(position, sample_pos, trajectory)
        gains = np.sqrt(db_to_linear(snr_syms)).astype(np.complex128)

        interference = None
        if interference_mask is not None:
            mask = np.interp(position, sample_pos,
                             np.asarray(interference_mask,
                                        dtype=np.float64)) >= 0.5
            if mask.any():
                power = np.where(mask, np.abs(gains) ** 2, 0.0)
                scale = np.sqrt(power / 2.0)[:, None]
                shape = (n_symbols, tx.layout.n_subcarriers)
                interference = scale * (
                    rng.normal(size=shape) + 1j * rng.normal(size=shape))

        rx_symbols, gains = apply_channel(tx.symbols, gains, 1.0, rng,
                                          interference=interference)
        rx = self.phy.receive(rx_symbols, gains, tx.layout, tx_frame=tx)
        detected = bool(rx.snr_db >= DETECTION_SNR_DB)
        n_info = int(tx.body_info_bits.size)
        return PhyFrameOutcome(
            detected=detected,
            delivered=detected and bool(rx.crc_ok),
            ber_true=float(rx.true_ber),
            ber_est=float(frame_ber_estimate(rx.hints)),
            snr_db=float(rx.snr_db),
            n_bit_errors=int(rx.error_mask.sum()),
            n_info_bits=n_info,
            hints=rx.hints if need_hints else None,
            error_mask=rx.error_mask.astype(bool)
            if need_error_mask else None)


class SurrogatePhyBackend(PhyBackend):
    """Calibrated table-driven stand-in for the full PHY.

    Works entirely from a
    :class:`~repro.phy.calibrate.CalibrationTable` measured on the
    full pipeline: per-rate BER waterfalls, a per-bit delivery hazard
    from the measured frame-loss curves, errored-frame BER levels,
    the estimator's clean-frame floor and decade noise, hint-shape
    statistics, SNR-estimator noise, and the equal-power-interference
    BER.  Per frame it interpolates those surfaces along the SNR
    trajectory, draws segment failures and realized bit errors, and
    synthesizes hints — so delivery, ground truth, and the SoftPHY
    feedback all behave like the full pipeline's, including the
    estimator floor on error-free frames and high reported BER on
    failed ones.

    Example::

        from repro.phy.calibration import default_table

        backend = SurrogatePhyBackend(default_table())
        out = backend.frame_outcome(3, np.full(16, 6.0), 1600,
                                    np.random.default_rng(0))
        # out.hints feed the same estimators as real SoftPHY hints.

    Args:
        table: the calibration table (``default_table()`` loads the
            checked-in one generated by ``repro calibrate``).
        rates: rate table; defaults to the table's provenance set.
        mode: OFDM operating mode for airtime computations.
    """

    name = "surrogate"

    def __init__(self, table=None, rates: Optional[RateTable] = None,
                 mode: Union[str, OperatingMode] = "simulation"):
        if table is None:
            from repro.phy.calibration import default_table
            table = default_table()
        super().__init__(rates=rates, mode=mode)
        if len(self.rates) != table.n_rates:
            raise ValueError(
                f"calibration table covers {table.n_rates} rates but "
                f"the rate table has {len(self.rates)}")
        self.table = table
        #: per-(n_info, n_samples) bit-segment splits (pure function).
        self._split_cache: dict = {}

    def _split_bits(self, n_info: int, n_samples: int) -> np.ndarray:
        """Spread ``n_info`` bits near-evenly over trajectory samples."""
        key = (n_info, n_samples)
        out = self._split_cache.get(key)
        if out is None:
            edges = np.round(np.linspace(0, n_info, n_samples + 1))
            out = np.diff(edges).astype(np.int64)
            self._split_cache[key] = out
        return out

    def frame_outcome(self, rate_index: int,
                      snr_db_per_symbol: np.ndarray,
                      n_payload_bits: int, rng: np.random.Generator,
                      interference_mask: Optional[np.ndarray] = None,
                      need_hints: bool = True,
                      need_error_mask: bool = False) -> PhyFrameOutcome:
        """Synthesize one frame outcome from the calibration tables.

        See :meth:`PhyBackend.frame_outcome` for the argument
        contract.  Masked trajectory samples are remapped to the SNR
        whose calibrated BER equals the measured equal-power-
        interference BER, so interference degrades hints and delivery
        exactly as a real collision segment would.

        The outcome model mirrors the bimodality of a real decoder:
        each trajectory segment independently *fails* with the
        calibrated per-bit hazard (near the waterfall a frame either
        decodes cleanly or falls apart — delivery cannot be derived
        from the mean BER); failed segments then realize a BER drawn
        from the calibrated errored-frame distribution.  The BER
        estimate tracks the realized BER with the calibrated Fig.-7a
        decade noise on errored frames, and sits at the calibrated
        estimator floor on clean frames.
        """
        table = self.table
        trajectory = np.atleast_1d(
            np.asarray(snr_db_per_symbol, dtype=np.float64))
        effective = trajectory
        if interference_mask is not None:
            mask = np.atleast_1d(np.asarray(interference_mask,
                                            dtype=bool))
            if mask.shape != trajectory.shape:
                raise ValueError(
                    "interference mask must match the SNR trajectory")
            if mask.any():
                effective = trajectory.copy()
                effective[mask] = table.interference_snr_db(rate_index)

        n_info = self.aligned_payload_bits(n_payload_bits) + 32
        bits = self._split_bits(n_info, effective.size)
        # Trajectories finer than one bit per sample leave zero-bit
        # segments; drop them (they carry nothing and would break the
        # segment bookkeeping below).
        keep = bits > 0
        if not np.all(keep):
            effective = effective[keep]
            bits = bits[keep]

        # Segment failures from the calibrated per-bit hazard.  All
        # surface lookups below share one set of grid weights — the
        # per-frame cost of five independent interpolations is what
        # the slot-synchronous MAC engine's throughput rides on.
        weights = table.grid_weights(effective)
        lam = table.hazard_at(rate_index, weights)
        p_fail = -np.expm1(-lam * bits)
        failed = rng.random(effective.size) < p_fail
        any_failed = bool(failed.any())

        errors = np.zeros(effective.size, dtype=np.int64)
        if any_failed:
            seg_log_ber = rng.normal(
                table.errored_log_ber_at(rate_index, weights),
                np.maximum(table.errored_log_ber_std_at(rate_index,
                                                        weights), 1e-6))
            seg_ber = np.minimum(10.0 ** seg_log_ber, 0.5)
            draw = rng.binomial(bits, np.where(failed, seg_ber, 0.0))
            errors = np.where(failed, np.maximum(draw, 1), 0)
        n_errors = int(errors.sum())

        snr_est = float(trajectory[0] + table.snr_bias(trajectory[0])
                        + rng.normal(0.0, table.snr_std(trajectory[0])))
        # Detection gates on the *estimated* preamble SNR, exactly as
        # the full backend's receiver does.
        detected = bool(snr_est >= DETECTION_SNR_DB)

        # Per-segment estimator level: realized BER for failed
        # segments (the estimator tracks the channel, Fig. 7a), the
        # calibrated clean-frame floor otherwise; one frame-level
        # decade-noise factor on top.
        clean_level = 10.0 ** table.clean_log_est_at(rate_index, weights)
        if any_failed:
            level = np.where(
                failed,
                np.maximum(errors / np.maximum(bits, 1), 1e-12),
                clean_level)
            sigma = table.est_noise_decades
        else:
            level = clean_level
            sigma = float(np.mean(
                table.clean_log_est_std_at(rate_index, weights)))
        noise = 10.0 ** rng.normal(0.0, max(sigma, 1e-6))
        level = np.minimum(level * noise, 0.5)

        hints = None
        if need_hints:
            mu = table.log_p_mean(rate_index, effective)
            shape_sigma = np.maximum(
                table.log_p_std(rate_index, effective), 1e-6)
            log_p = rng.normal(np.repeat(mu, bits),
                               np.repeat(shape_sigma, bits))
            p = 10.0 ** np.clip(log_p, -12.0, np.log10(0.5))
            # Rescale each segment's mean p onto its target level so
            # the hint *pattern* carries the trajectory (what the
            # interference detector and PPR consume).
            sums = np.add.reduceat(
                p, np.concatenate(([0], np.cumsum(bits)[:-1])))
            means = sums / np.maximum(bits, 1)
            scale = np.where(means > 0,
                             level / np.maximum(means, 1e-300), 1.0)
            p = np.clip(p * np.repeat(scale, bits), 1e-12, 0.5)
            hints = np.log1p(-p) - np.log(p)      # |LLR| = ln((1-p)/p)
            ber_est = float(np.mean(p))
        else:
            ber_est = float(np.average(level, weights=bits))
        ber_est = min(ber_est, 0.5)

        error_mask = None
        if need_error_mask:
            # Scatter each failed segment's realized errors over its
            # bit range.  These draws happen after every pre-existing
            # draw, so the stream consumed by need_error_mask=False
            # callers (and the goldens built on it) is untouched.
            error_mask = np.zeros(n_info, dtype=bool)
            if any_failed:
                starts = np.concatenate(([0], np.cumsum(bits)[:-1]))
                for seg in np.flatnonzero(errors):
                    pos = rng.choice(int(bits[seg]), int(errors[seg]),
                                     replace=False)
                    error_mask[starts[seg] + pos] = True

        return PhyFrameOutcome(
            detected=detected,
            delivered=detected and n_errors == 0,
            ber_true=n_errors / n_info,
            ber_est=ber_est, snr_db=snr_est,
            n_bit_errors=n_errors, n_info_bits=n_info, hints=hints,
            error_mask=error_mask)


def validate_backend_name(name: str) -> str:
    """Check a backend *name* without building the backend.

    Used by call sites that accept the name long before resolving it
    (e.g. :class:`repro.experiments.api.Runner`), so typos fail at
    configuration time with the same message :func:`get_backend`
    would produce.

    Returns:
        The validated name, unchanged.

    Raises:
        UnknownBackendError: ``name`` names no known backend.

    Example::

        validate_backend_name("surrogate")      # "surrogate"
    """
    if name not in BACKEND_NAMES:
        raise UnknownBackendError(
            f"unknown PHY backend {name!r}; available: "
            f"{list(BACKEND_NAMES)}")
    return name


def get_backend(spec, rates: Optional[RateTable] = None,
                mode: Union[str, OperatingMode] = "simulation"
                ) -> PhyBackend:
    """Resolve a backend name (or pass through an instance).

    Args:
        spec: ``"full"``, ``"surrogate"``, or an existing
            :class:`PhyBackend` (returned unchanged, so call sites can
            accept either form).
        rates: rate table for a newly built backend.
        mode: OFDM operating mode for a newly built backend.

    Returns:
        A ready-to-use :class:`PhyBackend`.

    Raises:
        UnknownBackendError: ``spec`` names no known backend; the
            message lists the valid names.

    Example::

        get_backend("surrogate").name          # "surrogate"
        get_backend(FullPhyBackend()).name     # "full" (pass-through)
    """
    if isinstance(spec, PhyBackend):
        return spec
    validate_backend_name(spec)
    if spec == "full":
        from repro.phy.transceiver import Transceiver
        phy = Transceiver(mode=mode) if rates is None \
            else Transceiver(mode=mode, rates=rates)
        return FullPhyBackend(phy)
    return SurrogatePhyBackend(rates=rates, mode=mode)
