"""Frame-batched PHY fast path.

Every figure of the paper is a Monte Carlo sweep that pushes thousands
of frames through the PHY; pushed one at a time, the per-frame Python
overhead of the trellis recursions dominates the run time.  This
module processes a ``(n_frames, ...)`` stack of equal-geometry frames
through the whole pipeline at once — encode, interleave, modulate on
transmit; demap, deinterleave, depuncture, and BCJR/Viterbi-decode on
receive — using the batched kernels in :mod:`repro.phy.convcode`,
:mod:`repro.phy.modulation`, :mod:`repro.phy.bcjr`, and
:mod:`repro.phy.viterbi`, whose per-trellis-step loops advance all
frames together.

The batched path is **bit-identical** to the per-frame reference path
(:meth:`Transceiver.transmit` / :meth:`Transceiver.receive`): it
performs exactly the same elementwise float operations and last-axis
reductions, just with a leading frame axis.  The parity suite in
``tests/phy/test_batch.py`` locks this in across all modulations and
code rates.

Per-frame steps that are cheap C-backed calls (CRC-32, preamble SNR
estimation, header parsing) intentionally stay scalar loops: they are
not on the hot path, and reusing the exact scalar code guarantees
identical floats for the preamble noise estimate.

Entry points: :func:`batch_transmit` / :func:`batch_receive`, or the
:class:`~repro.phy.transceiver.Transceiver` conveniences
``transmit_batch`` / ``receive_batch`` / ``run_batch``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.phy import bits as bitutil
from repro.phy.bcjr import bcjr_decode_batch
from repro.phy.convcode import depuncture, puncture
from repro.phy.frame import FLAG_HAS_POSTAMBLE, LinkHeader
from repro.phy.interleaver import deinterleave, interleave
from repro.phy.modulation import (CONSTELLATIONS, modulate,
                                  soft_demap_batch)
from repro.phy.ofdm import FrameLayout, training_symbols
from repro.phy.snr import estimate_preamble_snr
from repro.phy.viterbi import viterbi_decode_batch

__all__ = ["TxBatch", "batch_transmit", "batch_receive"]


@dataclass
class TxBatch:
    """A stack of transmitted frames sharing one geometry.

    Attributes:
        headers: per-frame link-layer headers.
        payload_bits: ``(n_frames, n_payload_bits)`` original payloads.
        body_info_bits: ``(n_frames, n_info)`` bits each body encoder
            saw (scrambled payload + CRC-32); ground truth for BER.
        symbols: ``(n_frames, n_symbols, n_subcarriers)`` complex OFDM
            symbols.
        layout: the shared frame geometry.

    Example::

        batch = phy.transmit_batch(payloads, rate_index=3)
        batch.symbols.shape        # (n_frames, n_symbols, n_sub)
        batch.frame(0)             # scalar TxFrame view of entry 0
    """

    headers: List[LinkHeader]
    payload_bits: np.ndarray
    body_info_bits: np.ndarray
    symbols: np.ndarray
    layout: FrameLayout

    def __len__(self) -> int:
        return self.symbols.shape[0]

    def frame(self, i: int):
        """The ``i``-th frame as a scalar :class:`TxFrame` view."""
        from repro.phy.transceiver import TxFrame
        return TxFrame(header=self.headers[i],
                       payload_bits=self.payload_bits[i],
                       body_info_bits=self.body_info_bits[i],
                       symbols=self.symbols[i], layout=self.layout)


def _encode_block_batch(phy, info_bits: np.ndarray, code_rate,
                        bits_per_symbol: int, pad: int) -> np.ndarray:
    """Batched analogue of ``Transceiver._encode_block``.

    ``info_bits`` is ``(n_frames, n_info)``; returns the interleaved
    coded streams, one row per frame.
    """
    coded = phy.code.encode_batch(info_bits)
    punctured = puncture(coded, code_rate)
    padded = np.concatenate(
        [punctured,
         np.zeros((punctured.shape[0], pad), dtype=np.uint8)], axis=1)
    if not phy.use_interleaver:
        return padded
    block = bits_per_symbol * phy.mode.n_subcarriers
    return interleave(padded, block, bits_per_symbol)


def batch_transmit(phy, payloads: np.ndarray, rate_index: int,
                   dest: int = 1, src: int = 0,
                   seqs: Optional[Sequence[int]] = None,
                   flags: int = 0) -> TxBatch:
    """Build the OFDM symbols for a stack of equal-length frames.

    Args:
        phy: the :class:`~repro.phy.transceiver.Transceiver`.
        payloads: ``(n_frames, n_payload_bits)`` byte-aligned payload
            bit arrays (equal length — frames of a batch share one
            :class:`FrameLayout`).
        rate_index: rate-table index for every frame body.
        dest, src, flags: link-header fields shared by the batch.
        seqs: per-frame sequence numbers (default: all 0, matching the
            scalar :meth:`Transceiver.transmit` default).

    Returns:
        A :class:`TxBatch` whose ``symbols[i]`` are bit-identical to
        ``phy.transmit(payloads[i], ...).symbols``.

    Example::

        payloads = rng.integers(0, 2, (64, 1600)).astype(np.uint8)
        batch = batch_transmit(phy, payloads, rate_index=3)
    """
    payloads = np.asarray(payloads, dtype=np.uint8)
    if payloads.ndim != 2:
        raise ValueError("batch_transmit expects (n_frames, n_bits) "
                         "payloads")
    n_frames = payloads.shape[0]
    if n_frames == 0:
        raise ValueError("empty batch")
    layout = phy.frame_layout(payloads.shape[1], rate_index)
    if layout.has_postamble:
        flags |= FLAG_HAS_POSTAMBLE
    if seqs is None:
        seqs = [0] * n_frames
    elif len(seqs) != n_frames:
        raise ValueError("one sequence number per frame required")
    headers = [LinkHeader(dest=dest, src=src, seq=int(seq),
                          rate_index=rate_index,
                          length_bytes=payloads.shape[1] // 8,
                          flags=flags) for seq in seqs]

    body_info = np.stack([bitutil.append_crc32(p) for p in payloads])
    if phy.scramble:
        body_info = bitutil.scramble(body_info, _scramble_seed())

    rate = phy.rates[rate_index]
    base = phy.rates.lowest
    header_bits = np.stack([h.to_bits() for h in headers])
    header_stream = _encode_block_batch(
        phy, header_bits, base.code_rate, base.bits_per_symbol,
        layout.header_pad_bits)
    body_stream = _encode_block_batch(
        phy, body_info, rate.code_rate, rate.bits_per_symbol,
        layout.body_pad_bits)

    # ``modulate`` groups bits_per_symbol bits at a time; each row's
    # length is a whole number of OFDM symbols, so modulating the
    # concatenated rows keeps every frame's groups aligned.
    n = phy.mode.n_subcarriers
    header_syms = modulate(header_stream.reshape(-1),
                           base.modulation).reshape(n_frames, -1, n)
    body_syms = modulate(body_stream.reshape(-1),
                         rate.modulation).reshape(n_frames, -1, n)
    preamble = training_symbols(layout.n_preamble_symbols, n)
    parts = [np.broadcast_to(preamble, (n_frames,) + preamble.shape),
             header_syms, body_syms]
    if layout.has_postamble:
        post = training_symbols(layout.n_preamble_symbols + 1, n)[-1:]
        parts.append(np.broadcast_to(post, (n_frames,) + post.shape))
    symbols = np.concatenate(parts, axis=1)
    if symbols.shape[1] != layout.n_symbols:
        raise AssertionError("layout/symbol count mismatch")
    return TxBatch(headers=headers, payload_bits=payloads,
                   body_info_bits=body_info, symbols=symbols,
                   layout=layout)


def _per_sample_gains(gains: np.ndarray, region: slice,
                      n_subcarriers: int) -> np.ndarray:
    """Flatten one region's gains to one gain per received sample.

    ``gains`` is ``(n_frames, n_symbols)`` (frequency-flat) or
    ``(n_frames, n_symbols, n_subcarriers)``.
    """
    g = gains[:, region]
    if g.ndim == 3:
        return g.reshape(g.shape[0], -1)
    return np.repeat(g, n_subcarriers, axis=1)


def _decode_block_batch(phy, rx: np.ndarray, gains: np.ndarray,
                        noise_var: np.ndarray, modulation: str,
                        bits_per_symbol: int, code_rate,
                        n_mother_bits: int, pad: int, soft: bool):
    """Batched analogue of ``Transceiver._decode_block``.

    ``rx`` is ``(n_frames, n_region_symbols * n_subcarriers)`` flat
    received samples; ``noise_var`` is one estimate per frame.
    Returns a :class:`BcjrBatchResult` (``soft=True``) or a
    ``(n_frames, n_info)`` bit array.
    """
    channel_llrs = soft_demap_batch(rx, modulation, noise_var,
                                    gains=gains)
    if phy.use_interleaver:
        block = bits_per_symbol * phy.mode.n_subcarriers
        channel_llrs = deinterleave(channel_llrs, block,
                                    bits_per_symbol)
    if pad:
        channel_llrs = channel_llrs[:, :-pad]
    mother_llrs = depuncture(channel_llrs, n_mother_bits, code_rate)
    if soft:
        return bcjr_decode_batch(phy.code, mother_llrs,
                                 variant=phy.decoder_variant)
    return viterbi_decode_batch(phy.code, mother_llrs)


def batch_receive(phy, rx_symbols: np.ndarray, gains: np.ndarray,
                  layout: FrameLayout, tx=None) -> list:
    """Decode a stack of received frames sharing one geometry.

    Args:
        phy: the :class:`~repro.phy.transceiver.Transceiver`.
        rx_symbols: ``(n_frames, layout.n_symbols, n_subcarriers)``
            received OFDM symbols.
        gains: the receiver's channel estimates — ``(n_frames,
            n_symbols)`` complex gains per OFDM symbol, or ``(n_frames,
            n_symbols, n_subcarriers)`` for frequency-selective
            channels.
        layout: the shared frame geometry.
        tx: optional ground truth — a :class:`TxBatch`, or a single
            :class:`TxFrame` transmitted identically to every batch
            entry (the common Monte Carlo pattern: one frame, many
            noise realisations).

    Returns:
        A list of per-frame :class:`~repro.phy.transceiver.RxResult`,
        bit-identical to calling :meth:`Transceiver.receive` on each
        frame.

    Example::

        results = batch_receive(phy, rx_stack, gains, batch.layout,
                                tx=batch)
        [r.crc_ok for r in results]       # per-frame delivery
    """
    from repro.phy.transceiver import RxResult

    rx_symbols = np.asarray(rx_symbols, dtype=np.complex128)
    gains = np.asarray(gains, dtype=np.complex128)
    if rx_symbols.ndim != 3 or rx_symbols.shape[1:] != (
            layout.n_symbols, layout.n_subcarriers):
        raise ValueError("received symbol array does not match layout")
    n_frames = rx_symbols.shape[0]
    if gains.shape[0] != n_frames:
        raise ValueError("one gain array per frame required")
    if gains.ndim == 2:
        if gains.shape[1] != layout.n_symbols:
            raise ValueError("one channel gain per OFDM symbol required")
    elif gains.shape != rx_symbols.shape:
        raise ValueError("2-D gains must match the received symbol array")

    # Preamble processing per frame, through the exact scalar code
    # path: it is O(n_preamble) per frame, and identical floats for
    # snr_db / noise_var matter more than vectorising it.
    training = training_symbols(layout.n_preamble_symbols,
                                layout.n_subcarriers)
    ref = training.ravel()
    snr_db = np.empty(n_frames)
    noise_var = np.empty(n_frames)
    for i in range(n_frames):
        snr_db[i], _gain_est = estimate_preamble_snr(
            rx_symbols[i, layout.preamble], training)
        rx_pre = rx_symbols[i, layout.preamble].ravel()
        if gains.ndim == 3:
            pre_gains = gains[i, layout.preamble].ravel()
        else:
            pre_gains = np.repeat(gains[i, layout.preamble],
                                  layout.n_subcarriers)
        nv = float(np.mean(np.abs(rx_pre - pre_gains * ref) ** 2))
        noise_var[i] = max(nv, 1e-9)

    base_bps = CONSTELLATIONS[layout.header_modulation].bits_per_symbol
    header_rx = rx_symbols[:, layout.header].reshape(n_frames, -1)
    header_bits = _decode_block_batch(
        phy, header_rx,
        _per_sample_gains(gains, layout.header, layout.n_subcarriers),
        noise_var, layout.header_modulation, base_bps,
        layout.header_code_rate, layout.n_header_mother_bits,
        layout.header_pad_bits, soft=False)

    rate = phy.rates[layout.body_rate_index]
    body_rx = rx_symbols[:, layout.body].reshape(n_frames, -1)
    body = _decode_block_batch(
        phy, body_rx,
        _per_sample_gains(gains, layout.body, layout.n_subcarriers),
        noise_var, layout.body_modulation, rate.bits_per_symbol,
        layout.body_code_rate, layout.n_body_mother_bits,
        layout.body_pad_bits, soft=True)

    decoded = body.bits
    if phy.scramble:
        decoded = bitutil.descramble(decoded, _scramble_seed())

    truth = _truth_rows(tx, n_frames)
    results = []
    for i in range(n_frames):
        header, header_ok = LinkHeader.from_bits(header_bits[i])
        crc_ok = bitutil.check_crc32(decoded[i])
        error_mask = None
        true_ber = None
        if truth is not None:
            error_mask = body.bits[i] != truth[i]
            true_ber = float(np.mean(error_mask))
        results.append(RxResult(
            header=header, header_ok=header_ok,
            payload_bits=decoded[i, :-32], body_bits=decoded[i],
            crc_ok=crc_ok, llrs=body.llrs[i],
            info_symbol=layout.info_symbol,
            n_body_symbols=layout.n_body_symbols,
            snr_db=float(snr_db[i]), noise_var_est=float(noise_var[i]),
            error_mask=error_mask, true_ber=true_ber))
    return results


def _truth_rows(tx, n_frames: int) -> Optional[np.ndarray]:
    """Ground-truth body bits per frame from a TxBatch or TxFrame."""
    if tx is None:
        return None
    info = np.asarray(tx.body_info_bits)
    if info.ndim == 1:                     # one TxFrame for the batch
        return np.broadcast_to(info, (n_frames, info.size))
    if info.shape[0] != n_frames:
        raise ValueError("ground-truth batch size mismatch")
    return info


def _scramble_seed() -> int:
    from repro.phy.transceiver import _SCRAMBLE_SEED
    return _SCRAMBLE_SEED
