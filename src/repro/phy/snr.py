"""Preamble-based SNR estimation (Schmidl-Cox-style).

The paper's prototype estimates SNR once per frame from the preamble
(section 4).  This is the crucial weakness of SNR as a rate adaptation
signal: in a fading channel, the SNR measured over the first symbols
does not capture the fades that occur later in the frame, which is why
the SNR-BER relationship shifts with channel coherence time (Fig. 9)
and SNR-based protocols need in-situ retraining.

We model the estimator at the symbol level: the receiver correlates
the received preamble with the known training symbols to estimate the
channel gain and the residual noise power.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["estimate_preamble_snr", "true_average_snr_db", "snr_to_db",
           "db_to_linear"]


def snr_to_db(snr_linear):
    """Linear SNR to decibels (floored to avoid log of zero).

    Scalars return ``float``; arrays convert elementwise.
    """
    values = np.maximum(np.asarray(snr_linear, dtype=np.float64),
                        1e-12)
    out = 10.0 * np.log10(values)
    return float(out) if np.ndim(snr_linear) == 0 else out


def db_to_linear(snr_db):
    """Decibel SNR to linear scale.

    Scalars return ``float``; arrays convert elementwise.
    """
    out = 10.0 ** (np.asarray(snr_db, dtype=np.float64) / 10.0)
    return float(out) if np.ndim(snr_db) == 0 else out


def estimate_preamble_snr(rx_preamble: np.ndarray,
                          training: np.ndarray) -> Tuple[float, complex]:
    """Estimate SNR and channel gain from the received preamble.

    Args:
        rx_preamble: received preamble samples, shape
            ``(n_preamble_symbols, n_subcarriers)``.
        training: the known transmitted training symbols, same shape,
            unit average energy.

    Returns:
        ``(snr_db, gain_estimate)``: the estimated SNR in dB and the
        complex channel gain estimate (used by the receiver to set the
        demapper's noise variance).
    """
    rx = np.asarray(rx_preamble, dtype=np.complex128).ravel()
    ref = np.asarray(training, dtype=np.complex128).ravel()
    if rx.shape != ref.shape:
        raise ValueError("preamble shape mismatch")
    ref_energy = np.mean(np.abs(ref) ** 2)
    gain = np.vdot(ref, rx) / (ref.size * ref_energy)
    residual = rx - gain * ref
    noise_power = np.mean(np.abs(residual) ** 2)
    signal_power = np.abs(gain) ** 2 * ref_energy
    if noise_power <= 0:
        noise_power = 1e-12
    return snr_to_db(signal_power / noise_power), complex(gain)


def true_average_snr_db(gains: np.ndarray, noise_var: float) -> float:
    """Ground-truth SNR averaged over all symbols of a frame.

    Unlike :func:`estimate_preamble_snr` this sees mid-frame fades; it
    is available only to the simulator (an omniscient quantity), not to
    protocols.
    """
    gains = np.asarray(gains)
    power = np.mean(np.abs(gains) ** 2)
    return snr_to_db(power / noise_var)
