"""Bit-level utilities: packing, CRCs, and the 802.11 scrambler.

All PHY modules represent bit streams as one-dimensional ``numpy``
arrays of ``uint8`` holding values 0 and 1.  The helpers here convert
between bytes and bits, compute the two checksums used by the SoftRate
frame format (CRC-32 over the frame body, CRC-16 over the link-layer
header, see paper section 3), and implement the self-synchronising
scrambler from 802.11 (polynomial :math:`x^7 + x^4 + 1`).
"""

from __future__ import annotations

import binascii

import numpy as np

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "int_to_bits",
    "bits_to_int",
    "crc32",
    "crc16",
    "append_crc32",
    "check_crc32",
    "scramble",
    "descramble",
    "hamming_distance",
    "random_bits",
]


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Expand ``data`` into a bit array, most significant bit first."""
    if len(data) == 0:
        return np.zeros(0, dtype=np.uint8)
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a bit array (MSB first) back into bytes.

    The bit count must be a multiple of 8.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8 != 0:
        raise ValueError(f"bit count {bits.size} is not a multiple of 8")
    return np.packbits(bits).tobytes()


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Encode ``value`` as ``width`` bits, most significant bit first."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)],
                    dtype=np.uint8)


def bits_to_int(bits: np.ndarray) -> int:
    """Decode a most-significant-bit-first bit array into an integer."""
    value = 0
    for bit in np.asarray(bits, dtype=np.uint8):
        value = (value << 1) | int(bit)
    return value


def crc32(bits: np.ndarray) -> int:
    """CRC-32 (IEEE) of a byte-aligned bit array."""
    return binascii.crc32(bits_to_bytes(bits)) & 0xFFFFFFFF


_CRC16_POLY = 0x1021  # CRC-16-CCITT


def crc16(bits: np.ndarray) -> int:
    """CRC-16-CCITT of a bit array (bit-serial; input need not be
    byte-aligned, which lets the link header stay compact)."""
    reg = 0xFFFF
    for bit in np.asarray(bits, dtype=np.uint8):
        msb = (reg >> 15) & 1
        reg = ((reg << 1) & 0xFFFF) | int(bit)
        if msb:
            reg ^= _CRC16_POLY
    return reg


def append_crc32(bits: np.ndarray) -> np.ndarray:
    """Return ``bits`` with its 32-bit CRC appended."""
    checksum = int_to_bits(crc32(bits), 32)
    return np.concatenate([np.asarray(bits, dtype=np.uint8), checksum])


def check_crc32(bits: np.ndarray) -> bool:
    """Verify a bit array produced by :func:`append_crc32`."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size < 32 or (bits.size - 32) % 8 != 0:
        return False
    body, checksum = bits[:-32], bits[-32:]
    return crc32(body) == bits_to_int(checksum)


_SCRAMBLER_LEN = 127


def _scrambler_sequence(seed: int) -> np.ndarray:
    """One period of the 802.11 length-127 scrambler output."""
    if not 1 <= seed <= 127:
        raise ValueError("scrambler seed must be in [1, 127]")
    state = seed
    out = np.empty(_SCRAMBLER_LEN, dtype=np.uint8)
    for i in range(_SCRAMBLER_LEN):
        feedback = ((state >> 6) ^ (state >> 3)) & 1
        out[i] = feedback
        state = ((state << 1) | feedback) & 0x7F
    return out


def scramble(bits: np.ndarray, seed: int = 0x5D) -> np.ndarray:
    """XOR ``bits`` with the 802.11 scrambler sequence.

    Scrambling whitens long runs of identical bits so that the channel
    and synchronisation behave independently of payload content.  A
    ``(n_frames, n_bits)`` stack is scrambled row by row (each frame
    restarts the scrambler, as each frame does on air).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    sequence = _scrambler_sequence(seed)
    n = bits.shape[-1]
    reps = -(-n // _SCRAMBLER_LEN)
    return bits ^ np.tile(sequence, reps)[:n]


def descramble(bits: np.ndarray, seed: int = 0x5D) -> np.ndarray:
    """Inverse of :func:`scramble` (XOR is an involution)."""
    return scramble(bits, seed)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of positions where the two bit arrays differ."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a != b))


def random_bits(n: int, rng: np.random.Generator) -> np.ndarray:
    """Generate ``n`` uniformly random bits."""
    return rng.integers(0, 2, size=n, dtype=np.uint8)
