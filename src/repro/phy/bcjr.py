"""Soft-output log-MAP (BCJR) decoder — the source of SoftPHY hints.

The BCJR algorithm [Bahl et al. 1974] computes, for every information
bit, the exact a-posteriori log-likelihood ratio

    LLR(k) = log P(x_k = 1 | r) - log P(x_k = 0 | r)

given the received channel observations ``r`` and the code constraints.
The SoftRate paper (section 3.1) defines the SoftPHY hint of bit ``k``
as ``|LLR(k)|`` and derives the per-bit error probability
``p_k = 1 / (1 + exp(|LLR(k)|))`` from it.

Two recursion flavours are provided:

* ``"log-map"`` — exact, using ``logaddexp`` (Jacobian logarithm);
* ``"max-log-map"`` — approximate, replacing log-sum-exp by max;
  faster, with slightly optimistic hint magnitudes (ablated in
  ``benchmarks/test_ablation_decoder.py``).

The recursions exploit the 2-regular trellis of a rate-1/2 code: every
state has exactly two predecessors and two successors, so each step is
a single vectorised binary combine over the state vector.

The decoder is implemented as a **batched kernel**
(:func:`bcjr_decode_batch`): a ``(n_frames, n_llrs)`` stack of
equal-length frames advances through every trellis step together, so
the Python-level recursion loop runs once for the whole batch instead
of once per frame.  :func:`bcjr_decode` is a thin single-frame wrapper
over the same kernel; both paths are bit-identical (the batched code
performs exactly the same elementwise float operations and last-axis
reductions as the per-frame code).
"""

from __future__ import annotations

import numpy as np

from repro.phy.convcode import ConvolutionalCode

__all__ = ["bcjr_decode", "bcjr_decode_batch", "BcjrResult",
           "BcjrBatchResult"]

_NEG_INF = -1e30

#: Batch size at which the fused backward pass overtakes the
#: whole-array posterior combine (see ``bcjr_decode_batch``).  Both
#: strategies are bit-identical; this is purely a speed crossover.
_FUSED_MIN_FRAMES = 8


def _logsumexp_last(a: np.ndarray) -> np.ndarray:
    """Log-sum-exp over the last axis of ``a``.

    Bit-identical to ``scipy.special.logsumexp(a, axis=-1)`` (scipy >=
    1.15 algorithm: maxima pulled out of the sum, remainder scaled by
    their multiplicity ``m``, result ``log1p(s) + log(m) + a_max``)
    for finite real inputs, and to :func:`_logsumexp_rows` — but
    allocating, for the small-batch whole-array strategy.
    """
    mx = a.max(axis=-1, keepdims=True)
    mask = a == mx
    m = mask.sum(axis=-1, dtype=a.dtype)
    e = np.exp(a - mx)
    e[mask] = 0.0
    s = e.sum(axis=-1)
    np.divide(s, m, out=s, where=s != 0)       # s == 0 stays 0
    return np.log1p(s) + np.log(m) + mx[..., 0]


class _LseBuffers:
    """Scratch slabs for :func:`_logsumexp_rows` (one set per decode)."""

    __slots__ = ("mx", "mask", "m", "s")

    def __init__(self, n_frames: int, n_states: int):
        self.mx = np.empty((n_frames, 1))
        self.mask = np.empty((n_frames, n_states), dtype=bool)
        self.m = np.empty(n_frames)
        self.s = np.empty(n_frames)


def _logsumexp_rows(a: np.ndarray, buf: _LseBuffers,
                    out: np.ndarray) -> None:
    """Row-wise log-sum-exp of ``a`` (shape ``(F, S)``) into ``out``.

    Bit-identical to ``scipy.special.logsumexp(a, axis=-1)`` (scipy >=
    1.15 algorithm) for the finite inputs the trellis produces
    (``_NEG_INF`` is a large finite float, so the row max is always
    finite, real, and ``b is None``): the maximal elements are pulled
    out of the sum, the remainder is scaled by their multiplicity
    ``m``, and the result is ``log1p(s) + log(m) + a_max``.  Unlike
    the scipy call this is allocation-free — ``a`` is consumed as
    scratch and ``buf`` holds caller-owned slabs — which matters when
    it runs once per trellis step.
    """
    np.amax(a, axis=1, keepdims=True, out=buf.mx)
    np.equal(a, buf.mx, out=buf.mask)          # maximal elements
    np.sum(buf.mask, axis=1, dtype=a.dtype, out=buf.m)
    np.subtract(a, buf.mx, out=a)
    np.exp(a, out=a)
    a[buf.mask] = 0.0                          # exclude the maxima
    np.sum(a, axis=1, out=buf.s)
    np.divide(buf.s, buf.m, out=buf.s,
              where=buf.s != 0)                # s == 0 stays 0
    np.log1p(buf.s, out=buf.s)
    np.log(buf.m, out=buf.m)
    np.add(buf.s, buf.m, out=buf.s)
    np.add(buf.s, buf.mx[:, 0], out=out)


class BcjrResult:
    """Output of the BCJR decoder for one frame.

    Attributes:
        llrs: a-posteriori LLR per information bit (tail stripped).
        bits: hard decisions, ``llrs >= 0`` (Eq. 2 of the paper).
    """

    __slots__ = ("llrs", "bits")

    def __init__(self, llrs: np.ndarray):
        self.llrs = llrs
        self.bits = (llrs >= 0).astype(np.uint8)


class BcjrBatchResult:
    """Output of the batched BCJR decoder.

    Attributes:
        llrs: ``(n_frames, n_info_bits)`` posterior LLRs.
        bits: ``(n_frames, n_info_bits)`` hard decisions.
    """

    __slots__ = ("llrs", "bits")

    def __init__(self, llrs: np.ndarray):
        self.llrs = llrs
        self.bits = (llrs >= 0).astype(np.uint8)

    def __len__(self) -> int:
        return self.llrs.shape[0]

    def frame(self, i: int) -> BcjrResult:
        """The ``i``-th frame's result as a scalar :class:`BcjrResult`."""
        return BcjrResult(self.llrs[i])


def bcjr_decode(code: ConvolutionalCode, channel_llrs: np.ndarray,
                variant: str = "log-map") -> BcjrResult:
    """Decode a terminated rate-1/2 coded stream with soft outputs.

    Args:
        code: the convolutional code.
        channel_llrs: depunctured channel LLRs, one per mother-code bit
            (``log P(r|c=1) - log P(r|c=0)``); punctured positions are 0.
        variant: ``"log-map"`` (exact) or ``"max-log-map"``.

    Returns:
        A :class:`BcjrResult` with per-information-bit posterior LLRs.
    """
    llrs = np.asarray(channel_llrs, dtype=np.float64)
    if llrs.ndim != 1:
        raise ValueError("bcjr_decode expects a 1-D LLR stream; "
                         "use bcjr_decode_batch for frame stacks")
    batch = bcjr_decode_batch(code, llrs[None, :], variant)
    return BcjrResult(batch.llrs[0])


def bcjr_decode_batch(code: ConvolutionalCode, channel_llrs: np.ndarray,
                      variant: str = "log-map") -> BcjrBatchResult:
    """Decode a ``(n_frames, n_llrs)`` stack of equal-length streams.

    All frames advance each trellis step together: the forward and
    backward recursions run their Python loop once per trellis step for
    the whole batch, with per-frame state vectors stacked along the
    leading axis.  The output is bit-identical to decoding each row
    individually with :func:`bcjr_decode`.

    Args:
        code: the convolutional code.
        channel_llrs: depunctured channel LLRs, shape
            ``(n_frames, 2 * n_steps)``; punctured positions are 0.
        variant: ``"log-map"`` (exact) or ``"max-log-map"``.

    Returns:
        A :class:`BcjrBatchResult` with posterior LLRs of shape
        ``(n_frames, n_steps - n_tail_bits)``.
    """
    llrs = np.asarray(channel_llrs, dtype=np.float64)
    if llrs.ndim != 2:
        raise ValueError("bcjr_decode_batch expects a 2-D LLR array")
    if llrs.shape[-1] % 2 != 0:
        raise ValueError("channel LLR stream must have even length")
    n_frames = llrs.shape[0]
    n_steps = llrs.shape[-1] // 2
    if n_steps <= code.n_tail_bits:
        raise ValueError("input shorter than the code's tail")
    if variant == "log-map":
        combine = np.logaddexp
    elif variant == "max-log-map":
        combine = np.maximum
    else:
        raise ValueError(f"unknown BCJR variant: {variant!r}")

    trellis = code.trellis
    n_states = trellis.n_states
    next_state = trellis.next_state            # (S, 2)
    prev_state = trellis.prev_state            # (S, 2)
    prev_input = trellis.prev_input            # (S, 2)

    # gamma[t, f, s, b] = c0 * L0[f, t] + c1 * L1[f, t] for that
    # transition's coded bits (terms independent of the transition
    # cancel in LLRs).  All batch arrays are **time-major** so each
    # recursion step works on one contiguous (n_frames, ...) slab —
    # frame-major layout would stride megabytes apart per step and
    # thrash the cache into being slower than the scalar path.
    out = trellis.outputs.astype(np.float64)   # (S, 2, 2)
    pairs = llrs.reshape(n_frames, n_steps, 2).transpose(1, 0, 2)
    gamma = (out[None, None, :, :, 0] * pairs[:, :, None, None, 0]
             + out[None, None, :, :, 1] * pairs[:, :, None, None, 1])
    gamma_flat = gamma.reshape(n_steps, n_frames, 2 * n_states)

    # Column index into gamma_flat for the transition that enters state
    # s via its i-th predecessor (i = 0, 1).
    enter_col = prev_state * 2 + prev_input    # (S, 2)
    enter0, enter1 = enter_col[:, 0], enter_col[:, 1]
    pred0, pred1 = prev_state[:, 0], prev_state[:, 1]
    succ0, succ1 = next_state[:, 0], next_state[:, 1]
    leave0 = 2 * np.arange(n_states)           # transition (s, 0)
    leave1 = leave0 + 1                        # transition (s, 1)

    # Scratch slabs reused every step: at thousands of trellis steps,
    # per-step temporaries would make the allocator a hot spot.
    shape = (n_frames, n_states)
    ta, tb, tc = (np.empty(shape) for _ in range(3))
    mx = np.empty((n_frames, 1))

    # Forward recursion.  alpha is kept whole: the fused backward pass
    # below consumes alpha[t] while it walks t backwards.
    alpha = np.empty((n_steps + 1, n_frames, n_states))
    alpha[0] = _NEG_INF
    alpha[0, :, 0] = 0.0
    for t in range(n_steps):
        row = alpha[t]                         # (F, S)
        gf = gamma_flat[t]                     # (F, 2S)
        np.take(row, pred0, axis=1, out=ta)
        np.take(gf, enter0, axis=1, out=tb)
        np.add(ta, tb, out=ta)                 # row[pred0] + gf[enter0]
        np.take(row, pred1, axis=1, out=tc)
        np.take(gf, enter1, axis=1, out=tb)
        np.add(tc, tb, out=tc)                 # row[pred1] + gf[enter1]
        combine(ta, tc, out=ta)
        # Normalise to avoid drift; offsets cancel in the final LLR.
        np.amax(ta, axis=1, keepdims=True, out=mx)
        np.subtract(ta, mx, out=alpha[t + 1])

    # Backward recursion (terminated trellis: end in state 0) and
    # posterior combine, by one of two bit-identical strategies.
    # Transition (s, b) runs from alpha[t, s] to
    # beta[t + 1, next_state[s, b]].
    if n_frames >= _FUSED_MIN_FRAMES:
        # Large batches: fuse the posterior into the backward loop.
        # At step t both beta[t + 1] and alpha[t] are live in cache,
        # so the per-step LLR combine costs one more pass over the
        # same slabs instead of materialising (T, F, S) score arrays.
        g0, g1, b0, b1, s0, s1 = (np.empty(shape) for _ in range(6))
        lse_buf = _LseBuffers(n_frames, n_states)
        num = np.empty((n_steps, n_frames))
        den = np.empty((n_steps, n_frames))
        beta_next = np.full(shape, _NEG_INF)   # beta[t + 1]
        beta_next[:, 0] = 0.0
        beta_cur = np.empty(shape)
        for t in range(n_steps - 1, -1, -1):
            alpha_t = alpha[t]
            gf = gamma_flat[t]
            np.take(gf, leave0, axis=1, out=g0)    # gamma[t, :, :, 0]
            np.take(gf, leave1, axis=1, out=g1)
            np.take(beta_next, succ0, axis=1, out=b0)
            np.take(beta_next, succ1, axis=1, out=b1)
            # Posterior scores, in the reference association order
            # (alpha + gamma) + beta.
            np.add(alpha_t, g0, out=s0)
            np.add(s0, b0, out=s0)
            np.add(alpha_t, g1, out=s1)
            np.add(s1, b1, out=s1)
            if variant == "log-map":
                _logsumexp_rows(s1, lse_buf, num[t])
                _logsumexp_rows(s0, lse_buf, den[t])
            else:
                np.amax(s1, axis=1, out=num[t])
                np.amax(s0, axis=1, out=den[t])
            # Beta recursion, reference order beta[succ] + gamma.
            np.add(b0, g0, out=b0)
            np.add(b1, g1, out=b1)
            combine(b0, b1, out=b0)
            np.amax(b0, axis=1, keepdims=True, out=mx)
            np.subtract(b0, mx, out=beta_cur)
            beta_next, beta_cur = beta_cur, beta_next
    else:
        # Small batches (including the scalar wrapper's n_frames = 1):
        # per-step slabs are too small to amortise the fused pass's
        # extra ufunc calls, so keep beta whole and combine the
        # posterior in a few whole-array operations instead.
        beta = np.empty((n_steps + 1, n_frames, n_states))
        beta[n_steps] = _NEG_INF
        beta[n_steps, :, 0] = 0.0
        for t in range(n_steps - 1, -1, -1):
            row = beta[t + 1]
            gf = gamma_flat[t]
            prev = combine(row[:, succ0] + gf[:, leave0],
                           row[:, succ1] + gf[:, leave1])
            beta[t] = prev - prev.max(axis=-1, keepdims=True)
        score0 = (alpha[:-1] + gamma[:, :, :, 0]
                  + beta[1:][:, :, succ0])     # (T, F, S)
        score1 = (alpha[:-1] + gamma[:, :, :, 1]
                  + beta[1:][:, :, succ1])
        if variant == "log-map":
            num = _logsumexp_last(score1)
            den = _logsumexp_last(score0)
        else:
            num = score1.max(axis=-1)
            den = score0.max(axis=-1)

    posterior = num.T - den.T                  # (F, T), C-contiguous
    return BcjrBatchResult(posterior[:, : n_steps - code.n_tail_bits])
