"""Soft-output log-MAP (BCJR) decoder — the source of SoftPHY hints.

The BCJR algorithm [Bahl et al. 1974] computes, for every information
bit, the exact a-posteriori log-likelihood ratio

    LLR(k) = log P(x_k = 1 | r) - log P(x_k = 0 | r)

given the received channel observations ``r`` and the code constraints.
The SoftRate paper (section 3.1) defines the SoftPHY hint of bit ``k``
as ``|LLR(k)|`` and derives the per-bit error probability
``p_k = 1 / (1 + exp(|LLR(k)|))`` from it.

Two recursion flavours are provided:

* ``"log-map"`` — exact, using ``logaddexp`` (Jacobian logarithm);
* ``"max-log-map"`` — approximate, replacing log-sum-exp by max;
  faster, with slightly optimistic hint magnitudes (ablated in
  ``benchmarks/test_ablation_decoder.py``).

The recursions exploit the 2-regular trellis of a rate-1/2 code: every
state has exactly two predecessors and two successors, so each step is
a single vectorised binary combine over the state vector.
"""

from __future__ import annotations

import numpy as np

from repro.phy.convcode import ConvolutionalCode

__all__ = ["bcjr_decode", "BcjrResult"]

_NEG_INF = -1e30


class BcjrResult:
    """Output of the BCJR decoder.

    Attributes:
        llrs: a-posteriori LLR per information bit (tail stripped).
        bits: hard decisions, ``llrs >= 0`` (Eq. 2 of the paper).
    """

    __slots__ = ("llrs", "bits")

    def __init__(self, llrs: np.ndarray):
        self.llrs = llrs
        self.bits = (llrs >= 0).astype(np.uint8)


def bcjr_decode(code: ConvolutionalCode, channel_llrs: np.ndarray,
                variant: str = "log-map") -> BcjrResult:
    """Decode a terminated rate-1/2 coded stream with soft outputs.

    Args:
        code: the convolutional code.
        channel_llrs: depunctured channel LLRs, one per mother-code bit
            (``log P(r|c=1) - log P(r|c=0)``); punctured positions are 0.
        variant: ``"log-map"`` (exact) or ``"max-log-map"``.

    Returns:
        A :class:`BcjrResult` with per-information-bit posterior LLRs.
    """
    llrs = np.asarray(channel_llrs, dtype=np.float64)
    if llrs.size % 2 != 0:
        raise ValueError("channel LLR stream must have even length")
    n_steps = llrs.size // 2
    if n_steps <= code.n_tail_bits:
        raise ValueError("input shorter than the code's tail")
    if variant == "log-map":
        combine = np.logaddexp
    elif variant == "max-log-map":
        combine = np.maximum
    else:
        raise ValueError(f"unknown BCJR variant: {variant!r}")

    trellis = code.trellis
    n_states = trellis.n_states
    next_state = trellis.next_state            # (S, 2)
    prev_state = trellis.prev_state            # (S, 2)
    prev_input = trellis.prev_input            # (S, 2)

    # gamma[t, s, b] = c0 * L0[t] + c1 * L1[t] for that transition's
    # coded bits (terms independent of the transition cancel in LLRs).
    out = trellis.outputs.astype(np.float64)   # (S, 2, 2)
    pairs = llrs.reshape(n_steps, 2)
    gamma = (out[None, :, :, 0] * pairs[:, None, None, 0]
             + out[None, :, :, 1] * pairs[:, None, None, 1])  # (T, S, 2)
    gamma_flat = gamma.reshape(n_steps, 2 * n_states)

    # Column index into gamma_flat for the transition that enters state
    # s via its i-th predecessor (i = 0, 1).
    enter_col = prev_state * 2 + prev_input    # (S, 2)
    enter0, enter1 = enter_col[:, 0], enter_col[:, 1]
    pred0, pred1 = prev_state[:, 0], prev_state[:, 1]
    succ0, succ1 = next_state[:, 0], next_state[:, 1]
    leave0 = 2 * np.arange(n_states)           # transition (s, 0)
    leave1 = leave0 + 1                        # transition (s, 1)

    # Forward recursion.
    alpha = np.empty((n_steps + 1, n_states))
    alpha[0] = _NEG_INF
    alpha[0, 0] = 0.0
    for t in range(n_steps):
        row = alpha[t]
        gf = gamma_flat[t]
        nxt = combine(row[pred0] + gf[enter0], row[pred1] + gf[enter1])
        # Normalise to avoid drift; offsets cancel in the final LLR.
        alpha[t + 1] = nxt - nxt.max()

    # Backward recursion (terminated trellis: end in state 0).
    beta = np.empty((n_steps + 1, n_states))
    beta[n_steps] = _NEG_INF
    beta[n_steps, 0] = 0.0
    for t in range(n_steps - 1, -1, -1):
        row = beta[t + 1]
        gf = gamma_flat[t]
        prev = combine(row[succ0] + gf[leave0], row[succ1] + gf[leave1])
        beta[t] = prev - prev.max()

    # Posterior LLR per trellis step: combine over transitions with
    # input bit 1 minus transitions with input bit 0.  Transition
    # (s, b) runs from alpha[t, s] to beta[t + 1, next_state[s, b]].
    score0 = alpha[:-1] + gamma[:, :, 0] + beta[1:, succ0]   # (T, S)
    score1 = alpha[:-1] + gamma[:, :, 1] + beta[1:, succ1]
    if variant == "log-map":
        from scipy.special import logsumexp
        num = logsumexp(score1, axis=1)
        den = logsumexp(score0, axis=1)
    else:
        num = score1.max(axis=1)
        den = score0.max(axis=1)
    posterior = num - den
    return BcjrResult(posterior[: n_steps - code.n_tail_bits])
