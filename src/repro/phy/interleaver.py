"""Per-OFDM-symbol frequency interleaving.

802.11a interleaves the coded bits of each OFDM symbol across
subcarriers so that adjacent coded bits land on non-adjacent (in
frequency) subcarriers.  This mitigates frequency-selective fading —
but, as the paper notes (section 4), a collision still hits *all*
subcarriers of a symbol, which is exactly why per-symbol BER jumps
remain a reliable interference signature after interleaving.

We implement the standard two-permutation interleaver generalised to an
arbitrary block size (the paper's prototype uses 128-1024 subcarriers,
not 48).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["interleave", "deinterleave", "interleaver_permutation"]

_N_COLUMNS = 16


@lru_cache(maxsize=None)
def _permutation(block_size: int, bits_per_symbol: int) -> tuple:
    """Index map: output position -> input position, for one symbol."""
    if block_size % _N_COLUMNS != 0:
        raise ValueError(
            f"block size {block_size} not a multiple of {_N_COLUMNS}")
    s = max(bits_per_symbol // 2, 1)
    if block_size % s != 0:
        # Cannot happen for real layouts (block = bps * subcarriers is
        # always a multiple of s), but reject inconsistent inputs.
        raise ValueError(
            f"block size {block_size} not a multiple of s={s} for "
            f"{bits_per_symbol} bits/symbol")
    k = np.arange(block_size)
    # First permutation: write row-wise, read column-wise.
    i = (block_size // _N_COLUMNS) * (k % _N_COLUMNS) + k // _N_COLUMNS
    # Second permutation: rotate within groups of s so adjacent coded
    # bits map to different significance positions in the constellation.
    j = s * (i // s) + (i + block_size - (_N_COLUMNS * i // block_size)) % s
    perm = np.empty(block_size, dtype=np.int64)
    perm[j] = k
    return tuple(perm)


def interleaver_permutation(block_size: int,
                            bits_per_symbol: int) -> np.ndarray:
    """The permutation applied to each symbol's coded bits."""
    return np.array(_permutation(block_size, bits_per_symbol),
                    dtype=np.int64)


def interleave(bits: np.ndarray, block_size: int,
               bits_per_symbol: int) -> np.ndarray:
    """Interleave a coded stream symbol-block by symbol-block.

    The last-axis length must be a multiple of ``block_size`` (the
    number of coded bits per OFDM symbol).  A ``(n_frames, n_bits)``
    stack is interleaved row by row, preserving its shape.
    """
    bits = np.asarray(bits)
    if bits.shape[-1] % block_size != 0:
        raise ValueError(
            f"stream length {bits.shape[-1]} not a multiple of block "
            f"size {block_size}")
    perm = interleaver_permutation(block_size, bits_per_symbol)
    blocks = bits.reshape(-1, block_size)
    return blocks[:, perm].reshape(bits.shape)


def deinterleave(values: np.ndarray, block_size: int,
                 bits_per_symbol: int) -> np.ndarray:
    """Inverse of :func:`interleave`; works on bits or LLRs."""
    values = np.asarray(values)
    if values.shape[-1] % block_size != 0:
        raise ValueError(
            f"stream length {values.shape[-1]} not a multiple of block "
            f"size {block_size}")
    perm = interleaver_permutation(block_size, bits_per_symbol)
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(block_size)
    blocks = values.reshape(-1, block_size)
    return blocks[:, inverse].reshape(values.shape)
