"""Checked-in calibration tables for the surrogate PHY backend.

``default.json`` is generated from the full bit-exact PHY by
``repro calibrate`` (see :mod:`repro.phy.calibrate`) and shipped with
the source tree so ``--phy-backend surrogate`` works out of the box.
Regenerate after any change to the PHY numerics::

    PYTHONPATH=src python -m repro calibrate \
        --output src/repro/phy/calibration/default.json
"""

from __future__ import annotations

import os
from typing import Optional

from repro.phy.calibrate import CalibrationTable

__all__ = ["default_table", "default_fingerprint",
           "DEFAULT_CALIBRATION_PATH"]

#: Location of the checked-in default calibration table.
DEFAULT_CALIBRATION_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "default.json")

_CACHE: Optional[CalibrationTable] = None
_FINGERPRINT: Optional[str] = None


def default_table() -> CalibrationTable:
    """The checked-in calibration table (loaded once, then cached).

    Example::

        from repro.phy.calibration import default_table

        table = default_table()
        table.bit_error_rate(3, 8.0)    # calibrated BER lookup
    """
    global _CACHE
    if _CACHE is None:
        _CACHE = CalibrationTable.load(DEFAULT_CALIBRATION_PATH)
    return _CACHE


def default_fingerprint() -> str:
    """Short content digest of the checked-in calibration table.

    Surrogate-backend results depend on the table, so the experiment
    result cache folds this digest into its content hashes — a
    ``repro calibrate`` regeneration invalidates stale surrogate
    entries instead of silently serving them.

    Example::

        default_fingerprint()    # e.g. "1f2a0c9b83d4"
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import hashlib
        with open(DEFAULT_CALIBRATION_PATH, "rb") as fh:
            _FINGERPRINT = hashlib.sha256(fh.read()).hexdigest()[:12]
    return _FINGERPRINT
