"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["format_table"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.2e}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table (used by every benchmark)."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)
