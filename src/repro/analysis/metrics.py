"""Protocol performance metrics.

:func:`rate_selection_accuracy` implements the Fig. 14/18 metric: for
every transmitted frame, compare the rate the protocol picked against
"the highest bit rate that would have gotten the frame through at that
time" (the omniscient choice from the trace).

:func:`run_lengths` measures runs of consecutive events (Fig. 4's
consecutive silent losses).

:func:`per_hop_delivery` and :func:`handoff_disruption` are the mesh
metrics: per-link frame delivery along a relay chain, and how long
traffic stalls around an AP handoff.

:func:`decodable_frame_rate`, :func:`rebuffer_time` and
:func:`deadline_miss_ratio` are the video QoE metrics consumed by the
``video`` experiment: what fraction of frames became decodable at
all, how long playback stalled waiting for late frames (with stalls
cascading into every later deadline), and how many frames missed
their original playout deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.sim.mac import FrameLogEntry
from repro.traces.format import LinkTrace

__all__ = ["RateAccuracy", "rate_selection_accuracy", "run_lengths",
           "ccdf", "settling_time", "frame_log_digest",
           "per_hop_delivery", "handoff_disruption",
           "decodable_frame_rate", "rebuffer_time",
           "deadline_miss_ratio"]


@dataclass(frozen=True)
class RateAccuracy:
    """Fractions of frames over-, accurately-, and under-selected."""

    overselect: float
    accurate: float
    underselect: float
    n_frames: int

    def as_dict(self) -> dict:
        return {"overselect": self.overselect, "accurate": self.accurate,
                "underselect": self.underselect}


def rate_selection_accuracy(log: Sequence[FrameLogEntry],
                            trace: LinkTrace) -> RateAccuracy:
    """Compare each logged transmission against the omniscient rate.

    Frames sent while *no* rate would have succeeded are skipped (no
    meaningful "correct" choice exists), matching the paper's per-frame
    comparison "against the highest bit rate that would have gotten the
    frame through".
    """
    over = acc = under = 0
    for entry in log:
        best = trace.best_rate_at(entry.time)
        if best is None:
            continue
        if entry.rate_index > best:
            over += 1
        elif entry.rate_index == best:
            acc += 1
        else:
            under += 1
    n = over + acc + under
    if n == 0:
        return RateAccuracy(0.0, 0.0, 0.0, 0)
    return RateAccuracy(overselect=over / n, accurate=acc / n,
                        underselect=under / n, n_frames=n)


def settling_time(log: Sequence[FrameLogEntry],
                  target_rate: Optional[int] = None,
                  settle_window: int = 20,
                  settle_fraction: float = 0.8) -> float:
    """Seconds until a station's rate choice settles on its steady rate.

    ``target_rate`` defaults to the modal rate of the log's second
    half — the rate the adapter eventually lives at.  "Settled" uses
    the Fig. 15 criterion: from some transmission on, at least
    ``settle_fraction`` of the next ``settle_window`` frames use the
    target.  Only full windows count (clamped to the log length for
    short logs), so a protocol that merely *ends* on the target —
    e.g. a persistent A,B,A,B oscillation whose last frame happens to
    be the modal rate — is not scored as converged.  Returns NaN for
    an empty log or one that never settles.
    """
    if not log:
        return float("nan")
    rates = np.array([entry.rate_index for entry in log])
    times = np.array([entry.time for entry in log])
    if target_rate is None:
        tail = rates[len(rates) // 2:]
        values, counts = np.unique(tail, return_counts=True)
        target_rate = int(values[np.argmax(counts)])
    hits = rates == target_rate
    window_size = min(settle_window, len(times))
    for i in range(len(times) - window_size + 1):
        window = hits[i:i + window_size]
        if window.mean() >= settle_fraction:
            return float(times[i] - times[0])
    return float("nan")


def frame_log_digest(frame_logs) -> int:
    """Order-independent-input, content-exact digest of frame logs.

    Folds every :class:`FrameLogEntry` of every station (stations
    visited in sorted id order) into a 48-bit integer — exactly
    representable as a float, so it can ride along in a scalar metric
    dict.  Two simulations produce the same digest iff their complete
    frame logs are identical, which is what the campaign determinism
    wall asserts across serial/pooled/sharded execution.
    """
    import hashlib

    h = hashlib.sha256()
    for sid in sorted(frame_logs):
        h.update(f"station={sid}\n".encode())
        for e in frame_logs[sid]:
            h.update((f"{e.time!r},{e.src},{e.dest},{e.rate_index},"
                      f"{e.kind},{e.delivered},{e.retry}\n").encode())
    return int.from_bytes(h.digest()[:6], "big")


def per_hop_delivery(frame_logs: Mapping[int, Sequence[FrameLogEntry]],
                     hops: Sequence[Tuple[int, int]]) -> List[float]:
    """Frame delivery fraction of each directed MAC hop.

    For every ``(src, dest)`` pair in ``hops``, counts the source's
    logged transmission attempts toward ``dest`` and the fraction that
    delivered.  Retransmissions count as separate attempts, so this is
    *link-layer* delivery — the per-hop quantity whose product bounds
    end-to-end delivery along a relay chain.  Hops with no attempts
    score NaN (a roaming client may never use a distant AP).
    """
    out = []
    for src, dest in hops:
        log = frame_logs.get(src, ())
        attempts = [e for e in log if e.dest == dest]
        if not attempts:
            out.append(float("nan"))
            continue
        delivered = sum(1 for e in attempts if e.delivered)
        out.append(delivered / len(attempts))
    return out


def handoff_disruption(delivery_times: Sequence[float],
                       handoff_times: Sequence[float],
                       duration: float) -> float:
    """Mean seconds of end-to-end delivery stall around AP handoffs.

    For each handoff, the disruption is the gap between the last
    delivery at or before it (simulation start if none) and the first
    delivery after it (``duration`` if traffic never resumes) — the
    window in which the flow was dark while the client switched APs.
    Returns NaN when no handoffs occurred, so campaigns can average
    the metric over only the scenarios where roaming happened.
    """
    if not handoff_times:
        return float("nan")
    times = np.sort(np.asarray(delivery_times, dtype=np.float64))
    gaps = []
    for handoff in handoff_times:
        before = times[times <= handoff]
        after = times[times > handoff]
        last = float(before[-1]) if before.size else 0.0
        first = float(after[0]) if after.size else float(duration)
        gaps.append(first - last)
    return float(np.mean(gaps))


def decodable_frame_rate(decode_times: Sequence[Optional[float]]
                         ) -> float:
    """Fraction of video frames that ever became decodable.

    ``decode_times`` holds, per frame in display order, the time the
    rateless decoder crossed its threshold — or ``None`` for frames
    that never decoded.  Returns NaN for an empty sequence.
    """
    if not decode_times:
        return float("nan")
    decoded = sum(1 for t in decode_times if t is not None)
    return decoded / len(decode_times)


def rebuffer_time(decode_times: Sequence[Optional[float]],
                  deadlines: Sequence[float]) -> float:
    """Total seconds of playback stall, stalls cascading.

    The player walks frames in display order carrying an accumulated
    delay: frame ``i`` plays at ``deadlines[i] + delay``; if its
    decode completed later than that, the difference is a rebuffer
    stall added to both the total and the carried delay (a late frame
    pushes every later deadline back — the standard streaming QoE
    model).  Frames that never decoded are skipped: the player drops
    them rather than waiting forever, so they hurt
    :func:`decodable_frame_rate` but not this metric.
    """
    if len(decode_times) != len(deadlines):
        raise ValueError("decode_times and deadlines must align")
    delay = 0.0
    total = 0.0
    for done, deadline in zip(decode_times, deadlines):
        if done is None:
            continue
        stall = done - (deadline + delay)
        if stall > 0:
            total += stall
            delay += stall
    return total


def deadline_miss_ratio(decode_times: Sequence[Optional[float]],
                        deadlines: Sequence[float]) -> float:
    """Fraction of frames not decodable by their original deadline.

    A frame counts as missed when it never decoded or decoded after
    its own (non-cascaded) playout deadline.  Returns NaN for an
    empty sequence.
    """
    if len(decode_times) != len(deadlines):
        raise ValueError("decode_times and deadlines must align")
    if not deadlines:
        return float("nan")
    missed = sum(1 for done, deadline in zip(decode_times, deadlines)
                 if done is None or done > deadline)
    return missed / len(deadlines)


def run_lengths(events: Iterable[bool]) -> List[int]:
    """Lengths of runs of consecutive True values."""
    lengths = []
    current = 0
    for event in events:
        if event:
            current += 1
        elif current:
            lengths.append(current)
            current = 0
    if current:
        lengths.append(current)
    return lengths


def ccdf(values: Sequence[float]) -> List[tuple]:
    """Complementary CDF points ``(x, P(X >= x))`` (Fig. 4's y-axis)."""
    values = sorted(values)
    n = len(values)
    if n == 0:
        return []
    out = []
    seen = set()
    for i, v in enumerate(values):
        if v in seen:
            continue
        seen.add(v)
        out.append((v, (n - i) / n))
    return out
