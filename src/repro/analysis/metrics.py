"""Protocol performance metrics.

:func:`rate_selection_accuracy` implements the Fig. 14/18 metric: for
every transmitted frame, compare the rate the protocol picked against
"the highest bit rate that would have gotten the frame through at that
time" (the omniscient choice from the trace).

:func:`run_lengths` measures runs of consecutive events (Fig. 4's
consecutive silent losses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.sim.mac import FrameLogEntry
from repro.traces.format import LinkTrace

__all__ = ["RateAccuracy", "rate_selection_accuracy", "run_lengths",
           "ccdf"]


@dataclass(frozen=True)
class RateAccuracy:
    """Fractions of frames over-, accurately-, and under-selected."""

    overselect: float
    accurate: float
    underselect: float
    n_frames: int

    def as_dict(self) -> dict:
        return {"overselect": self.overselect, "accurate": self.accurate,
                "underselect": self.underselect}


def rate_selection_accuracy(log: Sequence[FrameLogEntry],
                            trace: LinkTrace) -> RateAccuracy:
    """Compare each logged transmission against the omniscient rate.

    Frames sent while *no* rate would have succeeded are skipped (no
    meaningful "correct" choice exists), matching the paper's per-frame
    comparison "against the highest bit rate that would have gotten the
    frame through".
    """
    over = acc = under = 0
    for entry in log:
        best = trace.best_rate_at(entry.time)
        if best is None:
            continue
        if entry.rate_index > best:
            over += 1
        elif entry.rate_index == best:
            acc += 1
        else:
            under += 1
    n = over + acc + under
    if n == 0:
        return RateAccuracy(0.0, 0.0, 0.0, 0)
    return RateAccuracy(overselect=over / n, accurate=acc / n,
                        underselect=under / n, n_frames=n)


def run_lengths(events: Iterable[bool]) -> List[int]:
    """Lengths of runs of consecutive True values."""
    lengths = []
    current = 0
    for event in events:
        if event:
            current += 1
        elif current:
            lengths.append(current)
            current = 0
    if current:
        lengths.append(current)
    return lengths


def ccdf(values: Sequence[float]) -> List[tuple]:
    """Complementary CDF points ``(x, P(X >= x))`` (Fig. 4's y-axis)."""
    values = sorted(values)
    n = len(values)
    if n == 0:
        return []
    out = []
    seen = set()
    for i, v in enumerate(values):
        if v in seen:
            continue
        seen.add(v)
        out.append((v, (n - i) / n))
    return out
