"""Aggregation of per-replicate scalar metrics.

The experiment runner reduces each replicate (one seed of one
scenario) to a flat ``{metric: float}`` dict; these helpers combine
replicates into the aggregate row an :class:`ExperimentResult`
reports.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

__all__ = ["aggregate_metrics", "metric_union"]


def metric_union(per_seed: Sequence[Mapping[str, float]]) -> List[str]:
    """All metric keys across replicates, in first-seen order."""
    seen: Dict[str, None] = {}
    for metrics in per_seed:
        for key in metrics:
            seen.setdefault(key, None)
    return list(seen)


def aggregate_metrics(per_seed: Sequence[Mapping[str, float]]
                      ) -> Dict[str, float]:
    """Mean of each metric across replicates, ignoring NaNs.

    A metric missing from a replicate (or NaN there) is excluded from
    that metric's mean; a metric with no finite observations at all
    aggregates to NaN so its absence stays visible in reports.
    """
    out: Dict[str, float] = {}
    for key in metric_union(per_seed):
        values = [float(m[key]) for m in per_seed
                  if key in m and not math.isnan(float(m[key]))]
        out[key] = (sum(values) / len(values)) if values \
            else float("nan")
    return out
