"""Aggregation of per-replicate scalar metrics and tidy tables.

The experiment runner reduces each replicate (one seed of one
scenario) to a flat ``{metric: float}`` dict; these helpers combine
replicates into the aggregate row an :class:`ExperimentResult`
reports.  The campaign engine reuses the same reductions for its
summaries, plus :func:`group_rows` for grouped means over tidy
per-scenario rows.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["aggregate_metrics", "metric_union", "group_rows"]


def metric_union(per_seed: Sequence[Mapping[str, float]]) -> List[str]:
    """All metric keys across replicates, in first-seen order."""
    seen: Dict[str, None] = {}
    for metrics in per_seed:
        for key in metrics:
            seen.setdefault(key, None)
    return list(seen)


def aggregate_metrics(per_seed: Sequence[Mapping[str, float]]
                      ) -> Dict[str, float]:
    """Mean of each metric across replicates, ignoring NaNs.

    A metric missing from a replicate (or NaN there) is excluded from
    that metric's mean; a metric with no finite observations at all
    aggregates to NaN so its absence stays visible in reports.
    """
    out: Dict[str, float] = {}
    for key in metric_union(per_seed):
        values = [float(m[key]) for m in per_seed
                  if key in m and not math.isnan(float(m[key]))]
        out[key] = (sum(values) / len(values)) if values \
            else float("nan")
    return out


def _as_float(value: Any) -> float:
    """A row cell as a float; None (canonical NaN) decodes to NaN."""
    if value is None:
        return float("nan")
    return float(value)


def _is_numeric(value: Any) -> bool:
    return value is None or (isinstance(value, (int, float))
                             and not isinstance(value, bool))


def _value_sort_key(value: Any):
    """Mixed-type total order: None, then numbers (numerically), then
    booleans and strings (lexicographically)."""
    if value is None:
        return (0, 0.0, "")
    if _is_numeric(value):
        return (1, float(value), "")
    return (2, 0.0, str(value))


def group_rows(rows: Sequence[Mapping[str, Any]],
               keys: Sequence[str],
               metrics: Optional[Sequence[str]] = None
               ) -> List[Dict[str, Any]]:
    """Grouped nan-aware metric means over tidy per-scenario rows.

    Each output entry carries the group's key values, the member count
    ``n``, and the mean of every metric across the group (NaN-encoded
    as None when a metric has no finite observations there).  Groups
    come out in a deterministic order — sorted by key values, numbers
    numerically — and rows are averaged in input order, so identical
    row sets produce identical output bytes.

    When ``metrics`` is omitted it defaults to the columns (outside
    the grouping keys, the ``index``/``scenario_id``/``seed``
    bookkeeping, and ``*_digest`` identity hashes) whose values are
    numeric in every row — pass it explicitly to keep numeric
    *parameter* columns out of the means.

    Example::

        group_rows(rows, ["protocol"], ["mbps"])
        # [{"protocol": "rraa", "n": 24, "mbps": 3.1}, ...]
    """
    if metrics is None:
        reserved = set(keys) | {"index", "scenario_id", "seed"}
        metrics = [k for k in metric_union(rows)
                   if k not in reserved
                   and not k.endswith("_digest")
                   and all(_is_numeric(r[k]) for r in rows
                           if k in r)]
    grouped: Dict[str, Dict[str, Any]] = {}
    members: Dict[str, List[Mapping[str, Any]]] = {}
    for row in rows:
        key_values = {k: row.get(k) for k in keys}
        key = json.dumps(key_values, sort_keys=True, default=str)
        grouped.setdefault(key, key_values)
        members.setdefault(key, []).append(row)
    ordered = sorted(
        grouped,
        key=lambda k: [_value_sort_key(grouped[k][name])
                       for name in keys])
    out: List[Dict[str, Any]] = []
    for key in ordered:
        entry: Dict[str, Any] = dict(grouped[key])
        entry["n"] = len(members[key])
        for metric in metrics:
            values = [_as_float(r.get(metric)) for r in members[key]
                      if metric in r]
            finite = [v for v in values if not math.isnan(v)]
            mean = (sum(finite) / len(finite)) if finite \
                else float("nan")
            entry[metric] = None if math.isnan(mean) else mean
        out.append(entry)
    return out

