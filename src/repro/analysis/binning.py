"""Binning utilities for the BER-estimation figures (Fig. 7, 8).

The paper bins frames "in fixed-sized bins of 0.1 units in the SoftPHY
metric (roughly logarithmically-sized bins of the estimated BER)" and
plots mean ground-truth BER per bin; for Fig. 7(b) it aggregates all
bits of each bin to resolve BERs far below what one frame can measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["log_bin_ber", "aggregate_bits_per_bin", "BinnedBer"]


@dataclass(frozen=True)
class BinnedBer:
    """One bin of the estimated-vs-true BER comparison."""

    estimate_center: float
    mean_true: float
    std_true: float
    n_frames: int


def log_bin_ber(estimates: Sequence[float], truths: Sequence[float],
                decades_per_bin: float = 0.25,
                min_frames: int = 3) -> List[BinnedBer]:
    """Bin per-frame (estimate, truth) pairs by log10(estimate).

    Args:
        estimates: per-frame estimated BER.
        truths: per-frame ground-truth BER.
        decades_per_bin: bin width in decades of estimated BER.
        min_frames: bins with fewer frames are dropped.
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    truths = np.asarray(truths, dtype=np.float64)
    if estimates.shape != truths.shape:
        raise ValueError("estimates and truths must align")
    if estimates.size == 0:
        return []
    logs = np.log10(np.clip(estimates, 1e-15, 1.0))
    indices = np.floor(logs / decades_per_bin).astype(int)
    out = []
    for idx in np.unique(indices):
        mask = indices == idx
        if mask.sum() < min_frames:
            continue
        center = 10.0 ** ((idx + 0.5) * decades_per_bin)
        out.append(BinnedBer(
            estimate_center=float(center),
            mean_true=float(truths[mask].mean()),
            std_true=float(truths[mask].std()),
            n_frames=int(mask.sum())))
    return out


def aggregate_bits_per_bin(estimates: Sequence[float],
                           error_counts: Sequence[int],
                           bits_per_frame: int,
                           decades_per_bin: float = 0.25
                           ) -> List[Tuple[float, float, int]]:
    """Fig. 7(b): pool the bits of all frames in each estimate bin.

    Args:
        estimates: per-frame estimated BER.
        error_counts: per-frame ground-truth bit error counts.
        bits_per_frame: frame size in bits.
        decades_per_bin: bin width.

    Returns:
        List of ``(bin_center_estimate, aggregated_true_ber,
        total_bits)`` tuples; bins resolve true BERs down to roughly
        ``1 / total_bits``.
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    error_counts = np.asarray(error_counts, dtype=np.int64)
    if estimates.shape != error_counts.shape:
        raise ValueError("estimates and error counts must align")
    logs = np.log10(np.clip(estimates, 1e-15, 1.0))
    indices = np.floor(logs / decades_per_bin).astype(int)
    out = []
    for idx in np.unique(indices):
        mask = indices == idx
        total_bits = int(mask.sum()) * bits_per_frame
        total_errors = int(error_counts[mask].sum())
        center = 10.0 ** ((idx + 0.5) * decades_per_bin)
        out.append((float(center), total_errors / total_bits, total_bits))
    return out
