"""Result analysis: binning, metrics, aggregation, table rendering."""

from repro.analysis.aggregate import aggregate_metrics, metric_union
from repro.analysis.binning import log_bin_ber, aggregate_bits_per_bin
from repro.analysis.metrics import (RateAccuracy, rate_selection_accuracy,
                                    run_lengths)
from repro.analysis.tables import format_table

__all__ = [
    "aggregate_metrics",
    "metric_union",
    "log_bin_ber",
    "aggregate_bits_per_bin",
    "RateAccuracy",
    "rate_selection_accuracy",
    "run_lengths",
    "format_table",
]
