"""Result analysis: binning, metrics, and table rendering."""

from repro.analysis.binning import log_bin_ber, aggregate_bits_per_bin
from repro.analysis.metrics import (RateAccuracy, rate_selection_accuracy,
                                    run_lengths)
from repro.analysis.tables import format_table

__all__ = [
    "log_bin_ber",
    "aggregate_bits_per_bin",
    "RateAccuracy",
    "rate_selection_accuracy",
    "run_lengths",
    "format_table",
]
