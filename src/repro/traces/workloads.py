"""The Table 4 experiment presets.

Each function configures the workload of one row of the paper's
Table 4 ("A summary of the experiments used to evaluate SoftPHY and
SoftRate") and returns ready-to-use traces or generator parameters.
Scale factors (trace lengths, frame counts) are reduced relative to
the paper's testbed where noted; EXPERIMENTS.md records the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.channel.mobility import WalkingTrajectory
from repro.traces.format import LinkTrace
from repro.traces.generate import generate_fading_trace

__all__ = ["ExperimentPreset", "static_experiment", "walking_experiment",
           "simulation_experiment", "walking_traces",
           "simulation_traces", "static_short_range_traces"]


@dataclass(frozen=True)
class ExperimentPreset:
    """Parameters of one Table 4 row."""

    name: str
    description: str
    tx_powers_db: tuple
    n_runs: int
    doppler_hz: float
    duration: float


def static_experiment(n_powers: int = 20) -> ExperimentPreset:
    """Table 4 "Static": six static pairs, 20 tx powers, 6 bit rates."""
    return ExperimentPreset(
        name="static",
        description="static sender-receiver pairs, long range mode",
        tx_powers_db=tuple(np.linspace(0.0, 19.0, n_powers)),
        n_runs=6, doppler_hz=0.5, duration=1.0)


def walking_experiment() -> ExperimentPreset:
    """Table 4 "Walking": sender walking away, 10 runs of 10 s."""
    return ExperimentPreset(
        name="walking",
        description="walking-speed mobility, short range mode",
        tx_powers_db=(10.0,), n_runs=10, doppler_hz=40.0, duration=10.0)


def simulation_experiment(doppler_hz: float) -> ExperimentPreset:
    """Table 4 "Simulation": GNU Radio fading simulator, 40 Hz-4 kHz."""
    if not 40.0 <= doppler_hz <= 4000.0:
        raise ValueError("paper sweeps Doppler 40 Hz to 4 kHz")
    return ExperimentPreset(
        name=f"simulation_{int(doppler_hz)}hz",
        description="fading channel simulator at fixed Doppler spread",
        tx_powers_db=tuple(np.linspace(0.0, 19.0, 20)),
        n_runs=1, doppler_hz=doppler_hz, duration=2.0)


def walking_traces(n_links: int, duration: float = 10.0,
                   seed: int = 2009, payload_bits: int = 11200
                   ) -> List[LinkTrace]:
    """The ten walking traces used to model links in section 6.2.

    Each link gets an independent walking trajectory (independent
    fading realisation and start distance) but the same statistics.
    """
    traces = []
    for link in range(n_links):
        rng = np.random.default_rng(seed + link)
        trajectory = WalkingTrajectory(
            rng, start_distance=float(rng.uniform(4.0, 8.0)),
            speed=1.2, doppler_hz=40.0)
        traces.append(generate_fading_trace(
            rng, duration=duration, mean_snr_db=trajectory.mean_snr_db,
            doppler_hz=40.0, payload_bits=payload_bits))
    return traces


def simulation_traces(doppler_hz: float, n_links: int = 1,
                      duration: float = 5.0, mean_snr_db: float = 18.0,
                      seed: int = 2009, payload_bits: int = 11200
                      ) -> List[LinkTrace]:
    """Fast-fading simulator traces for section 6.3 (fixed Doppler)."""
    traces = []
    for link in range(n_links):
        rng = np.random.default_rng(seed + 100 + link)
        traces.append(generate_fading_trace(
            rng, duration=duration,
            mean_snr_db=lambda t: mean_snr_db,
            doppler_hz=doppler_hz, payload_bits=payload_bits))
    return traces


def static_short_range_traces(n_links: int, duration: float = 10.0,
                              mean_snr_db: float = 16.0, seed: int = 2009,
                              payload_bits: int = 11200) -> List[LinkTrace]:
    """Static short-range traces for the interference study (6.4).

    A static channel (residual Doppler from environmental motion only)
    where a mid-table rate is the steady optimum; collisions are then
    injected by the MAC simulation, not the trace.
    """
    traces = []
    for link in range(n_links):
        rng = np.random.default_rng(seed + 200 + link)
        traces.append(generate_fading_trace(
            rng, duration=duration,
            mean_snr_db=lambda t: mean_snr_db,
            doppler_hz=1.0, payload_bits=payload_bits))
    return traces
