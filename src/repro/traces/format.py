"""The link trace container used by the trace-driven simulator.

A :class:`LinkTrace` captures one unidirectional wireless link: for
each time slot and each available bit rate it records the fate a frame
sent then would meet — exactly the role of the paper's software-radio
packet traces in its ns-3 evaluation (section 6.1).

Consistency across rates is guaranteed by construction: all rates are
evaluated against the *same* fading realisation, mirroring the paper's
round-robin trace collection ("the channel is fairly invariant across
all the bit rates in a 5 ms snapshot").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.mix import uniform01

__all__ = ["FrameObservation", "LinkTrace"]


@dataclass(frozen=True)
class FrameObservation:
    """What happens to one frame sent at a given time and rate.

    Attributes:
        detected: the receiver found the preamble (if False, the frame
            is a *silent loss* — no feedback of any kind).
        delivered: all info bits correct (body CRC would pass).
        ber_true: ground-truth channel BER for the frame.
        ber_est: the BER estimate the SoftPHY receiver would feed back.
        snr_db: the preamble SNR estimate the receiver would report.
        slot: the trace slot index that produced this observation.
    """

    detected: bool
    delivered: bool
    ber_true: float
    ber_est: float
    snr_db: float
    slot: int


class LinkTrace:
    """Per-slot, per-rate channel state of one unidirectional link.

    Args:
        slot_duration: seconds per trace slot (5 ms by default,
            matching the paper's cross-rate consistency window).
        snr_db: array ``(n_slots,)`` — preamble SNR estimate per slot.
        detected: bool array ``(n_slots,)`` — preamble detectable.
        ber_true: array ``(n_rates, n_slots)`` — ground-truth BER.
        ber_est: array ``(n_rates, n_slots)`` — SoftPHY BER estimate.
        delivered: bool array ``(n_rates, n_slots)`` — frame success.
        rate_names: labels for the rate axis (for provenance).
        true_snr_db: optional array ``(n_slots,)`` — the *noiseless*
            instantaneous channel SNR per slot.  Pluggable PHY
            backends (:mod:`repro.phy.backend`) recompute frame fates
            from this trajectory instead of the precomputed columns;
            traces without it fall back to the noisy ``snr_db``
            estimate.

    Lookups past the end of the trace wrap around, so a short trace can
    drive an arbitrarily long simulation (the standard trace-driven
    simulation convention).
    """

    def __init__(self, slot_duration: float, snr_db: np.ndarray,
                 detected: np.ndarray, ber_true: np.ndarray,
                 ber_est: np.ndarray, delivered: np.ndarray,
                 rate_names: Optional[List[str]] = None,
                 loss_prob: Optional[np.ndarray] = None,
                 true_snr_db: Optional[np.ndarray] = None):
        if slot_duration <= 0:
            raise ValueError("slot duration must be positive")
        snr_db = np.asarray(snr_db, dtype=np.float64)
        detected = np.asarray(detected, dtype=bool)
        ber_true = np.asarray(ber_true, dtype=np.float64)
        ber_est = np.asarray(ber_est, dtype=np.float64)
        delivered = np.asarray(delivered, dtype=bool)
        n_rates, n_slots = ber_true.shape
        if n_slots == 0:
            raise ValueError("trace must have at least one slot")
        if loss_prob is None:
            # Degenerate traces (synthetic): the slot outcome is the
            # outcome of every attempt in the slot.
            loss_prob = 1.0 - delivered.astype(np.float64)
        loss_prob = np.asarray(loss_prob, dtype=np.float64)
        if true_snr_db is not None:
            true_snr_db = np.asarray(true_snr_db, dtype=np.float64)
        checks = [
            ("snr_db", snr_db, (n_slots,)),
            ("detected", detected, (n_slots,)),
            ("ber_est", ber_est, (n_rates, n_slots)),
            ("delivered", delivered, (n_rates, n_slots)),
            ("loss_prob", loss_prob, (n_rates, n_slots)),
        ]
        if true_snr_db is not None:
            checks.append(("true_snr_db", true_snr_db, (n_slots,)))
        for name, arr, shape in checks:
            if arr.shape != shape:
                raise ValueError(f"{name} has shape {arr.shape}, "
                                 f"expected {shape}")
        if np.any((loss_prob < 0) | (loss_prob > 1)):
            raise ValueError("loss probabilities must lie in [0, 1]")
        self.slot_duration = slot_duration
        self.snr_db = snr_db
        self.detected = detected
        self.ber_true = ber_true
        self.ber_est = ber_est
        self.delivered = delivered
        self.loss_prob = loss_prob
        self.true_snr_db = true_snr_db
        self.rate_names = rate_names or [f"rate{i}" for i in range(n_rates)]

    @property
    def n_rates(self) -> int:
        return self.ber_true.shape[0]

    @property
    def n_slots(self) -> int:
        return self.ber_true.shape[1]

    @property
    def duration(self) -> float:
        """Length of the trace in seconds."""
        return self.n_slots * self.slot_duration

    def slot_at(self, time: float) -> int:
        """The slot index covering ``time`` (wrapping at the end)."""
        if time < 0:
            raise ValueError("time must be non-negative")
        return int(time / self.slot_duration) % self.n_slots

    def observe(self, time: float, rate_index: int) -> FrameObservation:
        """The fate of a frame sent at ``time`` at ``rate_index``.

        The delivery outcome is a fresh (but deterministic) draw from
        the slot's loss probability, keyed by the exact transmission
        time: two attempts in the same 5 ms slot are distinct channel
        realisations, so a retransmission is not doomed to repeat its
        predecessor's fate.  The same (time, rate) always returns the
        same outcome, keeping simulations reproducible.
        """
        if not 0 <= rate_index < self.n_rates:
            raise ValueError(f"rate index {rate_index} outside trace "
                             f"({self.n_rates} rates)")
        slot = self.slot_at(time)
        detected = bool(self.detected[slot])
        loss_p = float(self.loss_prob[rate_index, slot])
        if loss_p <= 0.0:
            delivered = True
        elif loss_p >= 1.0:
            delivered = False
        else:
            # Keyed deterministic draw on (slot, rate, 100 ns-quantised
            # time) — a hash, not a Generator, as this is a per-frame
            # hot path (see repro.core.mix).
            draw = uniform01(slot, rate_index, int(round(time * 1e7)))
            delivered = draw >= loss_p
        return FrameObservation(
            detected=detected,
            delivered=detected and delivered,
            ber_true=float(self.ber_true[rate_index, slot]),
            ber_est=float(self.ber_est[rate_index, slot]),
            snr_db=float(self.snr_db[slot]),
            slot=slot)

    def best_rate_at(self, time: float) -> Optional[int]:
        """Omniscient choice: the highest rate delivered in this slot.

        Returns ``None`` when no rate gets through (the omniscient
        sender would defer).
        """
        slot = self.slot_at(time)
        if not self.detected[slot]:
            return None
        winners = np.where(self.delivered[:, slot])[0]
        if winners.size == 0:
            return None
        return int(winners.max())

    def save(self, path) -> None:
        """Persist to an ``.npz`` file."""
        arrays = dict(
            slot_duration=self.slot_duration, snr_db=self.snr_db,
            detected=self.detected, ber_true=self.ber_true,
            ber_est=self.ber_est, delivered=self.delivered,
            loss_prob=self.loss_prob,
            rate_names=np.array(self.rate_names))
        if self.true_snr_db is not None:
            arrays["true_snr_db"] = self.true_snr_db
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path) -> "LinkTrace":
        """Load a trace saved with :meth:`save`.

        Traces written before the ``true_snr_db`` column existed load
        fine — the field simply stays ``None``.
        """
        with np.load(path) as data:
            true_snr = data["true_snr_db"] \
                if "true_snr_db" in data.files else None
            return cls(slot_duration=float(data["slot_duration"]),
                       snr_db=data["snr_db"], detected=data["detected"],
                       ber_true=data["ber_true"], ber_est=data["ber_est"],
                       delivered=data["delivered"],
                       loss_prob=data["loss_prob"],
                       rate_names=[str(n) for n in data["rate_names"]],
                       true_snr_db=true_snr)
