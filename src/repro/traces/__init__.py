"""Channel traces for trace-driven link simulation.

The paper evaluates SoftRate by replacing ns-3's PHY with packet traces
collected from its software-radio prototype (section 6.1): for each
link and each bit rate, the trace specifies — for every point in time —
whether a frame sent then would be received, and what its SNR and
SoftPHY feedback would be.  We reproduce that methodology:

* :mod:`repro.traces.format` — the :class:`LinkTrace` container and
  per-frame :class:`FrameObservation` lookup;
* :mod:`repro.traces.analytic` — a fast modulation/coding performance
  model (uncoded BER formulas + soft-decision union bound for the K=7
  punctured code), validated against the full PHY pipeline in
  ``tests/traces/test_analytic.py``;
* :mod:`repro.traces.generate` — trace generation, either through the
  full PHY (bit-exact, slow) or the analytic model (fast, used for the
  network-scale experiments);
* :mod:`repro.traces.synthetic` — hand-built traces such as the
  good/bad alternating channel of Fig. 15;
* :mod:`repro.traces.workloads` — the Table 4 experiment presets;
* :mod:`repro.traces.video` — the deadline-annotated GoP video
  workload feeding the rateless pipeline.
"""

from repro.traces.format import FrameObservation, LinkTrace
from repro.traces.generate import (generate_fading_trace,
                                   generate_full_phy_trace)
from repro.traces.synthetic import alternating_trace, constant_trace
from repro.traces.video import (VideoFrame, VideoTrace,
                                generate_video_trace,
                                reference_video_trace)

__all__ = [
    "FrameObservation",
    "LinkTrace",
    "generate_fading_trace",
    "generate_full_phy_trace",
    "alternating_trace",
    "constant_trace",
    "VideoFrame",
    "VideoTrace",
    "generate_video_trace",
    "reference_video_trace",
]
