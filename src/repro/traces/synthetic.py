"""Hand-built synthetic traces.

:func:`alternating_trace` reproduces the paper's Fig. 15 setup: "the
channel alternates between a 'good' state (best transmit bit rate is
QAM16 3/4) and a 'bad' state (best transmit bit rate is QAM16 1/2)
every 1 second" — used to measure the convergence time of frame-level
protocols after a sharp channel change.

:func:`constant_trace` builds a time-invariant channel where a chosen
rate is optimal; useful in unit tests and the interference experiments
(which want a static channel so the interference effect is isolated).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.phy.rates import RATE_TABLE, RateTable
from repro.traces.format import LinkTrace

__all__ = ["constant_trace", "alternating_trace"]

#: BER at the best usable rate.  Chosen inside the optimal band
#: (alpha, beta) of the frame-ARQ thresholds for 1400-byte frames, so
#: a BER-driven protocol holds the best rate stably; rates further
#: down improve by the factor-10 separation heuristic.
_BER_AT_BEST = 1e-5
_SEPARATION = 10.0
#: BER reported for rates above the best usable rate.
_BER_BAD = 3e-2


def _column(best_rate: int, n_rates: int) -> tuple:
    """Per-rate (ber, delivered) for a slot whose best rate is given."""
    bers = np.empty(n_rates)
    delivered = np.zeros(n_rates, dtype=bool)
    for r in range(n_rates):
        if r <= best_rate:
            bers[r] = _BER_AT_BEST / _SEPARATION ** (best_rate - r)
            delivered[r] = True
        else:
            bers[r] = min(0.5, _BER_BAD * _SEPARATION ** (r - best_rate - 1))
            delivered[r] = False
    return bers, delivered


def constant_trace(best_rate: int, duration: float = 10.0,
                   slot_duration: float = 5e-3,
                   snr_db: float = 25.0,
                   rates: Optional[RateTable] = None) -> LinkTrace:
    """A static channel whose optimal rate never changes."""
    rates = rates if rates is not None else RATE_TABLE.prototype_subset()
    if not 0 <= best_rate < len(rates):
        raise ValueError(f"best rate {best_rate} outside the table")
    n_slots = max(1, int(round(duration / slot_duration)))
    bers, delivered = _column(best_rate, len(rates))
    return LinkTrace(
        slot_duration=slot_duration,
        snr_db=np.full(n_slots, snr_db),
        detected=np.ones(n_slots, dtype=bool),
        ber_true=np.tile(bers[:, None], (1, n_slots)),
        ber_est=np.tile(bers[:, None], (1, n_slots)),
        delivered=np.tile(delivered[:, None], (1, n_slots)),
        rate_names=rates.names())


def alternating_trace(good_rate: int = 5, bad_rate: int = 4,
                      period: float = 1.0, duration: float = 10.0,
                      slot_duration: float = 5e-3,
                      rates: Optional[RateTable] = None,
                      good_snr_db: float = 25.0,
                      bad_snr_db: float = 20.0) -> LinkTrace:
    """The Fig. 15 good/bad alternating channel.

    The channel starts in the *bad* state and toggles every ``period``
    seconds, so convergence can be measured from both directions.
    """
    rates = rates if rates is not None else RATE_TABLE.prototype_subset()
    n = len(rates)
    if not (0 <= bad_rate < n and 0 <= good_rate < n):
        raise ValueError("rates outside the table")
    if period <= 0:
        raise ValueError("period must be positive")
    n_slots = max(1, int(round(duration / slot_duration)))
    good_bers, good_del = _column(good_rate, n)
    bad_bers, bad_del = _column(bad_rate, n)

    ber = np.empty((n, n_slots))
    delivered = np.zeros((n, n_slots), dtype=bool)
    snr = np.empty(n_slots)
    for slot in range(n_slots):
        t = slot * slot_duration
        in_good = (int(t / period) % 2) == 1
        ber[:, slot] = good_bers if in_good else bad_bers
        delivered[:, slot] = good_del if in_good else bad_del
        snr[slot] = good_snr_db if in_good else bad_snr_db
    return LinkTrace(slot_duration=slot_duration, snr_db=snr,
                     detected=np.ones(n_slots, dtype=bool),
                     ber_true=ber, ber_est=ber, delivered=delivered,
                     rate_names=rates.names())
