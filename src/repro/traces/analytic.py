"""Analytic PHY performance model for fast trace generation.

Running the bit-exact BCJR pipeline for every (slot, rate) pair of a
multi-second network simulation is infeasible in pure Python, so —
exactly as the paper substitutes traces for ns-3's PHY — we substitute
a calibrated analytic model for the bit-exact PHY when generating
network-scale traces:

* per-modulation uncoded BER over AWGN (standard Gray-mapping
  formulas);
* coded BER via the soft-decision union bound for the 802.11 K=7
  convolutional code, using the published distance spectra of the
  punctured rates (Frenger et al. / Begin-Haccoun weights);
* per-symbol evaluation, so mid-frame fades degrade exactly the part
  of the frame they overlap.

``tests/traces/test_analytic.py`` validates the model against the full
pipeline: the predicted waterfall curves must match the measured ones
to within a fraction of a dB.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy.special import erfc, erfcinv

from repro.phy.rates import Rate

__all__ = ["uncoded_ber", "coded_ber", "frame_loss_probability",
           "frame_ber"]


def _q_function(x: np.ndarray) -> np.ndarray:
    """The Gaussian tail function Q(x)."""
    return 0.5 * erfc(np.asarray(x, dtype=np.float64) / np.sqrt(2.0))


def _q_inverse(p: np.ndarray) -> np.ndarray:
    """Inverse of Q, clipped away from 0 and 0.5 for stability."""
    p = np.clip(np.asarray(p, dtype=np.float64), 1e-300, 0.5 - 1e-12)
    return np.sqrt(2.0) * erfcinv(2.0 * p)


def uncoded_ber(modulation: str, snr_linear: np.ndarray) -> np.ndarray:
    """Uncoded (pre-decoder) BER of a Gray-mapped constellation.

    Args:
        modulation: constellation name.
        snr_linear: per-symbol SNR ``Es/N0`` (linear), scalar or array.

    Uses the standard approximations
    ``P_b ~ (4/log2 M)(1 - 1/sqrt(M)) Q(sqrt(3 Es/((M-1) N0)))`` for
    square QAM and the exact expressions for BPSK/QPSK.
    """
    snr = np.maximum(np.asarray(snr_linear, dtype=np.float64), 0.0)
    if modulation == "BPSK":
        return _q_function(np.sqrt(2.0 * snr))
    if modulation == "QPSK":
        return _q_function(np.sqrt(snr))
    if modulation == "QAM16":
        return 0.75 * _q_function(np.sqrt(snr / 5.0))
    if modulation == "QAM64":
        return (7.0 / 12.0) * _q_function(np.sqrt(snr / 21.0))
    raise ValueError(f"unknown modulation {modulation!r}")


#: Information-error weight spectra c_d of the K=7 (133, 171) code at
#: the 802.11 puncturing rates, as (d_free, [c_dfree, c_dfree+1, ...]).
#: Sources: Frenger et al., "Multi-rate convolutional codes" (1998);
#: Begin & Haccoun for the mother code.  Odd-distance terms of the
#: rate-1/2 mother code are zero.
_SPECTRA: Dict[str, Tuple[int, Tuple[float, ...]]] = {
    "1/2": (10, (36.0, 0.0, 211.0, 0.0, 1404.0, 0.0, 11633.0)),
    "2/3": (6, (3.0, 70.0, 285.0, 1276.0, 6160.0, 27128.0)),
    "3/4": (5, (42.0, 201.0, 1492.0, 10469.0, 62935.0)),
}

#: Information bits per puncturing period (the 1/k in the union bound).
_INFO_PER_PERIOD = {"1/2": 1.0, "2/3": 2.0, "3/4": 3.0}


def coded_ber(rate: Rate, snr_linear: np.ndarray) -> np.ndarray:
    """Post-decoder BER of one bit rate at the given per-symbol SNR.

    The uncoded coded-bit error probability ``p`` is converted to an
    equivalent per-coded-bit SNR ``g = Qinv(p)^2 / 2`` and fed through
    the soft-decision union bound
    ``P_b ~ (1/k) sum_d c_d Q(sqrt(2 d g))``.
    """
    key = str(rate.code_rate)
    if key not in _SPECTRA:
        raise ValueError(f"no spectrum for code rate {key}")
    d_free, weights = _SPECTRA[key]
    k = _INFO_PER_PERIOD[key]
    p = uncoded_ber(rate.modulation, snr_linear)
    p = np.clip(p, 1e-300, 0.5 - 1e-12)
    g = 0.5 * _q_inverse(p) ** 2
    total = np.zeros_like(g)
    for offset, c_d in enumerate(weights):
        if c_d == 0.0:
            continue
        d = d_free + offset
        total = total + c_d * _q_function(np.sqrt(2.0 * d * g))
    return np.minimum(total / k, 0.5)


def frame_ber(rate: Rate, symbol_snrs: np.ndarray) -> float:
    """Average post-decoder BER of a frame spanning per-symbol SNRs.

    Each OFDM symbol's bits decode at the BER implied by that symbol's
    SNR (decoder memory spans ~7 bits, far below a symbol), so the
    frame BER is the mean of the per-symbol coded BERs.
    """
    return float(np.mean(coded_ber(rate, symbol_snrs)))


def frame_loss_probability(rate: Rate, symbol_snrs: np.ndarray,
                           n_info_bits: int) -> float:
    """Probability that at least one info bit of the frame is wrong.

    With ``b_j`` the coded BER during symbol ``j`` and the frame's info
    bits spread evenly over the symbols,
    ``P(loss) = 1 - prod_j (1 - b_j)^(bits_per_symbol)``.
    """
    symbol_snrs = np.atleast_1d(symbol_snrs)
    bits_per_symbol = n_info_bits / symbol_snrs.size
    bers = np.clip(coded_ber(rate, symbol_snrs), 0.0, 1.0 - 1e-15)
    log_ok = bits_per_symbol * np.sum(np.log1p(-bers))
    return float(1.0 - np.exp(log_ok))
