"""Deadline-annotated GoP-structured video workload traces.

The media workload the rateless pipeline carries is a *frame-size
trace*: a sequence of video frames, each with a kind (I or P), a
compressed size in bits, and a playout deadline.  Sizes follow the
classic GoP structure — one large intra-coded (I) frame opening each
group of pictures, followed by smaller predicted (P) frames — with
log-normal jitter around the per-kind targets, the standard model for
VBR video traffic.  Deadlines are the frame's playout instant behind a
fixed startup (buffering) delay, so a frame that cannot be decoded by
``deadline`` causes a rebuffer stall (:func:`repro.analysis.metrics.
rebuffer_time`).

A small reference trace (4 s of 30 fps video, 15-frame GoPs) is
checked in next to this module so experiments and goldens share one
exact workload; :func:`generate_video_trace` grows arbitrary variants
from a seed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["VideoFrame", "VideoTrace", "generate_video_trace",
           "reference_video_trace", "load_video_trace",
           "save_video_trace"]

_REFERENCE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "video_reference.json")

#: Smallest frame the generator emits (one 32-byte slice).
_MIN_FRAME_BITS = 256


@dataclass(frozen=True)
class VideoFrame:
    """One compressed video frame of the workload.

    Attributes:
        index: position in display order (0-based).
        kind: ``"I"`` (intra-coded, opens a GoP) or ``"P"``
            (predicted).
        size_bits: compressed size in bits (byte-aligned).
        deadline: playout instant in seconds from stream start; the
            frame must be decodable by then or playback stalls.
    """

    index: int
    kind: str
    size_bits: int
    deadline: float


@dataclass(frozen=True)
class VideoTrace:
    """A GoP-structured frame-size trace with playout deadlines.

    Attributes:
        fps: display rate in frames per second.
        gop: group-of-pictures length (one I frame per ``gop``).
        startup_delay: buffering delay before playout starts, in
            seconds (every deadline includes it).
        frames: the frames in display order.
    """

    fps: float
    gop: int
    startup_delay: float
    frames: Tuple[VideoFrame, ...]

    @property
    def n_frames(self) -> int:
        """Number of frames in the trace."""
        return len(self.frames)

    @property
    def duration(self) -> float:
        """Playout duration in seconds (``n_frames / fps``)."""
        return self.n_frames / self.fps

    @property
    def total_bits(self) -> int:
        """Sum of all frame sizes."""
        return sum(f.size_bits for f in self.frames)

    @property
    def mean_bitrate_bps(self) -> float:
        """Realized mean bitrate over the playout duration."""
        return self.total_bits / self.duration


def generate_video_trace(duration: float = 4.0, fps: float = 30.0,
                         gop: int = 15,
                         mean_bitrate_bps: float = 4.8e5,
                         i_frame_ratio: float = 6.0,
                         size_jitter: float = 0.25,
                         startup_delay: float = 0.5,
                         seed: int = 0) -> VideoTrace:
    """Generate a GoP-structured frame-size trace.

    Each GoP's bit budget is split between one I frame and
    ``gop - 1`` P frames so the I frame is ``i_frame_ratio`` times a
    P frame's target; individual sizes get log-normal jitter of
    ``size_jitter`` decades-e around the target, then byte alignment
    and a small floor.  Frame ``i``'s deadline is
    ``startup_delay + (i + 1) / fps``.

    Args:
        duration: playout length in seconds.
        fps: display rate.
        gop: frames per group of pictures (>= 1).
        mean_bitrate_bps: target mean bitrate.
        i_frame_ratio: I-frame size relative to a P frame.
        size_jitter: sigma of the log-normal size jitter.
        startup_delay: buffering delay added to every deadline.
        seed: RNG seed; same seed, same trace.

    Returns:
        A :class:`VideoTrace`.
    """
    if gop < 1:
        raise ValueError("gop must be at least 1")
    if fps <= 0 or duration <= 0:
        raise ValueError("fps and duration must be positive")
    n_frames = max(int(round(duration * fps)), 1)
    rng = np.random.default_rng(seed)
    budget_per_gop = mean_bitrate_bps * gop / fps
    p_target = budget_per_gop / (i_frame_ratio + (gop - 1))
    frames = []
    for i in range(n_frames):
        kind = "I" if i % gop == 0 else "P"
        target = p_target * (i_frame_ratio if kind == "I" else 1.0)
        size = target * float(np.exp(rng.normal(0.0, size_jitter)))
        size_bits = max(int(round(size / 8.0)) * 8, _MIN_FRAME_BITS)
        frames.append(VideoFrame(index=i, kind=kind,
                                 size_bits=size_bits,
                                 deadline=startup_delay + (i + 1) / fps))
    return VideoTrace(fps=fps, gop=gop, startup_delay=startup_delay,
                      frames=tuple(frames))


def save_video_trace(trace: VideoTrace, path: str) -> None:
    """Write a trace as JSON (the checked-in reference format)."""
    doc = {
        "format": "repro-video-trace/1",
        "fps": trace.fps,
        "gop": trace.gop,
        "startup_delay": trace.startup_delay,
        "kinds": "".join(f.kind for f in trace.frames),
        "size_bits": [f.size_bits for f in trace.frames],
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


def load_video_trace(path: str) -> VideoTrace:
    """Load a trace written by :func:`save_video_trace`.

    Deadlines are recomputed from ``fps`` and ``startup_delay``, so
    the file stays small and cannot disagree with itself.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("format") != "repro-video-trace/1":
        raise ValueError(f"{path} is not a repro video trace")
    fps = float(doc["fps"])
    startup = float(doc["startup_delay"])
    frames = tuple(
        VideoFrame(index=i, kind=kind, size_bits=int(size),
                   deadline=startup + (i + 1) / fps)
        for i, (kind, size) in enumerate(zip(doc["kinds"],
                                             doc["size_bits"])))
    return VideoTrace(fps=fps, gop=int(doc["gop"]),
                      startup_delay=startup, frames=frames)


def reference_video_trace() -> VideoTrace:
    """The checked-in reference workload: 4 s, 30 fps, 15-frame GoPs.

    Experiments and golden fixtures share this exact trace so QoE
    numbers are comparable across runs and machines.
    """
    return load_video_trace(_REFERENCE_PATH)
