"""Trace generation: run a channel model through the PHY (or its
analytic stand-in) and record per-slot, per-rate frame fates.

Two generators are provided:

* :func:`generate_fading_trace` — the workhorse.  Samples a shared
  Rayleigh fading realisation (optionally modulated by a mobility
  trajectory's large-scale SNR) once per OFDM symbol, evaluates every
  bit rate against the *same* gains through the analytic model of
  :mod:`repro.traces.analytic`, and synthesises the receiver-side BER
  estimate with the estimation noise measured in Fig. 7 (sub-0.1
  orders of magnitude).

* :func:`generate_full_phy_trace` — bit-exact: actually transmits and
  decodes a frame per (slot, rate) through
  :class:`repro.phy.Transceiver`.  Slow; used for PHY-level experiments
  and for validating the analytic generator.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.channel.awgn import apply_channel
from repro.channel.rayleigh import RayleighFadingProcess
from repro.phy.backend import DETECTION_SNR_DB
from repro.phy.rates import MODES, RATE_TABLE, OperatingMode, RateTable
from repro.phy.snr import db_to_linear, snr_to_db
from repro.phy.transceiver import Transceiver
from repro.traces.analytic import coded_ber, frame_loss_probability
from repro.traces.format import LinkTrace

__all__ = ["generate_fading_trace", "generate_full_phy_trace",
           "DETECTION_SNR_DB", "BER_ESTIMATE_NOISE_DECADES"]

#: Standard deviation of the SoftPHY BER estimate in decades.  Fig. 7a:
#: "the error variance ... stays below one-tenth of one order of
#: magnitude".
BER_ESTIMATE_NOISE_DECADES = 0.1

#: Standard deviation of the preamble SNR estimate in dB.  Zhang et
#: al. [25] report multi-dB calibration error on commodity hardware;
#: Fig. 7(c)'s scatter corresponds to a couple of dB of equivalent SNR
#: spread.
_SNR_ESTIMATE_NOISE_DB = 2.0

#: Receiver implementation SNR ceiling in dB (error floor).  Software
#: radio front ends have an EVM floor — residual synchronisation and
#: quantisation error — that caps the post-equaliser SNR.  Without it,
#: simulated BER waterfalls are far steeper than the paper's measured
#: curves: Fig. 5 shows adjacent rates separated by ~1-2 decades of
#: BER, and optimal-rate BERs in the measurable 1e-7..1e-4 band.
IMPAIRMENT_SNR_CEILING_DB = 23.0

#: Per-symbol effective-SNR jitter (dB): imperfect channel estimates
#: make each symbol's demapping slightly better or worse than the true
#: SNR implies.  Flattens the BER-vs-rate relation toward Fig. 5's.
IMPAIRMENT_JITTER_DB = 1.5


def generate_fading_trace(
        rng: np.random.Generator,
        duration: float,
        mean_snr_db: Callable[[float], float] = lambda t: 15.0,
        doppler_hz: float = 40.0,
        slot_duration: float = 5e-3,
        payload_bits: int = 11200,
        rates: Optional[RateTable] = None,
        mode: OperatingMode = MODES["simulation"],
        n_symbol_samples: int = 32,
        snr_ceiling_db: float = IMPAIRMENT_SNR_CEILING_DB,
        snr_jitter_db: float = IMPAIRMENT_JITTER_DB) -> LinkTrace:
    """Generate a fading-channel link trace with the analytic model.

    Args:
        rng: random source (fading realisation + estimate noise).
        duration: trace length in seconds.
        mean_snr_db: large-scale (fading-averaged) SNR as a function of
            time — a constant for static links, or e.g.
            ``WalkingTrajectory.mean_snr_db`` for mobility.
        doppler_hz: Doppler spread of the small-scale fading.
        slot_duration: trace granularity (5 ms like the paper).
        payload_bits: frame payload used to size frames (1400 bytes by
            default, the paper's TCP segment size).
        rates: rate table (paper's six-rate prototype set by default).
        mode: OFDM operating mode, sets the symbol time.
        n_symbol_samples: fading samples drawn across each frame's
            airtime (sub-sampling the symbols is exact for any Doppler
            whose coherence time exceeds a few symbol times).
        snr_ceiling_db: receiver implementation error floor; the
            effective symbol SNR is ``1 / (1/snr + 1/ceiling)``.
        snr_jitter_db: per-symbol channel-estimation jitter.

    Returns:
        A :class:`LinkTrace` with one row per rate.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    rates = rates if rates is not None else RATE_TABLE.prototype_subset()
    fading = RayleighFadingProcess(doppler_hz, rng)
    n_slots = max(1, int(round(duration / slot_duration)))
    n_rates = len(rates)
    n_info = payload_bits + 32

    ber_true = np.empty((n_rates, n_slots))
    ber_est = np.empty((n_rates, n_slots))
    delivered = np.zeros((n_rates, n_slots), dtype=bool)
    loss_prob = np.zeros((n_rates, n_slots))
    snr_db = np.empty(n_slots)
    true_snr_db = np.empty(n_slots)
    detected = np.zeros(n_slots, dtype=bool)

    ceiling = db_to_linear(snr_ceiling_db)
    airtimes = [rate.airtime(n_info, mode.symbol_time, mode.n_subcarriers)
                for rate in rates]
    for slot in range(n_slots):
        t0 = slot * slot_duration
        mean_lin = db_to_linear(mean_snr_db(t0))
        # Preamble SNR: instantaneous fade at the frame start.
        h0 = fading.gains(np.array([t0]))[0]
        inst_snr = mean_lin * np.abs(h0) ** 2
        inst_snr_db = snr_to_db(inst_snr)
        detected[slot] = inst_snr_db >= DETECTION_SNR_DB
        true_snr_db[slot] = inst_snr_db
        snr_db[slot] = inst_snr_db + rng.normal(0, _SNR_ESTIMATE_NOISE_DB)

        for r, rate in enumerate(rates):
            times = t0 + np.linspace(0.0, airtimes[r], n_symbol_samples)
            gains = fading.gains(times)
            symbol_snrs = mean_lin * np.abs(gains) ** 2
            # Receiver impairments: error floor + estimation jitter.
            symbol_snrs = 1.0 / (1.0 / np.maximum(symbol_snrs, 1e-12)
                                 + 1.0 / ceiling)
            if snr_jitter_db > 0:
                jitter = rng.normal(0.0, snr_jitter_db,
                                    size=symbol_snrs.shape)
                symbol_snrs = symbol_snrs * 10.0 ** (jitter / 10.0)
            ber = float(np.mean(coded_ber(rate, symbol_snrs)))
            loss_p = frame_loss_probability(rate, symbol_snrs, n_info)
            ber_true[r, slot] = ber
            noise = rng.normal(0.0, BER_ESTIMATE_NOISE_DECADES)
            ber_est[r, slot] = min(0.5, max(1e-12, ber) * 10.0 ** noise)
            loss_prob[r, slot] = loss_p
            delivered[r, slot] = rng.random() >= loss_p

    return LinkTrace(slot_duration=slot_duration, snr_db=snr_db,
                     detected=detected, ber_true=ber_true,
                     ber_est=ber_est, delivered=delivered,
                     loss_prob=loss_prob, rate_names=rates.names(),
                     true_snr_db=true_snr_db)


def generate_full_phy_trace(
        rng: np.random.Generator,
        n_slots: int,
        mean_snr_db: Callable[[float], float] = lambda t: 15.0,
        doppler_hz: float = 40.0,
        slot_duration: float = 5e-3,
        payload_bits: int = 1600,
        phy: Optional[Transceiver] = None) -> LinkTrace:
    """Generate a trace by running every frame through the real PHY.

    Bit-exact but roughly three orders of magnitude slower than
    :func:`generate_fading_trace`; keep ``n_slots`` and
    ``payload_bits`` modest.
    """
    from repro.core.hints import frame_ber_estimate

    phy = phy if phy is not None else Transceiver()
    rates = phy.rates
    fading = RayleighFadingProcess(doppler_hz, rng)
    payload = rng.integers(0, 2, payload_bits).astype(np.uint8)
    tx_frames = [phy.transmit(payload, rate_index=r)
                 for r in range(len(rates))]

    n_rates = len(rates)
    ber_true = np.empty((n_rates, n_slots))
    ber_est = np.empty((n_rates, n_slots))
    delivered = np.zeros((n_rates, n_slots), dtype=bool)
    snr_db = np.empty(n_slots)
    true_snr_db = np.empty(n_slots)
    detected = np.zeros(n_slots, dtype=bool)

    for slot in range(n_slots):
        t0 = slot * slot_duration
        mean_amp = np.sqrt(db_to_linear(mean_snr_db(t0)))
        for r, tx in enumerate(tx_frames):
            gains = mean_amp * fading.symbol_gains(
                t0, tx.layout.n_symbols, phy.mode.symbol_time)
            rx_sym, gains = apply_channel(tx.symbols, gains, 1.0, rng)
            rx = phy.receive(rx_sym, gains, tx.layout, tx_frame=tx)
            ber_true[r, slot] = rx.true_ber
            ber_est[r, slot] = frame_ber_estimate(rx.hints)
            delivered[r, slot] = bool(rx.crc_ok)
            if r == 0:
                # Noiseless channel state at the slot (frame start),
                # alongside the receiver's noisy estimate.
                true_snr_db[slot] = snr_to_db(np.abs(gains[0]) ** 2)
                snr_db[slot] = rx.snr_db
                detected[slot] = rx.snr_db >= DETECTION_SNR_DB
    return LinkTrace(slot_duration=slot_duration, snr_db=snr_db,
                     detected=detected, ber_true=ber_true,
                     ber_est=ber_est, delivered=delivered,
                     rate_names=rates.names(),
                     true_snr_db=true_snr_db)
