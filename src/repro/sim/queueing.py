"""Drop-tail FIFO queues (the paper's MAC and router queues)."""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

__all__ = ["DropTailQueue"]


class DropTailQueue:
    """A bounded FIFO that drops arrivals when full.

    The paper sizes each node's MAC queue "slightly exceeding the
    bandwidth-delay product of the bottleneck wireless link"
    (section 6.1); :mod:`repro.sim.topology` computes that size.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.capacity = capacity
        self._items = deque()
        self.drops = 0
        self.enqueued = 0

    def push(self, item: Any) -> bool:
        """Append ``item``; returns False (and counts a drop) if full."""
        if len(self._items) >= self.capacity:
            self.drops += 1
            return False
        self._items.append(item)
        self.enqueued += 1
        return True

    def pop(self) -> Optional[Any]:
        """Remove and return the head, or None when empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def peek(self) -> Optional[Any]:
        """The head without removing it, or None when empty."""
        if not self._items:
            return None
        return self._items[0]

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items
