"""The standard mesh scenario: a relay chain plus a roaming client.

:class:`MeshNetwork` places ``n_relays`` fixed relay/AP nodes in a
line (``spacing_m`` apart), each doubling as an access point, and one
client that moves along the chain at ``client_speed_mps``.  The client
associates with whichever AP has the strongest mean received power and
hands off by hysteresis: it re-scans every ``scan_interval`` seconds
and switches only when another AP beats the current one by
``handoff_hysteresis_db`` — the classic ping-pong damper.

Traffic is a saturated packet flood from the client to the far end of
the chain (the *sink*), so every delivery crosses the access hop plus
however many relay hops geometry requires; per-hop delivery and
handoff disruption are computed downstream by
:mod:`repro.analysis.metrics` from the returned frame logs and
delivery times.

Determinism: geometry is pure, per-link shadowing/fading are seeded by
link identity, station backoff RNGs derive from the scenario seed with
the same ``seed + 1000 + station_id`` convention as
:mod:`repro.sim.topology`, and handoff decisions read fading-free mean
SNR — so a scenario is a pure function of its parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.phy.rates import RATE_TABLE, RateTable
from repro.rateadapt.base import RateAdapter
from repro.sim.eventsim import Simulator
from repro.sim.mac import FrameLogEntry, MacConfig
from repro.sim.mesh.forwarding import MeshNode
from repro.sim.mesh.geometry import LinearPath, MeshGeometry
from repro.sim.mesh.radio import MeshChannel
from repro.sim.topology import make_airtime_fn

__all__ = ["CLIENT_ID", "MeshNetwork", "MeshResult",
           "run_mesh_scenario"]

#: The roaming client's node id; relays/APs are 1..n_relays.
CLIENT_ID = 0

#: Client track offset from the relay line (metres) — the client walks
#: past the APs, not through them.
_CLIENT_OFFSET_M = 4.0


@dataclass
class MeshResult:
    """Outcome of one :meth:`MeshNetwork.run`."""

    duration: float
    payload_bits: int
    originated: int
    #: ``(delivery_time, hops)`` per packet that reached the sink.
    delivered: List[Tuple[float, int]]
    #: times at which the client switched APs (excludes the initial
    #: association at t=0).
    handoff_times: List[float]
    frame_logs: Dict[int, List[FrameLogEntry]]
    channel_stats: Dict[str, int]
    ttl_drops: int
    duplicate_drops: int
    forward_queue_drops: int

    @property
    def delivery_rate(self) -> float:
        """Fraction of originated packets that reached the sink."""
        if self.originated == 0:
            return float("nan")
        return len(self.delivered) / self.originated

    @property
    def goodput_mbps(self) -> float:
        """End-to-end delivered payload throughput."""
        return len(self.delivered) * self.payload_bits \
            / self.duration / 1e6

    @property
    def mean_hops(self) -> float:
        """Mean MAC hops crossed by delivered packets."""
        if not self.delivered:
            return float("nan")
        return float(np.mean([h for _, h in self.delivered]))


class MeshNetwork:
    """A relay chain with multi-AP roaming, assembled and ready to run.

    Args:
        adapter_factory: ``(rates, trace) -> RateAdapter`` builder —
            the same signature every topology uses; mesh links have no
            traces, so ``trace`` is always None (trained/omniscient
            protocols cannot run here).
        n_relays: relays/APs in the chain (ids 1..n, ``spacing_m``
            apart; the last one is the traffic sink).
        spacing_m: distance between adjacent relays.
        client_speed_mps: client speed along the chain (0 = static).
            The client stops once it reaches the far end.
        rates: rate table (paper's six prototype rates by default).
        seed: scenario seed (backoff, PHY draws, link realisations).
        shadowing_sigma_db: per-link log-normal shadowing spread.
        doppler_hz: Rayleigh Doppler spread of every link.
        phy_backend: ``"full"``, ``"surrogate"``, or a backend object.
        detect_prob / use_postambles: SoftPHY fidelity knobs.
        payload_bits: packet payload size.
        ttl: packet TTL in MAC hops (default ``n_relays + 2``: chain
            length plus slack for a handoff-induced detour).
        handoff_hysteresis_db: margin a rival AP must win by.
        scan_interval: seconds between client AP scans.
        mac_config: MAC parameters.
    """

    def __init__(self, adapter_factory: Callable[..., RateAdapter],
                 n_relays: int = 2, spacing_m: float = 9.0,
                 client_speed_mps: float = 0.0,
                 rates: Optional[RateTable] = None, seed: int = 1,
                 shadowing_sigma_db: float = 0.0,
                 doppler_hz: float = 10.0, phy_backend="surrogate",
                 detect_prob: float = 0.8,
                 use_postambles: bool = True,
                 payload_bits: int = 368, ttl: Optional[int] = None,
                 handoff_hysteresis_db: float = 3.0,
                 scan_interval: float = 0.02,
                 mac_config: Optional[MacConfig] = None):
        if n_relays < 2:
            raise ValueError("a mesh needs at least two relays")
        if spacing_m <= 0:
            raise ValueError("spacing must be positive")
        if scan_interval <= 0:
            raise ValueError("scan interval must be positive")
        self.rates = rates if rates is not None \
            else RATE_TABLE.prototype_subset()
        self.n_relays = n_relays
        self.sink = n_relays
        self.payload_bits = payload_bits
        self.ttl = ttl if ttl is not None else n_relays + 2
        self.handoff_hysteresis_db = handoff_hysteresis_db
        self.scan_interval = scan_interval
        self.sim = Simulator()

        nodes: Dict = {
            CLIENT_ID: LinearPath(
                start=(0.0, _CLIENT_OFFSET_M),
                velocity=(client_speed_mps, 0.0),
                max_travel_m=(n_relays - 1) * spacing_m)}
        for i in range(1, n_relays + 1):
            nodes[i] = ((i - 1) * spacing_m, 0.0)
        self.geometry = MeshGeometry(nodes)

        from repro.channel.pathloss import LogDistancePathLoss
        pathloss = LogDistancePathLoss(
            shadowing_sigma_db=shadowing_sigma_db)
        self.channel = MeshChannel(
            self.geometry, np.random.default_rng(seed),
            phy_backend=phy_backend, rates=self.rates,
            pathloss=pathloss, link_seed=seed, doppler_hz=doppler_hz,
            detect_prob=detect_prob, use_postambles=use_postambles)

        config = mac_config if mac_config is not None else MacConfig()
        airtime = make_airtime_fn(self.rates)
        self.nodes: Dict[int, MeshNode] = {}
        for nid in range(n_relays + 1):
            def build_adapter(peer: int) -> RateAdapter:
                # Mesh links are geometry-driven: no trace to pass.
                return adapter_factory(self.rates, None)

            self.nodes[nid] = MeshNode(
                self.sim, self.channel, nid,
                np.random.default_rng(seed + 1000 + nid),
                adapter_factory=build_adapter, airtime_fn=airtime,
                route=self._next_hop, config=config,
                on_queue_drain=self._refill
                if nid == CLIENT_ID else None)

        self.current_ap = self._best_ap(0.0)
        self.handoff_times: List[float] = []

    # -- routing ------------------------------------------------------------

    def _next_hop(self, node: int, dest: int) -> int:
        """Static chain routing with a roaming access hop.

        The client always sends through its current AP; relays step
        along the chain toward the destination (or toward the client's
        current AP when the destination is the client).
        """
        if node == CLIENT_ID:
            return self.current_ap
        target = self.current_ap if dest == CLIENT_ID else dest
        if node == target:
            return CLIENT_ID if dest == CLIENT_ID else dest
        return node - 1 if node > target else node + 1

    # -- roaming ------------------------------------------------------------

    def _best_ap(self, t: float) -> int:
        """The AP with the strongest mean received power at time t.

        Reads fading-free mean SNR (path loss + shadowing), the moral
        equivalent of a beacon RSSI averaged over many frames.  Ties
        break toward the lowest id for determinism.
        """
        return max(range(1, self.n_relays + 1),
                   key=lambda ap: (self.channel.mean_snr_db(
                       ap, CLIENT_ID, t), -ap))

    def _scan(self) -> None:
        """Periodic roaming scan with hysteresis."""
        now = self.sim.now
        best = self._best_ap(now)
        if best != self.current_ap:
            gain = self.channel.mean_snr_db(best, CLIENT_ID, now) \
                - self.channel.mean_snr_db(self.current_ap, CLIENT_ID,
                                           now)
            if gain >= self.handoff_hysteresis_db:
                self.current_ap = best
                self.handoff_times.append(now)
        self.sim.schedule(self.scan_interval, self._scan)

    # -- traffic ------------------------------------------------------------

    def _refill(self) -> None:
        """Keep the client's MAC queue saturated toward the sink."""
        client = self.nodes[CLIENT_ID]
        while client.originate(self.sink, self.payload_bits, self.ttl):
            pass

    # -- running ------------------------------------------------------------

    def run(self, duration: float) -> MeshResult:
        """Flood client -> sink for ``duration`` seconds."""
        self.sim.schedule(self.scan_interval, self._scan)
        self._refill()
        self.sim.run_until(duration)
        sink = self.nodes[self.sink]
        return MeshResult(
            duration=duration, payload_bits=self.payload_bits,
            originated=self.nodes[CLIENT_ID].originated,
            delivered=list(sink.delivered),
            handoff_times=list(self.handoff_times),
            frame_logs={nid: node.station.frame_log
                        for nid, node in self.nodes.items()},
            channel_stats=dict(self.channel.stats),
            ttl_drops=sum(n.ttl_drops for n in self.nodes.values()),
            duplicate_drops=sum(n.duplicate_drops
                                for n in self.nodes.values()),
            forward_queue_drops=sum(n.forward_queue_drops
                                    for n in self.nodes.values()))


def run_mesh_scenario(adapter_factory: Callable[..., RateAdapter],
                      duration: float = 0.1,
                      **kwargs) -> MeshResult:
    """Build a :class:`MeshNetwork` and run it — the one-call entry
    point the mesh experiment and campaigns use.

    ``kwargs`` are forwarded to :class:`MeshNetwork` unchanged.
    """
    return MeshNetwork(adapter_factory, **kwargs).run(duration)
