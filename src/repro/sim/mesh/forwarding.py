"""TTL-bounded store-and-forward relaying over the CSMA/CA MAC.

A :class:`MeshNode` wraps one :class:`repro.sim.mac.Station` and adds
the network layer: packets (:class:`MeshPacket`) carry an origin, a
final destination, a per-origin sequence number, and a TTL; each relay
re-queues the packet to its next hop as an ordinary MAC frame.  That
means *every* relay hop is a full MAC exchange — contention, SoftPHY
feedback, retries — and the sending station's per-peer rate adapter
(:meth:`repro.sim.mac.Station.adapter`) adapts to that hop's channel
independently of every other hop, which is the property the mesh
experiments measure.

Two invariants the property-based tests pin:

* **TTL bound** — a delivered packet has crossed at most
  ``initial_ttl`` MAC hops (the TTL is decremented at every receive
  and packets arriving with no budget left are dropped).
* **No duplicate delivery** — every node keeps an ``(origin, seq)``
  seen-set, so a packet that loops (or is re-forwarded) is dropped the
  second time it reaches any node, and the final destination delivers
  each packet at most once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from repro.rateadapt.base import RateAdapter
from repro.sim.eventsim import Simulator
from repro.sim.mac import MacConfig, MacFrame, Station

__all__ = ["MeshPacket", "MeshNode"]


@dataclass(frozen=True)
class MeshPacket:
    """One network-layer packet riding inside MAC frame payloads.

    Attributes:
        origin: node that originated the packet.
        final_dest: node the packet is ultimately for.
        seq: per-origin sequence number (monotonic, never wraps —
            unlike the MAC's 12-bit seq — so ``(origin, seq)`` is a
            globally unique packet identity for duplicate suppression).
        ttl: remaining MAC hops the packet may still cross when handed
            to a station's queue.
        initial_ttl: the TTL it was originated with (the hop bound).
        hops: MAC hops crossed so far.
    """

    origin: int
    final_dest: int
    seq: int
    ttl: int
    initial_ttl: int
    hops: int = 0


class MeshNode:
    """A mesh station: MAC entity plus TTL/duplicate forwarding logic.

    Args:
        sim: event engine.
        channel: the shared :class:`~repro.sim.mesh.radio.MeshChannel`.
        node_id: unique id (also the geometry node id).
        rng: backoff randomness for the underlying station.
        adapter_factory: ``(peer) -> RateAdapter``; one adapter per
            next-hop peer, so each hop rate-adapts independently.
        airtime_fn: ``(payload_bits, rate_index) -> seconds``.
        route: ``(this_node, final_dest) -> next_hop`` — evaluated at
            forward time, so routes may change as a client roams.
        config: MAC parameters.
        on_deliver: optional callback ``(time, packet)`` fired when a
            packet reaches its final destination here.
        on_queue_drain: optional callback when the MAC queue has room
            again (saturated sources refill from it).
    """

    def __init__(self, sim: Simulator, channel, node_id: int,
                 rng: np.random.Generator,
                 adapter_factory: Callable[[int], RateAdapter],
                 airtime_fn: Callable[[int, int], float],
                 route: Callable[[int, int], int],
                 config: MacConfig = MacConfig(),
                 on_deliver: Optional[Callable] = None,
                 on_queue_drain: Optional[Callable[[], None]] = None):
        self.sim = sim
        self.id = node_id
        self._route = route
        self._on_deliver = on_deliver
        self.station = Station(
            sim, channel, node_id, rng,
            adapter_factory=adapter_factory, airtime_fn=airtime_fn,
            config=config, on_deliver=self._receive,
            on_queue_drain=on_queue_drain)
        self._seen: Set[Tuple[int, int]] = set()
        self._origin_seq = 0
        self.originated = 0
        #: ``(delivery_time, hops)`` per packet delivered *to* this node.
        self.delivered: List[Tuple[float, int]] = []
        self.ttl_drops = 0
        self.duplicate_drops = 0
        self.forward_queue_drops = 0

    # -- sending ------------------------------------------------------------

    def originate(self, final_dest: int, payload_bits: int,
                  ttl: int) -> bool:
        """Create a packet for ``final_dest`` and queue it to the MAC.

        Returns False when the MAC queue is full (the packet is not
        created and no sequence number is consumed).
        """
        if ttl < 1:
            raise ValueError("ttl must be at least 1")
        next_hop = self._route(self.id, final_dest)
        packet = MeshPacket(origin=self.id, final_dest=final_dest,
                            seq=self._origin_seq, ttl=ttl,
                            initial_ttl=ttl)
        if not self.station.send(next_hop, packet, payload_bits):
            return False
        self._origin_seq += 1
        self.originated += 1
        # Mark our own packets as seen: a routing loop that brings one
        # back here must kill it, not re-forward it.
        self._seen.add((packet.origin, packet.seq))
        return True

    # -- receiving ----------------------------------------------------------

    def _receive(self, frame: MacFrame) -> None:
        """A MAC frame crossed its hop to us: deliver or forward."""
        packet = frame.payload
        if not isinstance(packet, MeshPacket):
            return
        key = (packet.origin, packet.seq)
        if key in self._seen:
            self.duplicate_drops += 1
            return
        self._seen.add(key)
        arrived = replace(packet, ttl=packet.ttl - 1,
                          hops=packet.hops + 1)
        if arrived.final_dest == self.id:
            self.delivered.append((self.sim.now, arrived.hops))
            if self._on_deliver is not None:
                self._on_deliver(self.sim.now, arrived)
            return
        if arrived.ttl < 1:
            self.ttl_drops += 1
            return
        next_hop = self._route(self.id, arrived.final_dest)
        if not self.station.send(next_hop, arrived, frame.payload_bits):
            self.forward_queue_drops += 1
