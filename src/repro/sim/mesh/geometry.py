"""2-D node geometry: positions over time and pairwise distances.

A :class:`MeshGeometry` maps node ids to positions; a position is
either a fixed ``(x, y)`` tuple (relays, APs) or a callable
``t -> (x, y)`` (mobile clients).  Everything downstream — path loss,
carrier sense, capture, handoff — derives from
:meth:`MeshGeometry.distance` evaluated at transmission time, so the
geometry is the single source of spatial truth.

Positions are pure functions of time (no internal state, no RNG), a
property the mesh determinism wall depends on: two simulations that
evaluate positions in different event orders still see identical
coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple, Union

__all__ = ["MeshGeometry", "LinearPath"]

Position = Tuple[float, float]
PositionFn = Callable[[float], Position]


@dataclass(frozen=True)
class LinearPath:
    """A straight-line constant-velocity path with a travel clamp.

    The node starts at ``start`` and moves with ``velocity`` (m/s per
    axis) until it has covered ``max_travel_m`` metres, then stays
    put — a roaming client that walks the length of a relay chain and
    stops at the far end.

    Example::

        path = LinearPath(start=(0.0, 4.0), velocity=(30.0, 0.0),
                          max_travel_m=18.0)
        path(0.0)     # (0.0, 4.0)
        path(10.0)    # (18.0, 4.0) — clamped after 0.6 s
    """

    start: Position
    velocity: Position
    max_travel_m: float = math.inf

    def __call__(self, t: float) -> Position:
        """Position at time ``t`` (seconds, clamped to the travel cap)."""
        speed = math.hypot(*self.velocity)
        if speed > 0.0 and math.isfinite(self.max_travel_m):
            t = min(t, max(self.max_travel_m, 0.0) / speed)
        return (self.start[0] + self.velocity[0] * t,
                self.start[1] + self.velocity[1] * t)


class MeshGeometry:
    """Node positions over time.

    Args:
        nodes: map from node id to either a fixed ``(x, y)`` position
            or a callable ``t -> (x, y)`` (e.g. :class:`LinearPath`).

    Example::

        geo = MeshGeometry({0: LinearPath((0, 4), (2, 0)),
                            1: (0.0, 0.0), 2: (9.0, 0.0)})
        geo.distance(0, 2, t=1.0)
    """

    def __init__(self, nodes: Mapping[int, Union[Position, PositionFn]]):
        if not nodes:
            raise ValueError("geometry needs at least one node")
        self._nodes: Dict[int, PositionFn] = {}
        for node_id, spec in nodes.items():
            if callable(spec):
                self._nodes[int(node_id)] = spec
            else:
                x, y = float(spec[0]), float(spec[1])
                self._nodes[int(node_id)] = \
                    (lambda t, x=x, y=y: (x, y))

    def node_ids(self) -> List[int]:
        """Sorted node ids."""
        return sorted(self._nodes)

    def position(self, node: int, t: float) -> Position:
        """Node position ``(x, y)`` in metres at time ``t``."""
        try:
            return self._nodes[node](t)
        except KeyError:
            raise KeyError(f"unknown node {node}") from None

    def distance(self, a: int, b: int, t: float) -> float:
        """Euclidean distance between nodes ``a`` and ``b`` at ``t``."""
        xa, ya = self.position(a, t)
        xb, yb = self.position(b, t)
        return math.hypot(xa - xb, ya - yb)
