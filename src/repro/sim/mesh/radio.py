"""The geometry-driven wireless channel of the mesh simulator.

:class:`MeshChannel` implements the exact channel contract
:class:`repro.sim.mac.Station` consumes (``stations``,
``medium_busy_until``, ``begin_transmission``,
``conclude_transmission``) so the whole CSMA/CA MAC — DIFS, binary
exponential backoff, retries, per-peer rate adapters, SoftPHY
feedback — is reused unchanged over a *spatial* channel model:

* **Large scale** — log-distance path loss plus a static per-link
  log-normal shadowing draw
  (:class:`repro.channel.pathloss.LogDistancePathLoss`), evaluated
  from :class:`~repro.sim.mesh.geometry.MeshGeometry` distances at
  transmission time.
* **Small scale** — one Rayleigh fading realisation per (unordered)
  node pair; :class:`repro.channel.rayleigh.RayleighFadingProcess` is
  a pure function of time, so gains are identical regardless of MAC
  event order (the mesh determinism wall).
* **Frame fates** — computed per transmission by a pluggable
  :class:`repro.phy.backend.PhyBackend` ("full" bit-exact or the
  calibrated "surrogate") from the link's instantaneous SNR
  trajectory across the frame's airtime.

Carrier sense and collisions are *emergent*: a listener senses a
transmitter iff the mean received SNR clears ``cs_threshold_snr_db``
(hidden terminals are nodes out of carrier-sense range of each other
but both audible at a middle receiver), every node keeps a receive
buffer of the transmissions audible at it, and a concluding frame is
checked against that buffer for temporal overlap with an SNR capture
test — a much stronger interferer does not destroy the frame.  The
surviving overlap cases follow the paper's section 3.2 taxonomy
exactly as :class:`repro.sim.wireless.WirelessChannel` does:
*collided* (receiver locked onto us; SoftPHY flags it with
probability ``detect_prob``), *postamble* (preamble lost, postamble
clean), or *silent*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.rayleigh import RayleighFadingProcess
from repro.core.feedback import Feedback
from repro.core.mix import mix64
from repro.phy.backend import DETECTION_SNR_DB, get_backend
from repro.phy.rates import RATE_TABLE, RateTable
from repro.sim.mesh.geometry import MeshGeometry
from repro.sim.wireless import (COLLISION_BER, FrameFate, Transmission,
                                occupancy_window)
from repro.traces.format import FrameObservation

__all__ = ["MeshChannel", "RxBufferEntry"]

#: Trajectory samples per frame (mirrors the trace-driven observe
#: path's ``_OBSERVE_SNR_SAMPLES``: a frame spans well under one
#: coherence time at the Doppler spreads we simulate, so a handful of
#: samples captures the fade structure).
_SNR_SAMPLES = 8

#: Floor on instantaneous linear SNR before converting to dB, so deep
#: Rayleigh fades produce a very negative finite value, never -inf.
_SNR_LINEAR_FLOOR = 1e-12

#: Seed-derivation domain tags keeping the shadowing and fading RNG
#: streams of one link disjoint.
_SHADOW_TAG = 0x5AD0
_FADING_TAG = 0xFAD0


@dataclass
class RxBufferEntry:
    """One transmission audible at a node, with its received SNR.

    ``rx_snr_db`` is the mean (fading-free) SNR of the transmitter at
    this node when the transmission started — the power term of the
    buffer's SNR/timing collision checks.
    """

    tx: Transmission
    rx_snr_db: float


class MeshChannel:
    """A spatial collision domain driven by geometry and a PHY backend.

    Args:
        geometry: node positions over time.
        rng: root random source of the per-attempt fate streams
            (interference-detection coins, PHY outcome draws — see
            :meth:`attempt_rng`).  Per-link shadowing and fading use
            their own seed-derived generators, so like the fates they
            are independent of MAC event order.
        phy_backend: backend instance or name (``"full"`` /
            ``"surrogate"``); a name is resolved against this
            channel's rate table.
        rates: rate table (the paper's six prototype rates by default).
        pathloss: large-scale model; its ``shadowing_sigma_db``
            controls the per-link log-normal shadowing (0 = off).
        tx_power_dbm / noise_floor_dbm: link budget (defaults match
            :class:`repro.channel.mobility.WalkingTrajectory`).
        link_seed: root seed of the per-link shadowing and fading
            realisations.
        doppler_hz: Doppler spread of every link's Rayleigh process.
        detect_prob: SoftPHY interference-detection probability for
            collided frames (paper section 6.4).
        use_postambles: enable postamble detection (section 3.2).
        cs_threshold_snr_db: mean received SNR (dB) above which a
            listener carrier-senses a transmitter.  Nodes below the
            threshold are mutually hidden — the hidden-terminal knob
            is geometry, not a probability.
        capture_margin_db: SINR margin for physical-layer capture: a
            frame whose received power exceeds the summed overlapping
            interference by at least this margin survives the overlap.
        rx_floor_snr_db: mean received SNR below which a transmission
            does not enter a node's receive buffer at all (negligible
            as interference and undetectable as signal).

    Example::

        geo = MeshGeometry({0: (0, 4), 1: (0, 0), 2: (9, 0)})
        channel = MeshChannel(geo, np.random.default_rng(1),
                              phy_backend="surrogate")
    """

    def __init__(self, geometry: MeshGeometry,
                 rng: np.random.Generator,
                 phy_backend="surrogate",
                 rates: Optional[RateTable] = None,
                 pathloss: Optional[LogDistancePathLoss] = None,
                 tx_power_dbm: float = -5.0,
                 noise_floor_dbm: float = -85.0,
                 link_seed: int = 0,
                 doppler_hz: float = 10.0,
                 detect_prob: float = 0.8,
                 use_postambles: bool = True,
                 cs_threshold_snr_db: float = 3.0,
                 capture_margin_db: float = 10.0,
                 rx_floor_snr_db: float = DETECTION_SNR_DB - 3.0):
        if not 0.0 <= detect_prob <= 1.0:
            raise ValueError("detect_prob must be a probability")
        if doppler_hz <= 0:
            raise ValueError("doppler_hz must be positive")
        self.geometry = geometry
        self.rng = rng
        # Root of the per-attempt fate RNG streams (drawn first, so
        # the channel's seed alone pins every fate stream).
        self._fate_seed = int(rng.integers(0, 2 ** 63))
        self.rates = rates if rates is not None \
            else RATE_TABLE.prototype_subset()
        self.phy = get_backend(phy_backend, rates=self.rates)
        self.pathloss = pathloss if pathloss is not None \
            else LogDistancePathLoss()
        self.tx_power_dbm = tx_power_dbm
        self.noise_floor_dbm = noise_floor_dbm
        self.link_seed = int(link_seed)
        self.doppler_hz = doppler_hz
        self.detect_prob = detect_prob
        self.use_postambles = use_postambles
        self.cs_threshold_snr_db = cs_threshold_snr_db
        self.capture_margin_db = capture_margin_db
        self.rx_floor_snr_db = rx_floor_snr_db
        #: station registry (filled by Station.__init__).
        self.stations: Dict[int, Any] = {}
        self._active: List[Transmission] = []
        self._history: List[Transmission] = []
        #: per-node receive buffers: transmissions audible at the node.
        self._rx_buffers: Dict[int, List[RxBufferEntry]] = {}
        self._shadow: Dict[Tuple[int, int], float] = {}
        self._fading: Dict[Tuple[int, int], RayleighFadingProcess] = {}
        self.stats = {"clean": 0, "collided": 0, "postamble": 0,
                      "silent": 0, "undetected_collisions": 0,
                      "captured": 0}

    # -- link model ---------------------------------------------------------

    def _link_key(self, a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def shadowing_db(self, a: int, b: int) -> float:
        """The static shadowing offset of the (unordered) link a-b.

        Drawn once per link from a generator seeded by
        ``(link_seed, tag, a, b)`` — reciprocal (the same obstruction
        attenuates both directions) and independent of when or in
        what order links are first used.
        """
        key = self._link_key(a, b)
        if key not in self._shadow:
            link_rng = np.random.default_rng(
                (self.link_seed, _SHADOW_TAG) + key)
            self._shadow[key] = \
                self.pathloss.sample_shadowing_db(link_rng)
        return self._shadow[key]

    def _fading_for(self, a: int, b: int) -> RayleighFadingProcess:
        """The link's Rayleigh realisation (reciprocal, lazily built)."""
        key = self._link_key(a, b)
        if key not in self._fading:
            link_rng = np.random.default_rng(
                (self.link_seed, _FADING_TAG) + key)
            self._fading[key] = RayleighFadingProcess(
                self.doppler_hz, link_rng)
        return self._fading[key]

    def mean_snr_db(self, src: int, dest: int, t: float) -> float:
        """Mean (fading-averaged) received SNR of ``src`` at ``dest``.

        Link budget through the path loss model at the nodes' current
        distance, including the link's static shadowing draw.  This is
        the quantity carrier sense, capture, and handoff decisions
        read — fading is deliberately excluded, matching how receivers
        average RSSI over many frames.
        """
        distance = self.geometry.distance(src, dest, t)
        return self.pathloss.mean_snr_db(
            self.tx_power_dbm, self.noise_floor_dbm, distance,
            shadowing_db=self.shadowing_db(src, dest))

    def snr_trajectory(self, src: int, dest: int, start: float,
                       end: float) -> np.ndarray:
        """Instantaneous SNR (dB) across a frame's airtime.

        Samples the mean SNR (geometry + shadowing, tracking any node
        motion during the frame) and multiplies in the link's Rayleigh
        gain, which is a pure function of time.
        """
        times = np.linspace(start, max(end, start), _SNR_SAMPLES)
        mean_db = np.array([self.mean_snr_db(src, dest, t)
                            for t in times])
        gains = self._fading_for(src, dest).gains(times)
        power = np.maximum(np.abs(gains) ** 2, _SNR_LINEAR_FLOOR)
        return mean_db + 10.0 * np.log10(power)

    # -- carrier sense ------------------------------------------------------

    def _senses(self, listener: int, tx: Transmission) -> bool:
        """Whether ``listener`` carrier-senses this transmission.

        Deterministic in geometry: the mean received SNR at the
        transmission's start must clear the sensing threshold.  Cached
        per (transmission, listener) so the decision is sticky for the
        transmission's lifetime.
        """
        if tx.frame.src == listener:
            return True
        if listener not in tx.sensed_by:
            tx.sensed_by[listener] = bool(
                self.mean_snr_db(tx.frame.src, listener, tx.start)
                >= self.cs_threshold_snr_db)
        return tx.sensed_by[listener]

    def busy_window(self, listener: int, now: float
                    ) -> Optional[Tuple[float, float]]:
        """The busy period ``listener`` currently senses, as a
        ``(start, end)`` pair over the reserved occupancy of every
        sensed in-flight transmission — or ``None`` when idle (which
        it can be while a *hidden* node is transmitting).
        """
        self._prune(now)
        since = until = None
        for tx in self._active:
            occ_start, occ_end = occupancy_window(tx)
            if occ_end <= now:
                continue
            if self._senses(listener, tx):
                since = occ_start if since is None \
                    else min(since, occ_start)
                until = occ_end if until is None \
                    else max(until, occ_end)
        if until is None:
            return None
        return since, until

    def medium_busy_until(self, listener: int, now: float
                          ) -> Optional[float]:
        """Latest reserved-occupancy end of sensed transmissions.

        Returns ``None`` when the medium appears idle to ``listener``.
        """
        window = self.busy_window(listener, now)
        return None if window is None else window[1]

    # -- transmission -------------------------------------------------------

    def begin_transmission(self, tx: Transmission) -> None:
        """Register an in-flight frame and fan it into receive buffers.

        Every node whose mean received SNR clears ``rx_floor_snr_db``
        gets an entry (with that SNR) appended to its buffer — the
        per-node record the SNR/timing collision checks run against
        when overlapping frames conclude.
        """
        self._active.append(tx)
        self._history.append(tx)
        src = tx.frame.src
        for node in self.geometry.node_ids():
            if node == src:
                continue
            rx_snr = self.mean_snr_db(src, node, tx.start)
            if rx_snr >= self.rx_floor_snr_db:
                self._rx_buffers.setdefault(node, []).append(
                    RxBufferEntry(tx=tx, rx_snr_db=rx_snr))

    def _prune(self, now: float, horizon: float = 0.1) -> None:
        self._active = [t for t in self._active
                        if occupancy_window(t)[1] > now]
        if len(self._history) > 4096:
            self._history = [t for t in self._history
                             if t.end > now - horizon]
            for node, buffer in self._rx_buffers.items():
                self._rx_buffers[node] = [
                    e for e in buffer if e.tx.end > now - horizon]

    def _interferers(self, tx: Transmission) -> List[RxBufferEntry]:
        """Receive-buffer entries at the destination overlapping ``tx``.

        Feedback frames are excluded (they occupy the reserved
        post-SIFS slot, as in the star-topology model), as are other
        transmissions by our own source.
        """
        buffer = self._rx_buffers.get(tx.frame.dest, ())
        out = []
        for entry in buffer:
            other = entry.tx
            if other is tx or other.frame.is_feedback:
                continue
            if other.frame.src == tx.frame.src:
                continue
            if other.start < tx.end and tx.start < other.end:
                out.append(entry)
        return out

    def _receiver_deaf(self, tx: Transmission) -> bool:
        """Half-duplex: the destination was itself transmitting."""
        for other in self._history:
            if other is tx or other.frame.src != tx.frame.dest:
                continue
            if other.start < tx.end and tx.start < other.end:
                return True
        return False

    def attempt_rng(self, tx: Transmission) -> np.random.Generator:
        """The fate RNG stream of one transmission attempt.

        Derived from the channel's fate seed and the attempt's
        identity ``(src, dest, attempt)`` — same contract as
        :meth:`repro.sim.wireless.WirelessChannel.attempt_rng`, so
        fates are independent of the order concurrent transmissions
        conclude in.
        """
        return np.random.Generator(np.random.PCG64(mix64(
            self._fate_seed, tx.frame.src, tx.frame.dest, tx.attempt)))

    def _observe(self, tx: Transmission,
                 rng: np.random.Generator) -> FrameObservation:
        """Clean-channel observation from the geometry-derived SNR
        trajectory, through the configured PHY backend."""
        trajectory = self.snr_trajectory(tx.frame.src, tx.frame.dest,
                                         tx.start, tx.end)
        out = self.phy.frame_outcome(tx.rate_index, trajectory,
                                     tx.frame.payload_bits, rng,
                                     need_hints=False)
        return FrameObservation(
            detected=out.detected,
            delivered=out.detected and out.delivered,
            ber_true=out.ber_true, ber_est=out.ber_est,
            snr_db=out.snr_db, slot=0)

    def _captures(self, tx: Transmission,
                  interferers: List[RxBufferEntry]) -> bool:
        """SNR collision check: does ``tx`` capture the receiver?

        Compares the frame's mean received power against the linear
        sum of all overlapping interferers' received powers; a margin
        of ``capture_margin_db`` or more means the receiver tracks the
        strong frame through the overlap.
        """
        our_db = self.mean_snr_db(tx.frame.src, tx.frame.dest,
                                  tx.start)
        interference = sum(10.0 ** (e.rx_snr_db / 10.0)
                           for e in interferers)
        if interference <= 0.0:
            return True
        sinr_db = our_db - 10.0 * np.log10(interference)
        return bool(sinr_db >= self.capture_margin_db)

    def conclude_transmission(self, tx: Transmission) -> FrameFate:
        """Compute the fate of ``tx`` (called by the MAC at t=end).

        Order of checks: half-duplex deafness, PHY detection, capture
        over any overlap, then the section 3.2 overlap taxonomy
        (collided / postamble / silent) — identical semantics to the
        trace-driven channel, with the overlap set coming from the
        destination's receive buffer instead of global history.
        """
        if self._receiver_deaf(tx):
            self.stats["silent"] += 1
            return FrameFate(kind="silent", delivered=False,
                             feedback=None, observation=None)
        rng = self.attempt_rng(tx)
        obs = self._observe(tx, rng)
        if not obs.detected:
            self.stats["silent"] += 1
            return FrameFate(kind="silent", delivered=False,
                             feedback=None, observation=obs)
        interferers = self._interferers(tx)
        if tx.rts_protected:
            interferers = []        # the exchange reserved the medium
        if interferers and self._captures(tx, interferers):
            self.stats["captured"] += 1
            interferers = []
        if not interferers:
            self.stats["clean"] += 1
            feedback = Feedback(src=tx.frame.dest, dest=tx.frame.src,
                                seq=tx.frame.seq, ber=obs.ber_est,
                                frame_ok=obs.delivered,
                                snr_db=obs.snr_db)
            return FrameFate(kind="clean", delivered=obs.delivered,
                             feedback=feedback, observation=obs)

        locked_to_us = all(tx.start <= e.tx.start for e in interferers)
        if locked_to_us:
            # Receiver synchronised to us; an interferer corrupts our
            # body.  Frame lost, but the header decoded, so feedback
            # flows — flagged as interference with ``detect_prob``.
            self.stats["collided"] += 1
            detected = bool(rng.random() < self.detect_prob)
            if detected:
                ber = obs.ber_est       # interference-free portion
            else:
                ber = COLLISION_BER     # looks like a channel loss
                self.stats["undetected_collisions"] += 1
            feedback = Feedback(src=tx.frame.dest, dest=tx.frame.src,
                                seq=tx.frame.seq, ber=ber,
                                frame_ok=False,
                                interference_detected=detected,
                                snr_db=obs.snr_db)
            return FrameFate(kind="collided", delivered=False,
                             feedback=feedback, observation=obs,
                             interference_detected=detected)

        # Receiver locked elsewhere: our preamble is gone.
        postamble_clean = self.use_postambles and not any(
            e.tx.start < tx.end and tx.postamble_start < e.tx.end
            for e in interferers)
        if postamble_clean:
            self.stats["postamble"] += 1
            feedback = Feedback(src=tx.frame.dest, dest=tx.frame.src,
                                seq=tx.frame.seq, ber=obs.ber_est,
                                frame_ok=False,
                                interference_detected=True,
                                snr_db=obs.snr_db, postamble_only=True)
            return FrameFate(kind="postamble", delivered=False,
                             feedback=feedback, observation=obs,
                             interference_detected=True)
        self.stats["silent"] += 1
        return FrameFate(kind="silent", delivered=False, feedback=None,
                         observation=obs)
