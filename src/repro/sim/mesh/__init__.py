"""Multi-hop mesh and roaming simulation layer.

Where :mod:`repro.sim.topology` models a single-AP star driven by
per-link traces, this package models a *spatial* network: nodes live
at 2-D positions, large-scale attenuation comes from
:class:`repro.channel.pathloss.LogDistancePathLoss` (log-distance
plus optional log-normal shadowing), small-scale fading from per-link
:class:`repro.channel.rayleigh.RayleighFadingProcess` realisations,
and frame fates are computed per transmission by a pluggable
:class:`repro.phy.backend.PhyBackend` from the geometry-derived SNR
trajectory — no traces, and no hand-set ``carrier_sense_prob``:
carrier sense, hidden terminals, and capture all emerge from received
power.

Layers:

* :mod:`repro.sim.mesh.geometry` — node positions over time
  (static relays, straight-line mobile clients).
* :mod:`repro.sim.mesh.radio` — :class:`MeshChannel`, a drop-in
  channel for the existing :class:`repro.sim.mac.Station` MAC with
  per-node receive buffers and SNR/timing collision checks.
* :mod:`repro.sim.mesh.forwarding` — TTL-bounded store-and-forward
  relaying (:class:`MeshPacket` / :class:`MeshNode`) with duplicate
  suppression; SoftPHY hints and rate adapters operate independently
  per hop because every relay hop is an ordinary MAC exchange.
* :mod:`repro.sim.mesh.network` — :class:`MeshNetwork`, the standard
  scenario family: a relay chain plus a roaming client that hands off
  between APs by received-power hysteresis.

Entry points::

    from repro.sim.mesh import MeshNetwork

    result = MeshNetwork(n_relays=3, client_speed_mps=30.0,
                         shadowing_sigma_db=4.0).run(0.2)
    result.delivery_rate, result.handoff_times
"""

from repro.sim.mesh.forwarding import MeshNode, MeshPacket
from repro.sim.mesh.geometry import LinearPath, MeshGeometry
from repro.sim.mesh.network import (CLIENT_ID, MeshNetwork, MeshResult,
                                    run_mesh_scenario)
from repro.sim.mesh.radio import MeshChannel, RxBufferEntry

__all__ = ["MeshGeometry", "LinearPath", "MeshChannel",
           "RxBufferEntry", "MeshPacket", "MeshNode", "MeshNetwork",
           "MeshResult", "run_mesh_scenario", "CLIENT_ID"]
