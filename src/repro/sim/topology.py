"""The Fig. 12 evaluation topology and experiment runners.

``N`` 802.11 clients associate with an access point; the AP connects
to a LAN gateway over a 50 Mbps / 10 ms point-to-point link; each
client runs one TCP flow against a wired LAN node (uplink by default,
as in sections 6.2-6.4).

:func:`run_tcp_uplink` wires everything together and returns per-flow
throughputs plus the frame logs used by the rate-selection accuracy
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.phy.rates import RATE_TABLE, RateTable
from repro.phy.transceiver import Transceiver
from repro.rateadapt.base import RateAdapter
from repro.sim.eventsim import Simulator
from repro.sim.mac import FrameLogEntry, MacConfig, Station
from repro.sim.tcp import MSS_BYTES, Segment, TcpReceiver, TcpSender
from repro.sim.wired import PointToPointLink
from repro.sim.wireless import WirelessChannel
from repro.traces.format import LinkTrace

__all__ = ["AccessPointNetwork", "TcpUplinkResult", "run_tcp_uplink",
           "make_airtime_fn", "MacContentionResult",
           "run_mac_contention"]

AP_ID = 0


def _station_rng(seed: int, sid: int) -> np.random.Generator:
    """Per-station backoff/collision RNG.

    One formula for every AP-centric topology (TCP uplink and MAC
    contention), so the two paths cannot silently diverge in how a
    simulation seed maps to per-station randomness.
    """
    return np.random.default_rng(seed + 1000 + sid)


def _build_wireless_channel(traces, rng, carrier_sense_prob: float,
                            detect_prob: float, use_postambles: bool,
                            phy_backend, rates: RateTable
                            ) -> WirelessChannel:
    """Assemble the shared wireless channel for an AP-centric topology.

    Clients sense each other with ``carrier_sense_prob`` while the AP
    always senses everyone; a backend given by name is resolved with
    *this* topology's rate table — a backend built against the default
    table would mis-index (or silently mis-model) any custom rate set.
    """
    def cs_prob(listener: int, transmitter: int) -> float:
        if listener == AP_ID or transmitter == AP_ID:
            return 1.0
        return carrier_sense_prob

    if phy_backend is not None:
        from repro.phy.backend import get_backend
        phy_backend = get_backend(phy_backend, rates=rates)
    return WirelessChannel(traces, rng, detect_prob=detect_prob,
                           use_postambles=use_postambles,
                           carrier_sense_prob=cs_prob,
                           phy_backend=phy_backend)


def make_airtime_fn(rates: Optional[RateTable] = None
                    ) -> Callable[[int, int], float]:
    """Frame airtime lookup derived from the real PHY layout.

    Durations come from :class:`repro.phy.Transceiver` geometry
    (preamble + header + body + postamble symbol counts), cached per
    (payload size, rate).
    """
    phy = Transceiver(rates=rates)
    cache: Dict = {}

    def airtime(payload_bits: int, rate_index: int) -> float:
        key = (payload_bits, rate_index)
        if key not in cache:
            padded = -(-payload_bits // 8) * 8   # byte-align
            cache[key] = phy.frame_airtime(max(padded, 8), rate_index)
        return cache[key]

    return airtime


@dataclass
class TcpUplinkResult:
    """Outcome of one :func:`run_tcp_uplink` experiment."""

    duration: float
    per_flow_bytes: List[int]
    frame_logs: Dict[int, List[FrameLogEntry]]
    channel_stats: Dict[str, int]
    traces: Dict

    @property
    def per_flow_mbps(self) -> List[float]:
        return [8.0 * b / self.duration / 1e6 for b in self.per_flow_bytes]

    @property
    def aggregate_mbps(self) -> float:
        return float(sum(self.per_flow_mbps))


class AccessPointNetwork:
    """The Fig. 12 topology, assembled and ready to run.

    Args:
        n_clients: number of 802.11 clients (station ids 1..N).
        uplink_traces / downlink_traces: per-client link traces
            (client -> AP and AP -> client); the paper uses different
            traces per direction.
        adapter_factory: ``(rates, trace) -> RateAdapter`` builder, one
            adapter instantiated per (station, peer) pair; ``trace``
            is that directed link's trace (None for unknown links) so
            the omniscient adapter can read the future.
        rates: the rate table (paper's six prototype rates).
        seed: simulation seed (backoff, collision coin flips).
        carrier_sense_prob: pairwise carrier sense probability between
            *client* stations (the AP always senses everyone).
        detect_prob / use_postambles: SoftPHY interference detection
            fidelity (see :class:`repro.sim.wireless.WirelessChannel`).
        mac_config: MAC parameters; the default queue size tracks the
            paper's "slightly exceeds the bandwidth-delay product".
        phy_backend: ``None`` for the traces' precomputed frame fates,
            or a :class:`repro.phy.backend.PhyBackend` / backend name
            (``"full"`` / ``"surrogate"``) to recompute each fate from
            the trace's SNR trajectory.
        recycle_traces: allow fewer traces than clients — client ``i``
            reuses trace ``i % len(traces)`` in each direction.  Trace
            generation dominates large-``N`` contention sweeps, so
            campaigns hand a small trace pool to 50+ stations; clients
            sharing a trace still fade independently of each other in
            MAC terms (independent backoff RNGs and queues), they just
            see the same SNR trajectory.
    """

    def __init__(self, n_clients: int,
                 uplink_traces: Sequence[LinkTrace],
                 downlink_traces: Sequence[LinkTrace],
                 adapter_factory: Callable[[RateTable], RateAdapter],
                 rates: Optional[RateTable] = None, seed: int = 1,
                 carrier_sense_prob: float = 1.0,
                 detect_prob: float = 0.8, use_postambles: bool = True,
                 mac_config: Optional[MacConfig] = None,
                 phy_backend=None, recycle_traces: bool = False):
        if n_clients < 1:
            raise ValueError("need at least one client")
        if not uplink_traces or not downlink_traces:
            raise ValueError("need at least one trace per direction")
        if not recycle_traces and (len(uplink_traces) < n_clients or
                                   len(downlink_traces) < n_clients):
            raise ValueError("need one trace per client per direction "
                             "(or pass recycle_traces=True)")
        self.rates = rates if rates is not None \
            else RATE_TABLE.prototype_subset()
        self.n_clients = n_clients
        self.sim = Simulator()
        rng = np.random.default_rng(seed)

        traces = {}
        for i in range(n_clients):
            client = i + 1
            traces[(client, AP_ID)] = \
                uplink_traces[i % len(uplink_traces)]
            traces[(AP_ID, client)] = \
                downlink_traces[i % len(downlink_traces)]
        self.traces = traces

        self.channel = _build_wireless_channel(
            traces, rng, carrier_sense_prob, detect_prob,
            use_postambles, phy_backend, self.rates)

        config = mac_config if mac_config is not None else MacConfig()
        airtime = make_airtime_fn(self.rates)
        factory = adapter_factory

        self.stations: Dict[int, Station] = {}
        for sid in range(n_clients + 1):
            def build_adapter(peer: int, sid=sid) -> RateAdapter:
                # The factory may want the link's trace (omniscient).
                return factory(self.rates, traces.get((sid, peer)))

            self.stations[sid] = Station(
                self.sim, self.channel, sid, _station_rng(seed, sid),
                adapter_factory=build_adapter,
                airtime_fn=airtime, config=config,
                on_deliver=self._on_wireless_deliver)

        self.wired = PointToPointLink(self.sim)
        self.wired.attach("a", self._on_wired_at_ap)
        self.wired.attach("b", self._on_wired_at_lan)

        self._senders: Dict[int, TcpSender] = {}
        self._receivers: Dict[int, TcpReceiver] = {}

    # -- plumbing -----------------------------------------------------------

    def _client_for_flow(self, flow: int) -> int:
        return flow + 1

    def _on_wireless_deliver(self, frame) -> None:
        """A frame crossed the wireless hop."""
        segment = frame.payload
        if not isinstance(segment, Segment):
            return
        if frame.dest == AP_ID:
            # Uplink data (or ACK) heading to the LAN.
            self.wired.send("a", segment, segment.size_bits)
        else:
            # Downlink: deliver to the client's TCP endpoint.
            sender = self._senders.get(segment.flow)
            if sender is not None and segment.is_ack:
                sender.on_ack(segment)

    def _on_wired_at_lan(self, segment: Segment) -> None:
        receiver = self._receivers.get(segment.flow)
        if receiver is not None and not segment.is_ack:
            receiver.on_data(segment)

    def _on_wired_at_ap(self, segment: Segment) -> None:
        # LAN -> AP: forward over the wireless downlink.
        client = self._client_for_flow(segment.flow)
        self.stations[AP_ID].send(client, segment, segment.size_bits)

    # -- flows -------------------------------------------------------------

    def add_tcp_uplink_flows(self) -> None:
        """One saturated TCP flow per client, client -> LAN node."""
        for flow in range(self.n_clients):
            client = self._client_for_flow(flow)
            station = self.stations[client]

            def tx_data(segment: Segment, station=station) -> None:
                station.send(AP_ID, segment, segment.size_bits)

            def tx_ack(segment: Segment) -> None:
                self.wired.send("b", segment, segment.size_bits)

            self._senders[flow] = TcpSender(self.sim, flow, tx_data)
            self._receivers[flow] = TcpReceiver(self.sim, flow, tx_ack)

    def run(self, duration: float) -> TcpUplinkResult:
        """Start all flows and simulate for ``duration`` seconds."""
        for sender in self._senders.values():
            sender.start()
        self.sim.run_until(duration)
        per_flow = [self._receivers[f].delivered_bytes
                    for f in range(self.n_clients)]
        logs = {sid: st.frame_log for sid, st in self.stations.items()}
        return TcpUplinkResult(duration=duration, per_flow_bytes=per_flow,
                               frame_logs=logs,
                               channel_stats=dict(self.channel.stats),
                               traces=self.traces)


def run_tcp_uplink(uplink_traces: Sequence[LinkTrace],
                   downlink_traces: Sequence[LinkTrace],
                   adapter_factory: Callable[..., RateAdapter],
                   n_clients: int, duration: float = 10.0, seed: int = 1,
                   carrier_sense_prob: float = 1.0,
                   detect_prob: float = 0.8, use_postambles: bool = True,
                   rates: Optional[RateTable] = None,
                   phy_backend=None,
                   recycle_traces: bool = False) -> TcpUplinkResult:
    """Build the Fig. 12 topology, run N uplink TCP flows, return results.

    ``phy_backend`` selects how frame fates are computed: ``None`` for
    the traces' precomputed columns, ``"full"`` / ``"surrogate"`` (or
    a :class:`repro.phy.backend.PhyBackend`) to recompute them per
    transmission from the SNR trajectory.  ``recycle_traces`` lets a
    small trace pool serve many clients (see
    :class:`AccessPointNetwork`).
    """
    network = AccessPointNetwork(
        n_clients=n_clients, uplink_traces=uplink_traces,
        downlink_traces=downlink_traces, adapter_factory=adapter_factory,
        rates=rates, seed=seed, carrier_sense_prob=carrier_sense_prob,
        detect_prob=detect_prob, use_postambles=use_postambles,
        phy_backend=phy_backend, recycle_traces=recycle_traces)
    network.add_tcp_uplink_flows()
    return network.run(duration)


@dataclass
class MacContentionResult:
    """Outcome of one :func:`run_mac_contention` experiment."""

    duration: float
    payload_bits: int
    per_client_frames: List[int]
    frame_logs: Dict[int, List[FrameLogEntry]]
    channel_stats: Dict[str, int]

    @property
    def per_client_mbps(self) -> List[float]:
        return [n * self.payload_bits / self.duration / 1e6
                for n in self.per_client_frames]

    @property
    def aggregate_mbps(self) -> float:
        return float(sum(self.per_client_mbps))


def run_mac_contention(uplink_traces: Sequence[LinkTrace],
                       adapter_factory: Callable[..., RateAdapter],
                       n_clients: int, duration: float = 0.2,
                       payload_bits: int = 368, seed: int = 1,
                       carrier_sense_prob: float = 1.0,
                       detect_prob: float = 0.8,
                       use_postambles: bool = True,
                       rates: Optional[RateTable] = None,
                       phy_backend=None) -> MacContentionResult:
    """Saturated MAC-level contention: N clients flood the AP.

    A pure link-layer workload — no TCP, no wired segment — so frame
    sizes are a free knob.  With small payloads this is the cheapest
    scenario that still exercises contention, backoff, rate adaptation
    and both PHY backends end to end, which makes it the MAC-level
    golden pinned by ``tests/golden/regenerate.py``.

    Each client keeps its queue full (refilled on drain) and sends to
    the AP for ``duration`` seconds; ``uplink_traces`` are recycled
    across clients when fewer than ``n_clients`` are given.
    """
    if n_clients < 1:
        raise ValueError("need at least one client")
    if not uplink_traces:
        raise ValueError("need at least one uplink trace")
    rate_table = rates if rates is not None \
        else RATE_TABLE.prototype_subset()
    sim = Simulator()
    rng = np.random.default_rng(seed)
    traces = {(i + 1, AP_ID): uplink_traces[i % len(uplink_traces)]
              for i in range(n_clients)}
    channel = _build_wireless_channel(
        traces, rng, carrier_sense_prob, detect_prob, use_postambles,
        phy_backend, rate_table)
    airtime = make_airtime_fn(rate_table)

    stations: Dict[int, Station] = {}

    def make_refill(sid: int) -> Callable[[], None]:
        def refill() -> None:
            while stations[sid].send(AP_ID, None, payload_bits):
                pass
        return refill

    for sid in range(n_clients + 1):
        def build_adapter(peer: int, sid=sid) -> RateAdapter:
            return adapter_factory(rate_table,
                                   traces.get((sid, peer)))

        stations[sid] = Station(
            sim, channel, sid, _station_rng(seed, sid),
            adapter_factory=build_adapter, airtime_fn=airtime,
            on_queue_drain=make_refill(sid) if sid != AP_ID else None)
    for sid in range(1, n_clients + 1):
        make_refill(sid)()
    sim.run_until(duration)
    return MacContentionResult(
        duration=duration, payload_bits=payload_bits,
        per_client_frames=[stations[s].delivered_frames
                           for s in range(1, n_clients + 1)],
        frame_logs={sid: st.frame_log for sid, st in stations.items()},
        channel_stats=dict(channel.stats))
