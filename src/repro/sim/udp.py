"""UDP traffic sources.

Used by the Table 1 / Fig. 4 silent-loss experiment, where "the two
senders transmit UDP packets as fast as possible" — i.e. saturated
sources that keep the MAC queue non-empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.eventsim import Simulator

__all__ = ["Datagram", "UdpSource"]


@dataclass(frozen=True)
class Datagram:
    """One UDP datagram."""

    flow: int
    seq: int
    size_bytes: int

    @property
    def size_bits(self) -> int:
        return 8 * self.size_bytes


class UdpSource:
    """A saturated or constant-bit-rate datagram source.

    Args:
        sim: event engine.
        flow: flow identifier.
        transmit: callback accepting each datagram; must return True
            if the packet was accepted (queue not full).
        size_bytes: datagram payload size.
        interval: seconds between datagrams; ``None`` means saturated
            (a new datagram is offered whenever :meth:`pump` is
            called, which the MAC does each time its queue drains).
    """

    def __init__(self, sim: Simulator, flow: int,
                 transmit: Callable[[Datagram], bool],
                 size_bytes: int = 1400,
                 interval: Optional[float] = None):
        if size_bytes <= 0:
            raise ValueError("datagram size must be positive")
        if interval is not None and interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.flow = flow
        self._transmit = transmit
        self.size_bytes = size_bytes
        self.interval = interval
        self.sent = 0

    def start(self) -> None:
        """Begin generating traffic."""
        if self.interval is None:
            self.pump()
        else:
            self._tick()

    def _tick(self) -> None:
        self._offer()
        self.sim.schedule(self.interval, self._tick)

    def _offer(self) -> bool:
        accepted = self._transmit(Datagram(flow=self.flow, seq=self.sent,
                                           size_bytes=self.size_bytes))
        if accepted:
            self.sent += 1
        return accepted

    def pump(self, target_backlog: int = 4) -> None:
        """Offer datagrams until the stack below stops accepting.

        Saturated mode only: the MAC calls this whenever its queue has
        room, keeping ``target_backlog`` frames queued.
        """
        if self.interval is not None:
            return
        for _ in range(target_backlog):
            if not self._offer():
                return
