"""A discrete-event wireless network simulator (the ns-3 stand-in).

The paper evaluates SoftRate in ns-3 with the PHY replaced by
software-radio traces (section 6.1).  This package plays the same
role:

* :mod:`repro.sim.eventsim` — deterministic event engine;
* :mod:`repro.sim.queueing` — drop-tail queues;
* :mod:`repro.sim.wired` — point-to-point links (the AP-LAN backhaul);
* :mod:`repro.sim.tcp` / :mod:`repro.sim.udp` — transports;
* :mod:`repro.sim.wireless` — the trace-driven wireless channel with
  collision geometry (preamble/postamble overlap accounting);
* :mod:`repro.sim.mac` — 802.11-like CSMA/CA MAC with link-layer
  feedback, probabilistic carrier sense, and pluggable rate adapters;
* :mod:`repro.sim.slotmac` — the slot-synchronous array-state twin of
  the MAC for 1000-station saturated cells (bit-identical frame logs
  on shared scenarios; see ``docs/slotmac.md``);
* :mod:`repro.sim.topology` — the Fig. 12 evaluation topology.
"""

from repro.sim.eventsim import Simulator
from repro.sim.queueing import DropTailQueue
from repro.sim.wired import PointToPointLink
from repro.sim.tcp import TcpReceiver, TcpSender, Segment
from repro.sim.udp import UdpSource
from repro.sim.wireless import WirelessChannel, MacFrame
from repro.sim.mac import Station, MacConfig
from repro.sim.topology import AccessPointNetwork, run_tcp_uplink

__all__ = [
    "Simulator",
    "DropTailQueue",
    "PointToPointLink",
    "TcpReceiver",
    "TcpSender",
    "Segment",
    "UdpSource",
    "WirelessChannel",
    "MacFrame",
    "Station",
    "MacConfig",
    "AccessPointNetwork",
    "run_tcp_uplink",
]
