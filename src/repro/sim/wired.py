"""Point-to-point wired links (the AP to LAN backhaul of Fig. 12)."""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.eventsim import Simulator
from repro.sim.queueing import DropTailQueue

__all__ = ["PointToPointLink"]


class PointToPointLink:
    """A full-duplex serial link with a drop-tail queue per direction.

    Args:
        sim: the event engine.
        rate_bps: link bandwidth (paper: 50 Mbps).
        delay: one-way propagation delay (paper: 10 ms).
        queue_capacity: packets buffered per direction.

    Each direction serialises packets in FIFO order: a packet of ``n``
    bits occupies the link for ``n / rate_bps`` seconds, then arrives
    ``delay`` seconds later at the far end's callback.
    """

    def __init__(self, sim: Simulator, rate_bps: float = 50e6,
                 delay: float = 10e-3, queue_capacity: int = 1000):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self._queues = {}
        self._busy = {}
        self._sinks = {}
        self._queue_capacity = queue_capacity

    def attach(self, endpoint: str,
               deliver: Callable[[Any], None]) -> None:
        """Register an endpoint (``"a"`` or ``"b"``) receive callback."""
        self._sinks[endpoint] = deliver
        self._queues.setdefault(endpoint, DropTailQueue(
            self._queue_capacity))
        self._busy.setdefault(endpoint, False)

    def send(self, from_endpoint: str, packet: Any,
             size_bits: int) -> bool:
        """Queue ``packet`` for transmission toward the other endpoint."""
        other = "b" if from_endpoint == "a" else "a"
        if other not in self._sinks:
            raise RuntimeError(f"endpoint {other!r} not attached")
        queue = self._queues[from_endpoint]
        accepted = queue.push((packet, size_bits))
        if accepted and not self._busy[from_endpoint]:
            self._transmit_next(from_endpoint)
        return accepted

    def _transmit_next(self, endpoint: str) -> None:
        queue = self._queues[endpoint]
        item = queue.pop()
        if item is None:
            self._busy[endpoint] = False
            return
        self._busy[endpoint] = True
        packet, size_bits = item
        tx_time = size_bits / self.rate_bps
        other = "b" if endpoint == "a" else "a"

        def deliver():
            self._sinks[other](packet)

        self.sim.schedule(tx_time + self.delay, deliver)
        self.sim.schedule(tx_time, lambda: self._transmit_next(endpoint))
