"""A minimal deterministic discrete-event simulation engine.

Events are ``(time, sequence, callback)`` triples in a binary heap;
the sequence number breaks ties deterministically in scheduling order,
so two runs with the same seeds produce identical histories.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

__all__ = ["Simulator", "EventHandle"]


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("_sim", "cancelled")

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event's callback from running."""
        if not self.cancelled:
            self.cancelled = True
            self._sim._cancelled += 1


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print(sim.now))
        sim.run_until(10.0)
    """

    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._counter = itertools.count()
        #: cancelled-but-unpopped entries still sitting in the heap.
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float,
                 callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float,
                    callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now ({self._now})")
        handle = EventHandle(self)
        heapq.heappush(self._heap, (time, next(self._counter), callback,
                                    handle))
        return handle

    def _pop(self):
        """Pop the earliest heap entry, maintaining the cancel count."""
        entry = heapq.heappop(self._heap)
        if entry[3].cancelled:
            self._cancelled -= 1
        return entry

    def run_until(self, end_time: float) -> None:
        """Process events up to and including ``end_time``."""
        while self._heap and self._heap[0][0] <= end_time:
            time, _seq, callback, handle = self._pop()
            self._now = time
            if not handle.cancelled:
                callback()
        self._now = max(self._now, end_time)

    def run(self, max_events: Optional[int] = None) -> None:
        """Drain the event queue (bounded by ``max_events`` if given).

        ``max_events`` bounds *popped* heap entries, cancelled or not —
        a heap stuffed with cancelled events cannot defeat the bound.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                return
            time, _seq, callback, handle = self._pop()
            processed += 1
            self._now = time
            if not handle.cancelled:
                callback()

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still awaiting execution."""
        return len(self._heap) - self._cancelled
