"""An 802.11-like CSMA/CA MAC with link-layer BER feedback.

Each :class:`Station` runs DIFS + slotted binary-exponential backoff,
transmits the head-of-line frame at the rate chosen by its (per-peer)
rate adapter, and waits one reserved feedback slot (SIFS + a
lowest-rate feedback frame, like an 802.11 ACK).  The fate of the
transmission — computed by :class:`repro.sim.wireless.WirelessChannel`
from the trace and any overlapping transmissions — is reported to the
adapter as either feedback (with the receiver's interference-free BER
and SNR estimates) or a silent loss.

Backoff follows 802.11 freeze-and-resume semantics: a station draws
its counter once per attempt and decrements it only across *idle*
slots.  When the medium turns busy mid-countdown the remaining count
is frozen and resumed — never redrawn — after the busy period (plus
DIFS).  Counting happens on slot boundaries anchored at the end of
the last busy period, so contenders share one slot grid: two counters
reaching zero on the same boundary transmit simultaneously and
collide, exactly as in the standard (and in the slot-synchronous
engine, :mod:`repro.sim.slotmac`, which this MAC is the oracle for).

Frames whose feedback shows failure are retransmitted with doubled
contention window; a frame is dropped (TCP then sees the loss) once
it has been transmitted ``retry_limit`` times in total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.rateadapt.base import RateAdapter
from repro.sim.eventsim import Simulator
from repro.sim.queueing import DropTailQueue
from repro.sim.wireless import (FrameFate, MacFrame, Transmission,
                                WirelessChannel)

__all__ = ["MacConfig", "Station", "FrameLogEntry"]

#: Tolerance when deciding whether a transmission seized the medium
#: exactly on one of our slot boundaries (simultaneous start — we may
#: still count that slot) or strictly inside a slot (the slot was cut:
#: freeze without decrementing).  Stations sharing an anchor compute
#: boundary times from identical float expressions, so genuinely
#: simultaneous events compare exactly equal; anything farther apart
#: than a nanosecond is a real mid-slot seizure.
_BOUNDARY_EPS = 1e-9


@dataclass(frozen=True)
class MacConfig:
    """802.11a-like MAC timing and policy parameters."""

    slot_time: float = 9e-6
    sifs: float = 16e-6
    difs: float = 34e-6
    cw_min: int = 15
    cw_max: int = 1023
    #: total transmissions of one frame before it is dropped (the
    #: first attempt counts: ``retry_limit=1`` never retransmits).
    retry_limit: int = 7
    queue_capacity: int = 50
    #: duration of the reserved feedback (ACK) slot at the lowest rate.
    feedback_duration: float = 50e-6
    #: added airtime when a frame is protected by RTS/CTS.
    rts_cts_overhead: float = 120e-6
    #: preamble/postamble durations (training symbols at 8 us each).
    preamble_duration: float = 16e-6
    postamble_duration: float = 8e-6


@dataclass(frozen=True)
class FrameLogEntry:
    """One transmission attempt, for rate-accuracy analysis (Fig. 14)."""

    time: float
    src: int
    dest: int
    rate_index: int
    kind: str               # FrameFate.kind
    delivered: bool
    retry: int


class Station:
    """One MAC entity (a client or the AP).

    Args:
        sim: event engine.
        channel: the shared wireless channel.
        station_id: unique id (also the address in traces).
        rng: random source for backoff.
        adapter_factory: builds a rate adapter per peer station.
        airtime_fn: ``(payload_bits, rate_index) -> seconds`` frame
            duration (from the PHY layout; supplied by the topology).
        config: MAC parameters.
        on_deliver: callback for frames received for this station.
        on_queue_drain: optional callback fired when the transmit
            queue has room again (used by saturated UDP sources).
    """

    def __init__(self, sim: Simulator, channel: WirelessChannel,
                 station_id: int, rng: np.random.Generator,
                 adapter_factory: Callable[[int], RateAdapter],
                 airtime_fn: Callable[[int, int], float],
                 config: MacConfig = MacConfig(),
                 on_deliver: Optional[Callable[[MacFrame], None]] = None,
                 on_queue_drain: Optional[Callable[[], None]] = None):
        self.sim = sim
        self.channel = channel
        self.id = station_id
        self.rng = rng
        self.config = config
        self._adapter_factory = adapter_factory
        self._adapters: Dict[int, RateAdapter] = {}
        self._airtime = airtime_fn
        self.queue = DropTailQueue(config.queue_capacity)
        self.on_deliver = on_deliver or (lambda frame: None)
        self.on_queue_drain = on_queue_drain
        channel.stations[station_id] = self
        self._busy = False          # contending or transmitting
        self._retry = 0
        self._cw = config.cw_min
        self._backoff = 0           # frozen/remaining backoff slots
        self._anchor = 0.0          # slot grid origin (idle start)
        self._boundary = 0          # slot boundaries since the anchor
        self._attempt_no = 0        # lifetime transmission counter
        self._seq = 0
        self.frame_log: List[FrameLogEntry] = []
        self.delivered_frames = 0
        self.dropped_frames = 0

    # -- upper-layer interface ---------------------------------------------

    def adapter(self, peer: int) -> RateAdapter:
        """The rate adapter used toward ``peer`` (created on demand)."""
        if peer not in self._adapters:
            self._adapters[peer] = self._adapter_factory(peer)
        return self._adapters[peer]

    def send(self, dest: int, payload, payload_bits: int) -> bool:
        """Queue a frame for ``dest``; returns False if the queue is full."""
        frame = MacFrame(src=self.id, dest=dest, seq=self._seq,
                         payload=payload, payload_bits=payload_bits)
        self._seq = (self._seq + 1) % 4096
        accepted = self.queue.push(frame)
        if accepted and not self._busy:
            self._begin_contention()
        return accepted

    # -- channel access -----------------------------------------------------

    def _begin_contention(self) -> None:
        """Draw a fresh backoff for the head-of-line frame's attempt."""
        self._busy = True
        self._backoff = int(self.rng.integers(0, self._cw + 1))
        self._resume()

    def _resume(self) -> None:
        """(Re)join the contention grid once the medium looks idle.

        If the medium is busy, sleep to the end of the reserved busy
        period and try again (new transmissions may extend it); when
        idle, anchor the slot grid here: boundary ``i`` falls at
        ``anchor + (difs + i*slot)``, and the frozen counter resumes
        counting from boundary 1 on.
        """
        now = self.sim.now
        window = self.channel.busy_window(self.id, now)
        if window is not None:
            self.sim.schedule_at(window[1], self._resume)
            return
        self._anchor = now
        self._boundary = 0
        self.sim.schedule_at(
            now + (self.config.difs
                   + self._boundary * self.config.slot_time),
            self._tick)

    def _tick(self) -> None:
        """One slot boundary on the contention grid.

        Boundary 0 ends DIFS; boundary ``i`` ends the ``i``-th backoff
        slot.  The counter decrements only when the slot just elapsed
        was idle — a transmission that seized the medium *inside* the
        slot freezes the counter as-is, while one starting exactly on
        this boundary still grants the elapsed slot (and a counter
        reaching zero here transmits simultaneously with it: a
        collision, as in slotted CSMA).
        """
        now = self.sim.now
        window = self.channel.busy_window(self.id, now)
        if window is not None and window[0] < now - _BOUNDARY_EPS:
            # The slot (or DIFS) was cut mid-way: freeze and resume.
            self.sim.schedule_at(window[1], self._resume)
            return
        if self._boundary > 0:
            self._backoff -= 1
        if self._backoff <= 0:
            frame = self.queue.peek()
            if frame is None:
                self._busy = False
                return
            self._transmit(frame)
            return
        if window is not None:
            # Someone seized the medium exactly on this boundary; the
            # elapsed slot counted, the next one will not.
            self.sim.schedule_at(window[1], self._resume)
            return
        self._boundary += 1
        self.sim.schedule_at(
            self._anchor + (self.config.difs
                            + self._boundary * self.config.slot_time),
            self._tick)

    def _transmit(self, frame: MacFrame) -> None:
        adapter = self.adapter(frame.dest)
        rate_index = adapter.choose_rate(self.sim.now)
        use_rts = adapter.wants_rts(self.sim.now)
        airtime = self._airtime(frame.payload_bits, rate_index)
        start = self.sim.now
        overhead = self.config.rts_cts_overhead if use_rts else 0.0
        done = overhead + airtime + self.config.sifs \
            + self.config.feedback_duration
        self._attempt_no += 1
        tx = Transmission(
            frame=frame, rate_index=rate_index, start=start + overhead,
            end=start + overhead + airtime,
            preamble_end=start + overhead + self.config.preamble_duration,
            postamble_start=start + overhead + airtime
            - self.config.postamble_duration,
            rts_protected=use_rts,
            reserved_start=start, reserved_until=start + done,
            attempt=self._attempt_no)
        self.channel.begin_transmission(tx)
        self.sim.schedule_at(tx.reserved_until,
                             lambda: self._conclude(tx, airtime))

    # -- outcome handling -----------------------------------------------------

    def _conclude(self, tx: Transmission, airtime: float) -> None:
        fate = self.channel.conclude_transmission(tx)
        adapter = self.adapter(tx.frame.dest)
        self.frame_log.append(FrameLogEntry(
            time=tx.start, src=self.id, dest=tx.frame.dest,
            rate_index=tx.rate_index, kind=fate.kind,
            delivered=fate.delivered, retry=self._retry))
        if fate.feedback is not None:
            adapter.on_feedback(self.sim.now, tx.rate_index,
                                fate.feedback.quantised(), airtime)
        else:
            adapter.on_silent_loss(self.sim.now, tx.rate_index, airtime)

        if fate.delivered:
            receiver = self.channel.stations.get(tx.frame.dest)
            if receiver is not None:
                receiver.on_deliver(tx.frame)
            self.delivered_frames += 1
            self._frame_done(success=True)
        else:
            self._retry += 1
            if self._retry >= self.config.retry_limit:
                self.dropped_frames += 1
                self._frame_done(success=False)
            else:
                self._cw = min(2 * self._cw + 1, self.config.cw_max)
                self._begin_contention()

    def _frame_done(self, success: bool) -> None:
        self.queue.pop()
        self._retry = 0
        self._cw = self.config.cw_min
        if self.on_queue_drain is not None:
            self.on_queue_drain()
        if not self.queue.empty:
            self._begin_contention()
        else:
            self._busy = False
