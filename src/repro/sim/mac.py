"""An 802.11-like CSMA/CA MAC with link-layer BER feedback.

Each :class:`Station` runs DIFS + slotted binary-exponential backoff,
transmits the head-of-line frame at the rate chosen by its (per-peer)
rate adapter, and waits one reserved feedback slot (SIFS + a
lowest-rate feedback frame, like an 802.11 ACK).  The fate of the
transmission — computed by :class:`repro.sim.wireless.WirelessChannel`
from the trace and any overlapping transmissions — is reported to the
adapter as either feedback (with the receiver's interference-free BER
and SNR estimates) or a silent loss.

Frames whose feedback shows failure are retransmitted with doubled
contention window up to ``retry_limit`` attempts, after which they are
dropped (TCP then sees the loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.rateadapt.base import RateAdapter
from repro.sim.eventsim import Simulator
from repro.sim.queueing import DropTailQueue
from repro.sim.wireless import (FrameFate, MacFrame, Transmission,
                                WirelessChannel)

__all__ = ["MacConfig", "Station", "FrameLogEntry"]


@dataclass(frozen=True)
class MacConfig:
    """802.11a-like MAC timing and policy parameters."""

    slot_time: float = 9e-6
    sifs: float = 16e-6
    difs: float = 34e-6
    cw_min: int = 15
    cw_max: int = 1023
    retry_limit: int = 7
    queue_capacity: int = 50
    #: duration of the reserved feedback (ACK) slot at the lowest rate.
    feedback_duration: float = 50e-6
    #: added airtime when a frame is protected by RTS/CTS.
    rts_cts_overhead: float = 120e-6
    #: preamble/postamble durations (training symbols at 8 us each).
    preamble_duration: float = 16e-6
    postamble_duration: float = 8e-6


@dataclass(frozen=True)
class FrameLogEntry:
    """One transmission attempt, for rate-accuracy analysis (Fig. 14)."""

    time: float
    src: int
    dest: int
    rate_index: int
    kind: str               # FrameFate.kind
    delivered: bool
    retry: int


class Station:
    """One MAC entity (a client or the AP).

    Args:
        sim: event engine.
        channel: the shared wireless channel.
        station_id: unique id (also the address in traces).
        rng: random source for backoff.
        adapter_factory: builds a rate adapter per peer station.
        airtime_fn: ``(payload_bits, rate_index) -> seconds`` frame
            duration (from the PHY layout; supplied by the topology).
        config: MAC parameters.
        on_deliver: callback for frames received for this station.
        on_queue_drain: optional callback fired when the transmit
            queue has room again (used by saturated UDP sources).
    """

    def __init__(self, sim: Simulator, channel: WirelessChannel,
                 station_id: int, rng: np.random.Generator,
                 adapter_factory: Callable[[int], RateAdapter],
                 airtime_fn: Callable[[int, int], float],
                 config: MacConfig = MacConfig(),
                 on_deliver: Optional[Callable[[MacFrame], None]] = None,
                 on_queue_drain: Optional[Callable[[], None]] = None):
        self.sim = sim
        self.channel = channel
        self.id = station_id
        self.rng = rng
        self.config = config
        self._adapter_factory = adapter_factory
        self._adapters: Dict[int, RateAdapter] = {}
        self._airtime = airtime_fn
        self.queue = DropTailQueue(config.queue_capacity)
        self.on_deliver = on_deliver or (lambda frame: None)
        self.on_queue_drain = on_queue_drain
        channel.stations[station_id] = self
        self._busy = False          # contending or transmitting
        self._retry = 0
        self._cw = config.cw_min
        self._seq = 0
        self.frame_log: List[FrameLogEntry] = []
        self.delivered_frames = 0
        self.dropped_frames = 0

    # -- upper-layer interface ---------------------------------------------

    def adapter(self, peer: int) -> RateAdapter:
        """The rate adapter used toward ``peer`` (created on demand)."""
        if peer not in self._adapters:
            self._adapters[peer] = self._adapter_factory(peer)
        return self._adapters[peer]

    def send(self, dest: int, payload, payload_bits: int) -> bool:
        """Queue a frame for ``dest``; returns False if the queue is full."""
        frame = MacFrame(src=self.id, dest=dest, seq=self._seq,
                         payload=payload, payload_bits=payload_bits)
        self._seq = (self._seq + 1) % 4096
        accepted = self.queue.push(frame)
        if accepted and not self._busy:
            self._begin_contention()
        return accepted

    # -- channel access -----------------------------------------------------

    def _begin_contention(self) -> None:
        self._busy = True
        backoff = int(self.rng.integers(0, self._cw + 1))
        self._attempt_after(self.config.difs
                            + backoff * self.config.slot_time)

    def _attempt_after(self, delay: float) -> None:
        self.sim.schedule(delay, self._try_transmit)

    def _try_transmit(self) -> None:
        frame = self.queue.peek()
        if frame is None:
            self._busy = False
            return
        busy_until = self.channel.medium_busy_until(self.id, self.sim.now)
        if busy_until is not None:
            # Medium sensed busy: defer to its end, then re-contend.
            backoff = int(self.rng.integers(0, self._cw + 1))
            wait = max(busy_until - self.sim.now, 0.0) + self.config.difs \
                + backoff * self.config.slot_time
            self._attempt_after(wait)
            return
        self._transmit(frame)

    def _transmit(self, frame: MacFrame) -> None:
        adapter = self.adapter(frame.dest)
        rate_index = adapter.choose_rate(self.sim.now)
        use_rts = adapter.wants_rts(self.sim.now)
        airtime = self._airtime(frame.payload_bits, rate_index)
        start = self.sim.now
        overhead = self.config.rts_cts_overhead if use_rts else 0.0
        tx = Transmission(
            frame=frame, rate_index=rate_index, start=start + overhead,
            end=start + overhead + airtime,
            preamble_end=start + overhead + self.config.preamble_duration,
            postamble_start=start + overhead + airtime
            - self.config.postamble_duration,
            rts_protected=use_rts)
        self.channel.begin_transmission(tx)
        done = overhead + airtime + self.config.sifs \
            + self.config.feedback_duration
        self.sim.schedule(done, lambda: self._conclude(tx, airtime))

    # -- outcome handling -----------------------------------------------------

    def _conclude(self, tx: Transmission, airtime: float) -> None:
        fate = self.channel.conclude_transmission(tx)
        adapter = self.adapter(tx.frame.dest)
        self.frame_log.append(FrameLogEntry(
            time=tx.start, src=self.id, dest=tx.frame.dest,
            rate_index=tx.rate_index, kind=fate.kind,
            delivered=fate.delivered, retry=self._retry))
        if fate.feedback is not None:
            adapter.on_feedback(self.sim.now, tx.rate_index,
                                fate.feedback.quantised(), airtime)
        else:
            adapter.on_silent_loss(self.sim.now, tx.rate_index, airtime)

        if fate.delivered:
            receiver = self.channel.stations.get(tx.frame.dest)
            if receiver is not None:
                receiver.on_deliver(tx.frame)
            self.delivered_frames += 1
            self._frame_done(success=True)
        else:
            self._retry += 1
            if self._retry > self.config.retry_limit:
                self.dropped_frames += 1
                self._frame_done(success=False)
            else:
                self._cw = min(2 * self._cw + 1, self.config.cw_max)
                self._busy = True
                backoff = int(self.rng.integers(0, self._cw + 1))
                self._attempt_after(self.config.difs
                                    + backoff * self.config.slot_time)

    def _frame_done(self, success: bool) -> None:
        self.queue.pop()
        self._retry = 0
        self._cw = self.config.cw_min
        if self.on_queue_drain is not None:
            self.on_queue_drain()
        if not self.queue.empty:
            self._begin_contention()
        else:
            self._busy = False
