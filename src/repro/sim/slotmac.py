"""A slot-synchronous CSMA/CA engine for very large contention cells.

The event-driven MAC (:mod:`repro.sim.mac`) schedules every DIFS
boundary, backoff tick, transmission and feedback slot of every
station through the event heap — faithful, but Python-event-bound: the
``contention-scale`` campaign tops out around 50 stations.  This
module advances the *same* MAC one contention round at a time with
every station's counter held in numpy arrays, which is possible
because a saturated contention cell under perfect carrier sense is
exactly slot-synchronous:

* after every busy period all contenders re-anchor on one shared slot
  grid (busy-period end + DIFS + ``k`` slots);
* frozen backoff counters decrement only across idle slots, so the
  round's winners are simply ``argmin`` over the counter array, and
  simultaneous zero-counters transmit together and collide;
* winners hand their frames to the existing
  :class:`~repro.phy.backend.PhyBackend` / rate-adapter stack, and
  fates come from the *shared* taxonomy entry point
  (:meth:`~repro.sim.wireless.WirelessChannel.resolve_fate`) with the
  round's co-winners as the overlap set.

Because both engines compute slot boundaries, transmission windows
and per-attempt fate RNG streams from identical float expressions,
their frame logs agree **bit for bit** — the oracle-parity wall in
``tests/sim/test_slotmac_parity.py`` asserts equal
:func:`~repro.analysis.metrics.frame_log_digest` values against the
event-driven MAC on small cells, and the ``contention-xl`` campaign
then rides the slot engine to 1000-station cells.

Scope: the saturated MAC-contention workload of
:func:`repro.sim.topology.run_mac_contention` (clients flooding one
AP) with perfect carrier sense.  TCP cells, partial carrier sense and
hidden terminals stay on the event-driven oracle — see
``docs/slotmac.md`` for the fidelity notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.phy.rates import RATE_TABLE, RateTable
from repro.rateadapt.base import RateAdapter
from repro.sim.mac import FrameLogEntry, MacConfig
from repro.sim.topology import (AP_ID, MacContentionResult,
                                _build_wireless_channel, _station_rng,
                                make_airtime_fn)
from repro.sim.wireless import MacFrame, Transmission, WirelessChannel
from repro.traces.format import LinkTrace

__all__ = ["SlotMacEngine", "PeriodRecord", "run_slot_contention"]


@dataclass(frozen=True)
class PeriodRecord:
    """One contention round, for invariant/property tests.

    Captured only when the engine is built with
    ``record_periods=True``: the anchor time, the idle slots counted
    (``k``), who transmitted, and the counter array before/after the
    round's decrement (*before* any winner redraw).
    """

    anchor: float
    k: int
    winners: tuple
    backoff_before: tuple
    backoff_after: tuple
    cw: tuple
    retry: tuple


class SlotMacEngine:
    """All stations' contention state advanced as arrays, slot by slot.

    Args:
        channel: the shared :class:`WirelessChannel` (perfect carrier
            sense); used for traces, per-attempt fate streams and the
            shared fate taxonomy — the slot engine never touches its
            event-driven busy-window machinery.
        adapters: per-client rate adapters keyed by station id.
        rngs: per-client backoff generators keyed by station id (same
            seed derivation as the event engine's stations).
        airtime_fn: ``(payload_bits, rate_index) -> seconds``.
        n_clients: stations 1..N flooding the AP.
        payload_bits: frame payload size of the saturated workload.
        config: MAC timing/policy parameters.
        record_periods: keep a :class:`PeriodRecord` per round (for
            the Hypothesis invariant suite; off for production runs).
    """

    def __init__(self, channel: WirelessChannel,
                 adapters: Dict[int, RateAdapter],
                 rngs: Dict[int, np.random.Generator],
                 airtime_fn: Callable[[int, int], float],
                 n_clients: int, payload_bits: int,
                 config: MacConfig = MacConfig(),
                 record_periods: bool = False):
        if n_clients < 1:
            raise ValueError("need at least one client")
        self.channel = channel
        self.adapters = adapters
        self.rngs = rngs
        self.airtime = airtime_fn
        self.n = n_clients
        self.payload_bits = payload_bits
        self.config = config
        self.record_periods = record_periods
        self.period_log: List[PeriodRecord] = []

        self.ids = np.arange(1, n_clients + 1)
        # Initial backoff draws, ascending station id — the same
        # per-station generators and draw the event engine makes when
        # the saturated sources first fill their queues at t=0.
        self.cw = np.full(n_clients, config.cw_min, dtype=np.int64)
        self.backoff = np.array(
            [int(rngs[sid].integers(0, config.cw_min + 1))
             for sid in self.ids], dtype=np.int64)
        self.retry = np.zeros(n_clients, dtype=np.int64)
        self.attempts = np.zeros(n_clients, dtype=np.int64)
        self.served = np.zeros(n_clients, dtype=np.int64)
        self.delivered = np.zeros(n_clients, dtype=np.int64)
        self.dropped = np.zeros(n_clients, dtype=np.int64)
        self.frame_logs: Dict[int, List[FrameLogEntry]] = {
            sid: [] for sid in range(n_clients + 1)}

    # -- one contention round ------------------------------------------------

    def _build_transmission(self, sid: int, grant: float) -> Transmission:
        """The winner's frame, rate choice and medium reservation.

        Every float expression here mirrors
        :meth:`repro.sim.mac.Station._transmit` term for term — the
        timestamps land in the frame log via ``repr``, so bit-equality
        of the parity digests depends on it.
        """
        cfg = self.config
        i = sid - 1
        adapter = self.adapters[sid]
        rate_index = adapter.choose_rate(grant)
        use_rts = adapter.wants_rts(grant)
        airtime = self.airtime(self.payload_bits, rate_index)
        start = grant
        overhead = cfg.rts_cts_overhead if use_rts else 0.0
        done = overhead + airtime + cfg.sifs + cfg.feedback_duration
        self.attempts[i] += 1
        frame = MacFrame(src=sid, dest=AP_ID,
                         seq=int(self.served[i]) % 4096, payload=None,
                         payload_bits=self.payload_bits)
        return Transmission(
            frame=frame, rate_index=rate_index, start=start + overhead,
            end=start + overhead + airtime,
            preamble_end=start + overhead + cfg.preamble_duration,
            postamble_start=start + overhead + airtime
            - cfg.postamble_duration,
            rts_protected=use_rts,
            reserved_start=start, reserved_until=start + done,
            attempt=int(self.attempts[i]))

    def _conclude(self, sid: int, tx: Transmission,
                  overlapping: List[Transmission]) -> None:
        """Resolve one winner's fate and update its MAC state —
        the array-state twin of :meth:`Station._conclude`."""
        cfg = self.config
        i = sid - 1
        fate = self.channel.resolve_fate(tx, overlapping)
        adapter = self.adapters[sid]
        now = tx.reserved_until
        # Not ``tx.end - tx.start``: that float subtraction is an ulp
        # off the raw airtime the event engine hands its adapters, and
        # SampleRate's strict airtime comparisons would diverge.
        airtime = self.airtime(self.payload_bits, tx.rate_index)
        self.frame_logs[sid].append(FrameLogEntry(
            time=tx.start, src=sid, dest=AP_ID,
            rate_index=tx.rate_index, kind=fate.kind,
            delivered=fate.delivered, retry=int(self.retry[i])))
        if fate.feedback is not None:
            adapter.on_feedback(now, tx.rate_index,
                                fate.feedback.quantised(), airtime)
        else:
            adapter.on_silent_loss(now, tx.rate_index, airtime)

        if fate.delivered:
            self.delivered[i] += 1
            self.served[i] += 1
            self.retry[i] = 0
            self.cw[i] = cfg.cw_min
        else:
            self.retry[i] += 1
            if self.retry[i] >= cfg.retry_limit:
                self.dropped[i] += 1
                self.served[i] += 1
                self.retry[i] = 0
                self.cw[i] = cfg.cw_min
            else:
                self.cw[i] = min(2 * int(self.cw[i]) + 1, cfg.cw_max)
        # The saturated source refills instantly: redraw for the next
        # attempt (retry or fresh head-of-line frame).
        self.backoff[i] = int(self.rngs[sid].integers(
            0, int(self.cw[i]) + 1))

    def run(self, duration: float) -> None:
        """Advance round by round until the grant time passes
        ``duration`` (matching ``Simulator.run_until`` semantics:
        fates conclude only when the reserved window closes within
        the horizon)."""
        cfg = self.config
        anchor = 0.0
        while True:
            k = int(self.backoff.min())
            grant = anchor + (cfg.difs + k * cfg.slot_time)
            if grant > duration:
                break
            mask = self.backoff == k
            winners = [int(sid) for sid in self.ids[mask]]
            backoff_before = tuple(int(b) for b in self.backoff) \
                if self.record_periods else ()
            self.backoff -= k       # idle slots count for everyone
            txs = {sid: self._build_transmission(sid, grant)
                   for sid in winners}
            for sid in winners:
                tx = txs[sid]
                if tx.reserved_until > duration:
                    continue        # still in flight at the horizon
                overlapping = [
                    other for osid, other in txs.items()
                    if osid != sid and other.start < tx.end
                    and tx.start < other.end]
                self._conclude(sid, tx, overlapping)
            if self.record_periods:
                self.period_log.append(PeriodRecord(
                    anchor=anchor, k=k, winners=tuple(winners),
                    backoff_before=backoff_before,
                    backoff_after=tuple(int(b) for b in self.backoff),
                    cw=tuple(int(c) for c in self.cw),
                    retry=tuple(int(r) for r in self.retry)))
            anchor = max(tx.reserved_until for tx in txs.values())


def run_slot_contention(uplink_traces: Sequence[LinkTrace],
                        adapter_factory: Callable[..., RateAdapter],
                        n_clients: int, duration: float = 0.2,
                        payload_bits: int = 368, seed: int = 1,
                        carrier_sense_prob: float = 1.0,
                        detect_prob: float = 0.8,
                        use_postambles: bool = True,
                        rates: Optional[RateTable] = None,
                        phy_backend=None,
                        record_periods: bool = False,
                        _engine_out: Optional[list] = None
                        ) -> MacContentionResult:
    """Slot-synchronous twin of
    :func:`repro.sim.topology.run_mac_contention`.

    Same arguments, same seed derivations, same
    :class:`MacContentionResult` — and on any scenario both engines
    support, the same frame logs bit for bit.  The slot engine only
    models perfect carrier sense (the lockstep property it vectorizes
    around), so ``carrier_sense_prob`` must be 1.0; hidden-terminal
    studies stay on the event-driven oracle.

    ``record_periods`` keeps a per-round :class:`PeriodRecord` trail
    (exposed through ``_engine_out``, a one-element sink for the
    engine instance, used by the invariant tests).
    """
    if n_clients < 1:
        raise ValueError("need at least one client")
    if not uplink_traces:
        raise ValueError("need at least one uplink trace")
    if carrier_sense_prob != 1.0:
        raise ValueError(
            "the slot-synchronous engine models perfect carrier sense "
            f"only (carrier_sense_prob={carrier_sense_prob!r}); use "
            "run_mac_contention for partial sensing")
    rate_table = rates if rates is not None \
        else RATE_TABLE.prototype_subset()
    rng = np.random.default_rng(seed)
    traces = {(i + 1, AP_ID): uplink_traces[i % len(uplink_traces)]
              for i in range(n_clients)}
    channel = _build_wireless_channel(
        traces, rng, carrier_sense_prob, detect_prob, use_postambles,
        phy_backend, rate_table)
    airtime = make_airtime_fn(rate_table)
    adapters = {sid: adapter_factory(rate_table,
                                     traces.get((sid, AP_ID)))
                for sid in range(1, n_clients + 1)}
    rngs = {sid: _station_rng(seed, sid)
            for sid in range(1, n_clients + 1)}
    engine = SlotMacEngine(channel, adapters, rngs, airtime,
                           n_clients, payload_bits,
                           record_periods=record_periods)
    if _engine_out is not None:
        _engine_out.append(engine)
    engine.run(duration)
    return MacContentionResult(
        duration=duration, payload_bits=payload_bits,
        per_client_frames=[int(engine.delivered[s - 1])
                           for s in range(1, n_clients + 1)],
        frame_logs=engine.frame_logs,
        channel_stats=dict(channel.stats))
