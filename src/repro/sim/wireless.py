"""The trace-driven wireless channel with collision geometry.

Frame fates come from two orthogonal sources, exactly as in the
paper's methodology (section 6.1):

* **channel state** — looked up in the link's :class:`LinkTrace`
  ("these traces collected in isolation accurately model frame
  receptions when there are no concurrent transmissions");
* **collisions** — computed from the temporal overlap of concurrent
  transmissions ("in case more than two senders transmit
  simultaneously, we assume both colliding frames are lost").

The overlap geometry implements section 3.2's taxonomy:

* the receiver locks onto the earliest-starting frame; a later
  overlapping frame corrupts its tail — a *collision* the SoftPHY
  detector can excise (success probability ``detect_prob``, 0.8 for
  the present implementation, 1.0 for the "ideal" variant of
  section 6.4);
* a frame arriving while the receiver is locked elsewhere loses its
  preamble; if its **postamble** outlives the interference the
  receiver still learns of the frame (postamble feedback), otherwise
  the loss is *silent*.

The *clean-channel* outcome of a frame (delivery, BER, SoftPHY
feedback) can come from two sources, selected by ``phy_backend``:

* ``None`` (default) — the precomputed per-slot, per-rate columns of
  the :class:`LinkTrace` (the paper's methodology, fastest);
* a :class:`repro.phy.backend.PhyBackend` (or its name) — the fate is
  recomputed per transmission from the trace's true-SNR trajectory,
  either bit-exactly (``"full"``) or through the calibrated surrogate
  (``"surrogate"``).  The collision geometry above is orthogonal and
  applies identically in every case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.feedback import Feedback
from repro.core.mix import mix64
from repro.traces.format import FrameObservation, LinkTrace

__all__ = ["MacFrame", "Transmission", "FrameFate", "WirelessChannel",
           "COLLISION_BER", "occupancy_window"]

#: BER reported when a collision goes *undetected*: the receiver sees
#: garbage over part of the frame and (wrongly) attributes it to the
#: channel.  Any value deep in the "move down" region works.
COLLISION_BER = 0.1


@dataclass
class MacFrame:
    """One link-layer frame handed to the channel."""

    src: int
    dest: int
    seq: int
    payload: Any
    payload_bits: int
    is_feedback: bool = False


@dataclass
class Transmission:
    """An in-flight frame.

    ``start``/``end`` bound the frame body's airtime (what the
    collision geometry runs on); ``reserved_start``/``reserved_until``
    bound the full medium occupancy the MAC reserves around it — any
    RTS/CTS exchange before the body plus the SIFS + feedback slot
    after it.  Carrier sense keys on the reserved window, so a
    contender never counts down through another station's ACK slot.
    When the reserved bounds are ``None`` (transmissions built outside
    the MAC, e.g. in channel-level tests) the body airtime is used.
    """

    frame: MacFrame
    rate_index: int
    start: float
    end: float
    preamble_end: float
    postamble_start: float
    rts_protected: bool = False
    #: full medium reservation around the body (None = body airtime).
    reserved_start: Optional[float] = None
    reserved_until: Optional[float] = None
    #: the sender's monotonically increasing attempt number — the
    #: order-independent key of the per-attempt fate RNG stream.
    attempt: int = 0
    #: carrier-sense samples, keyed by observing station id.
    sensed_by: Dict[int, bool] = field(default_factory=dict)


def occupancy_window(tx: Transmission) -> Tuple[float, float]:
    """The ``[start, end)`` interval ``tx`` keeps the medium busy."""
    start = tx.start if tx.reserved_start is None else tx.reserved_start
    end = tx.end if tx.reserved_until is None else tx.reserved_until
    return start, end


@dataclass(frozen=True)
class FrameFate:
    """What the receiver experienced for one transmission.

    ``kind`` is one of:

    * ``"clean"`` — no overlap; outcome purely from the trace.
    * ``"collided"`` — receiver was locked onto this frame when
      another transmission overlapped its body.
    * ``"postamble"`` — preamble lost to an earlier frame, but the
      postamble survived (only when postambles are enabled).
    * ``"silent"`` — the receiver never learned the frame existed
      (preamble and postamble both unusable, or channel too weak).
    """

    kind: str
    delivered: bool
    feedback: Optional[Feedback]
    observation: Optional[FrameObservation]
    interference_detected: bool = False

    @property
    def is_silent(self) -> bool:
        return self.feedback is None


class WirelessChannel:
    """A single collision domain driven by per-link traces.

    Args:
        traces: map from ``(src, dest)`` station-id pairs to the
            :class:`LinkTrace` modelling that unidirectional link.
        rng: random source (carrier-sense sampling, and the root seed
            of the per-attempt fate streams — see :meth:`attempt_rng`).
        detect_prob: probability the SoftPHY interference detector
            flags a collided frame (paper section 6.4: 0.8 measured,
            1.0 for the ideal variant).
        use_postambles: enable postamble detection (section 3.2).
        carrier_sense_prob: function ``(listener, transmitter) ->
            probability`` that ``listener`` senses ``transmitter``'s
            transmissions (paper section 6.4 sweeps this); default
            perfect carrier sense.
        phy_backend: ``None`` to use the traces' precomputed frame
            fates, or a :class:`repro.phy.backend.PhyBackend` /
            backend name (``"full"`` / ``"surrogate"``) to recompute
            each clean-channel fate from the trace's SNR trajectory.
            A *name* resolves against the default six-rate prototype
            table; simulations with a custom rate table must pass a
            backend instance built with it (as
            :class:`repro.sim.topology.AccessPointNetwork` does) —
            a mismatch fails loudly at the first observation.
    """

    def __init__(self, traces: Dict[Tuple[int, int], LinkTrace],
                 rng: np.random.Generator, detect_prob: float = 0.8,
                 use_postambles: bool = True,
                 carrier_sense_prob: Optional[Callable[[int, int],
                                                       float]] = None,
                 phy_backend=None):
        if not 0.0 <= detect_prob <= 1.0:
            raise ValueError("detect_prob must be a probability")
        if phy_backend is not None:
            from repro.phy.backend import get_backend
            phy_backend = get_backend(phy_backend)
        self.phy_backend = phy_backend
        self.traces = dict(traces)
        self.rng = rng
        # Root of the per-attempt fate RNG streams (drawn first, so
        # the channel's seed alone pins every fate stream).
        self._fate_seed = int(rng.integers(0, 2 ** 63))
        self.detect_prob = detect_prob
        self.use_postambles = use_postambles
        self._cs_prob = carrier_sense_prob or (lambda a, b: 1.0)
        self._active: List[Transmission] = []
        self._history: List[Transmission] = []
        #: station registry (filled by Station.__init__) used to hand
        #: delivered frames to the destination's upper layer.
        self.stations: Dict[int, Any] = {}
        # Statistics for the Table 1 / Fig. 4 experiment.
        self.stats = {"clean": 0, "collided": 0, "postamble": 0,
                      "silent": 0, "undetected_collisions": 0}

    # -- carrier sense -----------------------------------------------------

    def _senses(self, listener: int, transmission: Transmission) -> bool:
        """Whether ``listener`` hears this transmission (sticky sample)."""
        if transmission.frame.src == listener:
            return True
        if listener not in transmission.sensed_by:
            p = self._cs_prob(listener, transmission.frame.src)
            if p >= 1.0:
                sensed = True           # certain: skip the coin flip
            elif p <= 0.0:
                sensed = False
            else:
                sensed = bool(self.rng.random() < p)
            transmission.sensed_by[listener] = sensed
        return transmission.sensed_by[listener]

    def busy_window(self, listener: int, now: float
                    ) -> Optional[Tuple[float, float]]:
        """The busy period ``listener`` currently senses, as a
        ``(start, end)`` pair over the reserved occupancy of every
        sensed in-flight transmission — or ``None`` when idle.

        ``start`` is when the earliest sensed transmission seized the
        medium (so a backoff tick can tell "busy since exactly this
        slot boundary" from "busy since mid-slot"); ``end`` is when
        the last one releases it, feedback slot included.
        """
        self._prune(now)
        since = until = None
        for tx in self._active:
            occ_start, occ_end = occupancy_window(tx)
            if occ_end <= now:
                continue
            if self._senses(listener, tx):
                since = occ_start if since is None \
                    else min(since, occ_start)
                until = occ_end if until is None \
                    else max(until, occ_end)
        if until is None:
            return None
        return since, until

    def medium_busy_until(self, listener: int, now: float
                          ) -> Optional[float]:
        """Latest reserved-occupancy end of sensed transmissions.

        Returns ``None`` when the medium appears idle to ``listener``.
        """
        window = self.busy_window(listener, now)
        return None if window is None else window[1]

    # -- transmission ------------------------------------------------------

    def begin_transmission(self, transmission: Transmission) -> None:
        """Register an in-flight frame (called by the MAC at t=start)."""
        self._active.append(transmission)
        self._history.append(transmission)

    def _prune(self, now: float, horizon: float = 0.1) -> None:
        self._active = [t for t in self._active
                        if occupancy_window(t)[1] > now]
        if len(self._history) > 4096:
            self._history = [t for t in self._history
                             if t.end > now - horizon]

    def _overlapping(self, tx: Transmission) -> List[Transmission]:
        """Other transmissions overlapping ``tx`` in time.

        Feedback frames are excluded: they occupy the reserved slot
        after a data frame (SIFS priority) and never collide with data
        in this model, as in the paper's protocol design.
        """
        out = []
        for other in self._history:
            if other is tx or other.frame.is_feedback:
                continue
            if other.frame.src == tx.frame.src:
                continue
            if other.start < tx.end and tx.start < other.end:
                out.append(other)
        return out

    def _receiver_deaf(self, tx: Transmission) -> bool:
        """Half-duplex: the destination was itself transmitting."""
        for other in self._history:
            if other is tx:
                continue
            if other.frame.src != tx.frame.dest:
                continue
            if other.start < tx.end and tx.start < other.end:
                return True
        return False

    def _trace_for(self, src: int, dest: int) -> LinkTrace:
        try:
            return self.traces[(src, dest)]
        except KeyError:
            raise KeyError(f"no trace for link {src} -> {dest}") from None

    def attempt_rng(self, tx: Transmission) -> np.random.Generator:
        """The fate RNG stream of one transmission attempt.

        Derived from the channel's fate seed and the attempt's
        identity ``(src, dest, attempt)``, never from shared mutable
        state — so a frame's fate draws (backend observation noise,
        the interference-detection coin) do not depend on the order
        concurrent transmissions happen to conclude in.  This is what
        lets the slot-synchronous engine (:mod:`repro.sim.slotmac`)
        reproduce the event-driven MAC's frame logs bit-for-bit.

        The key is splitmix64-mixed straight into a PCG64 seed rather
        than routed through ``default_rng``'s SeedSequence pooling:
        one generator is built per transmission, and the pooling alone
        costs more than the handful of draws a fate needs.
        """
        return np.random.Generator(np.random.PCG64(mix64(
            self._fate_seed, tx.frame.src, tx.frame.dest, tx.attempt)))

    def _observe(self, trace: LinkTrace, tx: Transmission,
                 rng: np.random.Generator) -> FrameObservation:
        """Clean-channel observation: precomputed or backend-computed."""
        if self.phy_backend is None:
            return trace.observe(tx.start, tx.rate_index)
        return self.phy_backend.observe(trace, tx.start, tx.rate_index,
                                        tx.frame.payload_bits, rng)

    def conclude_transmission(self, tx: Transmission) -> FrameFate:
        """Compute the fate of ``tx`` (called by the MAC at t=end)."""
        overlapping = self._overlapping(tx)
        return self.resolve_fate(tx, overlapping,
                                 receiver_deaf=self._receiver_deaf(tx))

    def resolve_fate(self, tx: Transmission,
                     overlapping: List[Transmission],
                     receiver_deaf: bool = False) -> FrameFate:
        """The section 3.2 fate taxonomy, given the overlap set.

        The single entry point both MAC engines share: the
        event-driven MAC reaches it through
        :meth:`conclude_transmission` (overlaps scanned from history),
        the slot-synchronous engine passes the slot's co-winners
        directly.  Randomness comes from :meth:`attempt_rng`, so the
        fate depends only on the transmission itself and its overlap
        set — never on global processing order.
        """
        trace = self._trace_for(tx.frame.src, tx.frame.dest)
        if tx.rts_protected:
            overlapping = []        # the exchange reserved the medium

        if receiver_deaf:
            # The receiver never listened: skip the (possibly
            # expensive backend-computed) channel observation.
            self.stats["silent"] += 1
            return FrameFate(kind="silent", delivered=False,
                             feedback=None, observation=None)
        # Building a generator costs more than most fates' draws: with
        # precomputed trace fates only the collided branch ever draws,
        # so the stream is materialized lazily.
        rng = self.attempt_rng(tx) if self.phy_backend is not None \
            else None
        obs = self._observe(trace, tx, rng)
        if not obs.detected:
            self.stats["silent"] += 1
            return FrameFate(kind="silent", delivered=False,
                             feedback=None, observation=obs)
        if not overlapping:
            self.stats["clean"] += 1
            feedback = Feedback(src=tx.frame.dest, dest=tx.frame.src,
                                seq=tx.frame.seq, ber=obs.ber_est,
                                frame_ok=obs.delivered,
                                snr_db=obs.snr_db)
            return FrameFate(kind="clean", delivered=obs.delivered,
                             feedback=feedback, observation=obs)

        locked_to_us = all(tx.start <= other.start
                           for other in overlapping)
        if locked_to_us:
            # Receiver synchronised to us; the interferer corrupts our
            # body.  Frame lost (paper: colliding frames are lost), but
            # the header decoded, so feedback flows.
            self.stats["collided"] += 1
            if rng is None:
                rng = self.attempt_rng(tx)
            detected = bool(rng.random() < self.detect_prob)
            if detected:
                ber = obs.ber_est       # interference-free portion
            else:
                ber = COLLISION_BER     # looks like a channel loss
                self.stats["undetected_collisions"] += 1
            feedback = Feedback(src=tx.frame.dest, dest=tx.frame.src,
                                seq=tx.frame.seq, ber=ber, frame_ok=False,
                                interference_detected=detected,
                                snr_db=obs.snr_db)
            return FrameFate(kind="collided", delivered=False,
                             feedback=feedback, observation=obs,
                             interference_detected=detected)

        # Receiver locked elsewhere: our preamble is gone.
        postamble_clean = self.use_postambles and not any(
            other.start < tx.end and tx.postamble_start < other.end
            for other in overlapping)
        if postamble_clean:
            self.stats["postamble"] += 1
            feedback = Feedback(src=tx.frame.dest, dest=tx.frame.src,
                                seq=tx.frame.seq, ber=obs.ber_est,
                                frame_ok=False,
                                interference_detected=True,
                                snr_db=obs.snr_db, postamble_only=True)
            return FrameFate(kind="postamble", delivered=False,
                             feedback=feedback, observation=obs,
                             interference_detected=True)
        self.stats["silent"] += 1
        return FrameFate(kind="silent", delivered=False, feedback=None,
                         observation=obs)
