"""TCP Reno over the simulator.

The paper evaluates rate adaptation under *TCP* because "applications
like TCP and VOIP are more sensitive to losses ... gains obtained on
UDP transfers without congestion control are hard to realize"
(section 6).  The decisive interaction it measures: a slow rate
adapter lets the channel burst-lose several segments of one window,
TCP halves (or RTO-collapses) its offered load, and throughput craters
— while a responsive adapter hides the fades from TCP entirely.

This module implements the Reno mechanisms that matter for that
dynamic: slow start, congestion avoidance, fast
retransmit/fast recovery on three duplicate ACKs, and RTO with Karn's
algorithm and exponential backoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.sim.eventsim import EventHandle, Simulator

__all__ = ["Segment", "TcpSender", "TcpReceiver", "MSS_BYTES"]

#: Paper section 6.1: "N TCP flows are set up to transfer 1400 byte
#: data frames".
MSS_BYTES = 1400

_HEADER_BYTES = 40
_INITIAL_RTO = 1.0
_MIN_RTO = 0.2
_MAX_RTO = 60.0
_DUPACK_THRESHOLD = 3


@dataclass(frozen=True)
class Segment:
    """One TCP segment (data or pure ACK).

    Sequence numbers count segments, not bytes, which keeps the
    arithmetic readable; ``size_bytes`` carries the wire size.
    """

    flow: int
    seq: int
    is_ack: bool = False
    ack: int = 0            # cumulative: next expected segment
    size_bytes: int = MSS_BYTES + _HEADER_BYTES

    @property
    def size_bits(self) -> int:
        return 8 * self.size_bytes


class TcpSender:
    """A saturated (always-backlogged) TCP Reno sender.

    Args:
        sim: event engine.
        flow: flow identifier carried in every segment.
        transmit: callback delivering a segment into the network stack
            below (MAC queue or wired link).
    """

    def __init__(self, sim: Simulator, flow: int,
                 transmit: Callable[[Segment], None]):
        self.sim = sim
        self.flow = flow
        self._transmit = transmit
        # Congestion state (in segments).
        self.cwnd = 1.0
        self.ssthresh = 64.0
        self.next_seq = 0           # next new segment to send
        self.highest_acked = 0      # all segments below this are acked
        self._dupacks = 0
        self._in_fast_recovery = False
        self._recovery_point = 0
        # RTT estimation (RFC 6298).
        self._srtt: Optional[float] = None
        self._rttvar: Optional[float] = None
        self._rto = _INITIAL_RTO
        self._timer: Optional[EventHandle] = None
        self._send_times: Dict[int, float] = {}
        self._retransmitted: Set[int] = set()
        # Statistics.
        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0

    # -- public interface ------------------------------------------------

    def start(self) -> None:
        """Begin transmitting."""
        self._send_window()

    @property
    def acked_bytes(self) -> int:
        """Application bytes delivered (cumulative)."""
        return self.highest_acked * MSS_BYTES

    def on_ack(self, segment: Segment) -> None:
        """Process an incoming cumulative ACK."""
        if not segment.is_ack or segment.flow != self.flow:
            return
        ack = segment.ack
        if ack > self.highest_acked:
            self._on_new_ack(ack)
        elif ack == self.highest_acked:
            self._on_dupack()
        self._send_window()

    # -- ACK clocking ------------------------------------------------------

    def _on_new_ack(self, ack: int) -> None:
        newly = ack - self.highest_acked
        # RTT sample: only for segments never retransmitted (Karn).
        sample_seq = ack - 1
        if sample_seq in self._send_times and \
                sample_seq not in self._retransmitted:
            self._update_rtt(self.sim.now - self._send_times[sample_seq])
        for seq in range(self.highest_acked, ack):
            self._send_times.pop(seq, None)
            self._retransmitted.discard(seq)
        self.highest_acked = ack
        self._dupacks = 0

        if self._in_fast_recovery:
            if ack >= self._recovery_point:
                self._in_fast_recovery = False
                self.cwnd = self.ssthresh
            else:
                # Partial ACK: retransmit the next hole (NewReno-style
                # single-hole handling keeps recovery from stalling).
                self._retransmit(ack)
                self.cwnd = max(1.0, self.cwnd - newly + 1.0)
        elif self.cwnd < self.ssthresh:
            self.cwnd += newly                     # slow start
        else:
            self.cwnd += newly / self.cwnd         # congestion avoidance

        self._restart_timer()

    def _on_dupack(self) -> None:
        self._dupacks += 1
        if self._in_fast_recovery:
            self.cwnd += 1.0       # inflate per extra dupack
        elif self._dupacks == _DUPACK_THRESHOLD:
            # Fast retransmit + fast recovery.
            flight = self.next_seq - self.highest_acked
            self.ssthresh = max(flight / 2.0, 2.0)
            self.cwnd = self.ssthresh + _DUPACK_THRESHOLD
            self._in_fast_recovery = True
            self._recovery_point = self.next_seq
            self._retransmit(self.highest_acked)

    # -- transmission ------------------------------------------------------

    def _window_limit(self) -> int:
        return self.highest_acked + int(self.cwnd)

    def _send_window(self) -> None:
        while self.next_seq < self._window_limit():
            seq = self.next_seq
            self.next_seq += 1     # before sending, so the RTO timer
            self._send_segment(seq, new=True)   # sees data in flight

    def _send_segment(self, seq: int, new: bool) -> None:
        if not new:
            self.retransmissions += 1
            self._retransmitted.add(seq)
        self.segments_sent += 1
        self._send_times[seq] = self.sim.now
        self._transmit(Segment(flow=self.flow, seq=seq))
        if self._timer is None:
            self._restart_timer()

    def _retransmit(self, seq: int) -> None:
        self._send_segment(seq, new=False)
        self._restart_timer()

    # -- RTO management ------------------------------------------------------

    def _update_rtt(self, rtt: float) -> None:
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(
                self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = min(max(self._srtt + 4.0 * self._rttvar, _MIN_RTO),
                        _MAX_RTO)

    def _restart_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        if self.highest_acked >= self.next_seq:
            self._timer = None
            return
        self._timer = self.sim.schedule(self._rto, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timer = None
        if self.highest_acked >= self.next_seq:
            return
        self.timeouts += 1
        flight = self.next_seq - self.highest_acked
        self.ssthresh = max(flight / 2.0, 2.0)
        self.cwnd = 1.0
        self._dupacks = 0
        self._in_fast_recovery = False
        self._rto = min(self._rto * 2.0, _MAX_RTO)   # exponential backoff
        self._retransmit(self.highest_acked)


class TcpReceiver:
    """Cumulative-ACK receiver with out-of-order buffering.

    Args:
        sim: event engine.
        flow: flow identifier.
        transmit: callback for outgoing ACK segments.
    """

    def __init__(self, sim: Simulator, flow: int,
                 transmit: Callable[[Segment], None]):
        self.sim = sim
        self.flow = flow
        self._transmit = transmit
        self.next_expected = 0
        self._out_of_order: Set[int] = set()
        self.received_segments = 0

    def on_data(self, segment: Segment) -> None:
        """Process an incoming data segment; emits a cumulative ACK."""
        if segment.is_ack or segment.flow != self.flow:
            return
        self.received_segments += 1
        if segment.seq == self.next_expected:
            self.next_expected += 1
            while self.next_expected in self._out_of_order:
                self._out_of_order.discard(self.next_expected)
                self.next_expected += 1
        elif segment.seq > self.next_expected:
            self._out_of_order.add(segment.seq)
        self._transmit(Segment(flow=self.flow, seq=0, is_ack=True,
                               ack=self.next_expected,
                               size_bytes=_HEADER_BYTES))

    @property
    def delivered_bytes(self) -> int:
        """In-order application bytes delivered so far."""
        return self.next_expected * MSS_BYTES
