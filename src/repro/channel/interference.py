"""Interference: a second transmission overlapping part of a frame.

The paper's interference experiments (sections 5.3, 6.4) collide a
sender's frame with an interferer's at varying relative powers.  When
the interferer starts *after* the receiver has synchronised to the
sender, the overlap corrupts a contiguous tail (or middle) segment of
the sender's OFDM symbols — visible as an abrupt per-symbol BER jump,
which is exactly what the SoftPHY interference detector looks for.

The interferer's baseband signal is modelled as complex Gaussian at the
chosen power: an OFDM signal with many subcarriers is statistically
Gaussian, so this matches what the victim's demapper experiences.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["overlay_interference", "interference_for_frame"]


def interference_for_frame(n_symbols: int, n_subcarriers: int,
                           start_symbol: int, end_symbol: int,
                           power: float,
                           rng: np.random.Generator) -> np.ndarray:
    """Build an interference array covering symbols [start, end).

    Args:
        n_symbols, n_subcarriers: frame geometry.
        start_symbol, end_symbol: half-open interfered symbol range.
        power: average interference power at the victim receiver,
            relative to unit signal power (linear scale).
        rng: random source.

    Returns:
        ``(n_symbols, n_subcarriers)`` complex array, zero outside the
        interfered range.
    """
    if not 0 <= start_symbol <= end_symbol <= n_symbols:
        raise ValueError(
            f"bad interference range [{start_symbol}, {end_symbol}) for "
            f"{n_symbols} symbols")
    if power < 0:
        raise ValueError("interference power must be non-negative")
    out = np.zeros((n_symbols, n_subcarriers), dtype=np.complex128)
    span = end_symbol - start_symbol
    if span == 0 or power == 0:
        return out
    scale = np.sqrt(power / 2.0)
    out[start_symbol:end_symbol] = (
        rng.normal(0.0, scale, size=(span, n_subcarriers))
        + 1j * rng.normal(0.0, scale, size=(span, n_subcarriers)))
    return out


def overlay_interference(n_symbols: int, n_subcarriers: int,
                         relative_power_db: float,
                         rng: np.random.Generator,
                         overlap_fraction: float = 0.5,
                         align: str = "tail",
                         signal_power: float = 1.0
                         ) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Interference covering a fraction of the frame.

    Args:
        n_symbols, n_subcarriers: frame geometry.
        relative_power_db: interferer power relative to the sender's
            *received* signal power (paper sweeps -15..0 dB).
        rng: random source.
        overlap_fraction: fraction of symbols hit (0..1].
        align: ``"tail"`` (interferer starts mid-frame and lasts to the
            end — sender synchronised first), ``"head"``, or
            ``"random"`` (a random contiguous window).
        signal_power: the victim's received signal power, used as the
            reference for ``relative_power_db``.

    Returns:
        ``(interference, (start, end))`` — the overlay array and the
        interfered symbol range.
    """
    if not 0 < overlap_fraction <= 1:
        raise ValueError("overlap fraction must be in (0, 1]")
    span = max(1, int(round(overlap_fraction * n_symbols)))
    span = min(span, n_symbols)
    if align == "tail":
        start = n_symbols - span
    elif align == "head":
        start = 0
    elif align == "random":
        start = int(rng.integers(0, n_symbols - span + 1))
    else:
        raise ValueError(f"unknown alignment {align!r}")
    power = signal_power * 10.0 ** (relative_power_db / 10.0)
    overlay = interference_for_frame(n_symbols, n_subcarriers, start,
                                     start + span, power, rng)
    return overlay, (start, start + span)
