"""Wireless channel models.

Everything the paper obtained from real radios or its GNU Radio fading
channel simulator is reproduced here:

* :mod:`repro.channel.awgn` — additive white Gaussian noise;
* :mod:`repro.channel.rayleigh` — Rayleigh fading via the Zheng-Xiao
  sum-of-sinusoids (Jakes) model, the same model the paper's channel
  simulator uses (its reference [26]);
* :mod:`repro.channel.pathloss` — log-distance large-scale attenuation;
* :mod:`repro.channel.mobility` — walking-speed trajectories combining
  path loss with slow fading (the paper's "walking" traces);
* :mod:`repro.channel.interference` — a second transmission overlaid on
  a segment of a frame (collisions).

All models operate on the OFDM-symbol abstraction of
:mod:`repro.phy.ofdm`: a frame is ``(n_symbols, n_subcarriers)`` complex
points; the channel applies one complex gain per OFDM symbol plus
noise.
"""

from repro.channel.awgn import apply_channel, awgn
from repro.channel.rayleigh import RayleighFadingProcess, coherence_time
from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.mobility import WalkingTrajectory
from repro.channel.interference import overlay_interference

__all__ = [
    "apply_channel",
    "awgn",
    "RayleighFadingProcess",
    "coherence_time",
    "LogDistancePathLoss",
    "WalkingTrajectory",
    "overlay_interference",
]
