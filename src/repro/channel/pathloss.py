"""Large-scale attenuation: log-distance path loss with optional
log-normal shadowing.

The deterministic part is the classic log-distance model; the optional
shadowing term models the slowly varying, position-dependent
obstruction loss measured around the log-distance mean (Rappaport
ch. 4): a zero-mean Gaussian in dB with standard deviation
``shadowing_sigma_db``.  Shadowing is *off by default*
(``shadowing_sigma_db=0``), in which case the model consumes no
randomness and is bit-identical to the historical shadowing-free
implementation — existing experiments and golden fixtures are
unchanged.

Shadowing draws are explicit: callers sample an offset once per
link/position with :meth:`LogDistancePathLoss.sample_shadowing_db`
(typically from a per-link RNG so the realisation is deterministic)
and pass it back into :meth:`LogDistancePathLoss.loss_db` /
:meth:`LogDistancePathLoss.mean_snr_db`.  Keeping the draw outside
the loss computation preserves the purity of ``loss_db`` — the mesh
simulator depends on it being a pure function for determinism across
execution orders.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LogDistancePathLoss"]


class LogDistancePathLoss:
    """Log-distance path loss with configurable exponent and optional
    log-normal shadowing.

    ``loss_db(d) = loss_db(d0) + 10 * n * log10(d / d0) + X``

    where ``X`` is a caller-supplied shadowing offset (dB), normally a
    draw from :meth:`sample_shadowing_db`.

    Args:
        exponent: path loss exponent ``n`` (2 = free space; 3-4 indoor).
        reference_loss_db: loss at the reference distance.
        reference_distance: the reference distance ``d0`` in metres.
        shadowing_sigma_db: standard deviation of the log-normal
            shadowing term in dB (0 disables shadowing — the default,
            bit-identical to the shadowing-free model).
    """

    def __init__(self, exponent: float = 3.0,
                 reference_loss_db: float = 40.0,
                 reference_distance: float = 1.0,
                 shadowing_sigma_db: float = 0.0):
        if exponent <= 0:
            raise ValueError("path loss exponent must be positive")
        if reference_distance <= 0:
            raise ValueError("reference distance must be positive")
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing sigma must be >= 0")
        self.exponent = exponent
        self.reference_loss_db = reference_loss_db
        self.reference_distance = reference_distance
        self.shadowing_sigma_db = shadowing_sigma_db

    def sample_shadowing_db(self, rng: np.random.Generator) -> float:
        """One log-normal shadowing draw in dB.

        Returns ``0.0`` without consuming any randomness when
        ``shadowing_sigma_db`` is 0, so enabling the feature cannot
        perturb RNG streams of shadowing-free simulations.
        """
        if self.shadowing_sigma_db == 0.0:
            return 0.0
        return float(rng.normal(0.0, self.shadowing_sigma_db))

    def loss_db(self, distance: float,
                shadowing_db: float = 0.0) -> float:
        """Path loss in dB at ``distance`` metres.

        ``shadowing_db`` is an optional pre-sampled shadowing offset
        (see :meth:`sample_shadowing_db`); the default 0 reproduces
        the deterministic log-distance loss exactly.
        """
        d = max(float(distance), self.reference_distance * 1e-3)
        return (self.reference_loss_db + 10.0 * self.exponent
                * np.log10(d / self.reference_distance)
                + shadowing_db)

    def mean_snr_db(self, tx_power_dbm: float, noise_floor_dbm: float,
                    distance: float,
                    shadowing_db: float = 0.0) -> float:
        """Mean received SNR for a given link budget.

        ``shadowing_db`` is folded into the loss (a positive offset
        *reduces* SNR), matching :meth:`loss_db`.
        """
        return tx_power_dbm - self.loss_db(distance, shadowing_db) \
            - noise_floor_dbm
