"""Large-scale attenuation: the log-distance path loss model."""

from __future__ import annotations

import numpy as np

__all__ = ["LogDistancePathLoss"]


class LogDistancePathLoss:
    """Log-distance path loss with configurable exponent.

    ``loss_db(d) = loss_db(d0) + 10 * n * log10(d / d0)``

    Args:
        exponent: path loss exponent ``n`` (2 = free space; 3-4 indoor).
        reference_loss_db: loss at the reference distance.
        reference_distance: the reference distance ``d0`` in metres.
    """

    def __init__(self, exponent: float = 3.0,
                 reference_loss_db: float = 40.0,
                 reference_distance: float = 1.0):
        if exponent <= 0:
            raise ValueError("path loss exponent must be positive")
        if reference_distance <= 0:
            raise ValueError("reference distance must be positive")
        self.exponent = exponent
        self.reference_loss_db = reference_loss_db
        self.reference_distance = reference_distance

    def loss_db(self, distance: float) -> float:
        """Path loss in dB at ``distance`` metres."""
        d = max(float(distance), self.reference_distance * 1e-3)
        return (self.reference_loss_db + 10.0 * self.exponent
                * np.log10(d / self.reference_distance))

    def mean_snr_db(self, tx_power_dbm: float, noise_floor_dbm: float,
                    distance: float) -> float:
        """Mean received SNR for a given link budget."""
        return tx_power_dbm - self.loss_db(distance) - noise_floor_dbm
