"""Mobility-driven channel trajectories (the paper's walking traces).

A :class:`WalkingTrajectory` combines large-scale attenuation (a node
moving away from or towards its receiver) with small-scale Rayleigh
fading at the corresponding Doppler spread.  Sampling it reproduces the
structure of the paper's Figure 1: gradual SNR decay over seconds with
multipath fades tens of milliseconds long superimposed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.rayleigh import RayleighFadingProcess
from repro.phy.snr import db_to_linear

__all__ = ["WalkingTrajectory"]

#: Doppler spread at 2.4 GHz for ~1.2 m/s walking speed is ~10 Hz; the
#: paper's walking-equivalent simulation uses 40 Hz, which we follow.
WALKING_DOPPLER_HZ = 40.0


class WalkingTrajectory:
    """A sender walking away from its receiver.

    Args:
        rng: random source (fading realisation).
        start_distance: metres at time 0.
        speed: metres/second (positive = moving away).
        doppler_hz: fading Doppler spread.
        tx_power_dbm / noise_floor_dbm: link budget; together with the
            path loss model they set the mean SNR at each distance.
            The defaults sweep the mean SNR from ~22 dB at 5 m down to
            ~4 dB at 16 m, matching the dynamic range of the paper's
            Fig. 1 walking trace (and exercising every bit rate).
        pathloss: large-scale model (log-distance by default).

    The channel gain at time ``t`` is
    ``h(t) = sqrt(mean_snr_linear(d(t)) * noise_var) * fading(t)``,
    normalised so that a receiver with unit noise variance sees an
    instantaneous SNR of ``mean_snr * |fading|^2``.
    """

    def __init__(self, rng: np.random.Generator,
                 start_distance: float = 5.0, speed: float = 1.2,
                 doppler_hz: float = WALKING_DOPPLER_HZ,
                 tx_power_dbm: float = -5.0,
                 noise_floor_dbm: float = -85.0,
                 pathloss: Optional[LogDistancePathLoss] = None):
        if start_distance <= 0:
            raise ValueError("start distance must be positive")
        self.start_distance = start_distance
        self.speed = speed
        self.tx_power_dbm = tx_power_dbm
        self.noise_floor_dbm = noise_floor_dbm
        self.pathloss = pathloss if pathloss is not None \
            else LogDistancePathLoss()
        self.fading = RayleighFadingProcess(doppler_hz, rng)

    def distance(self, t: float) -> float:
        """Sender-receiver distance at time ``t`` (floored at 0.5 m)."""
        return max(0.5, self.start_distance + self.speed * t)

    def mean_snr_db(self, t: float) -> float:
        """Large-scale (fading-averaged) SNR at time ``t``."""
        return self.pathloss.mean_snr_db(self.tx_power_dbm,
                                         self.noise_floor_dbm,
                                         self.distance(t))

    def symbol_gains(self, start_time: float, n_symbols: int,
                     symbol_time: float) -> np.ndarray:
        """Complex channel gains for a frame's OFDM symbols.

        The receiver noise variance is taken as 1, so
        ``|gain|^2`` *is* the instantaneous linear SNR.
        """
        fading = self.fading.symbol_gains(start_time, n_symbols,
                                          symbol_time)
        # Large-scale SNR varies negligibly within one frame; evaluate
        # it at the frame start.
        amplitude = np.sqrt(db_to_linear(self.mean_snr_db(start_time)))
        return amplitude * fading

    def instantaneous_snr_db(self, t: float) -> float:
        """Instantaneous SNR (large-scale x fading) at time ``t``."""
        fade = self.fading.gains(np.array([t]))[0]
        linear = db_to_linear(self.mean_snr_db(t)) * np.abs(fade) ** 2
        return 10.0 * np.log10(max(linear, 1e-12))
