"""Additive white Gaussian noise and the per-symbol channel application."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.phy.snr import db_to_linear

__all__ = ["awgn", "noise_var_for_snr_db", "apply_channel"]


def noise_var_for_snr_db(snr_db: float, signal_power: float = 1.0) -> float:
    """Complex noise variance achieving ``snr_db`` at unit signal power."""
    return signal_power / db_to_linear(snr_db)


def awgn(shape, noise_var: float, rng: np.random.Generator) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise with ``E|n|^2 = noise_var``."""
    scale = np.sqrt(noise_var / 2.0)
    return (rng.normal(0.0, scale, size=shape)
            + 1j * rng.normal(0.0, scale, size=shape))


def apply_channel(tx_symbols: np.ndarray, gains: np.ndarray,
                  noise_var: float, rng: np.random.Generator,
                  interference: Optional[np.ndarray] = None
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Apply per-symbol gains, optional interference, and AWGN.

    Args:
        tx_symbols: ``(n_symbols, n_subcarriers)`` transmitted points.
        gains: complex channel gains — either per OFDM symbol (length
            ``n_symbols``, frequency-flat fading, the paper's per-
            symbol BER granularity of Eq. 4) or per (symbol,
            subcarrier) (shape like ``tx_symbols``, frequency-selective
            multipath from :mod:`repro.channel.multipath`).
        noise_var: complex AWGN variance at the receiver.
        rng: random source.
        interference: optional array like ``tx_symbols`` added *after*
            the channel gain (it is the interferer's received signal).

    Returns:
        ``(rx_symbols, gains)`` — the received points and the gains the
        receiver is assumed to know (perfect CSI).
    """
    tx_symbols = np.asarray(tx_symbols, dtype=np.complex128)
    gains = np.asarray(gains, dtype=np.complex128)
    if gains.ndim == 1 and gains.size == tx_symbols.shape[0]:
        rx = gains[:, None] * tx_symbols
    elif gains.shape == tx_symbols.shape:
        rx = gains * tx_symbols
    else:
        raise ValueError(
            "gains must be per-symbol (1-D) or match the frame shape")
    if interference is not None:
        interference = np.asarray(interference, dtype=np.complex128)
        if interference.shape != tx_symbols.shape:
            raise ValueError("interference shape must match the frame")
        rx = rx + interference
    rx = rx + awgn(rx.shape, noise_var, rng)
    return rx, gains
