"""Frequency-selective multipath fading (tapped delay line).

The paper's PHY interleaves coded bits across non-adjacent subcarriers
precisely because multipath makes *adjacent subcarriers fade together*
(section 4): a delay spread of a few hundred nanoseconds carves
coherence-bandwidth-wide notches into the channel's frequency
response.  This module provides the channel that exercises that
machinery: an L-tap delay line whose taps are independent Rayleigh
fading processes, yielding per-(symbol, subcarrier) complex gains

    H(t, k) = sum_l  a_l h_l(t) exp(-2 pi i k l / N)

with unit total average power.

Used by the interleaver-efficacy tests and the interleaver ablation
benchmark; the flat-fading experiments keep the single-tap model of
:mod:`repro.channel.rayleigh`.
"""

from __future__ import annotations

import numpy as np

from repro.channel.rayleigh import RayleighFadingProcess

__all__ = ["FrequencySelectiveChannel"]


class FrequencySelectiveChannel:
    """A tapped-delay-line channel over OFDM subcarriers.

    Args:
        n_subcarriers: FFT size of the OFDM system.
        rng: random source for tap realisations.
        n_taps: number of multipath echoes (sample-spaced).
        doppler_hz: temporal fading rate of each tap.
        power_decay: per-tap power ratio (exponential delay profile);
            0.5 means each echo carries half the previous one's power.

    The coherence bandwidth is roughly ``n_subcarriers / n_taps``
    subcarriers: more taps = narrower, deeper notches.
    """

    def __init__(self, n_subcarriers: int, rng: np.random.Generator,
                 n_taps: int = 4, doppler_hz: float = 40.0,
                 power_decay: float = 0.6):
        if n_taps < 1:
            raise ValueError("need at least one tap")
        if n_taps > n_subcarriers:
            raise ValueError("more taps than subcarriers")
        if not 0 < power_decay <= 1:
            raise ValueError("power decay must be in (0, 1]")
        self.n_subcarriers = n_subcarriers
        self.n_taps = n_taps
        powers = power_decay ** np.arange(n_taps)
        self._amplitudes = np.sqrt(powers / powers.sum())
        self._taps = [RayleighFadingProcess(doppler_hz, rng)
                      for _ in range(n_taps)]
        # Subcarrier phase ramp per tap delay.
        k = np.arange(n_subcarriers)
        self._ramps = np.exp(-2j * np.pi * np.outer(np.arange(n_taps),
                                                    k) / n_subcarriers)

    def gains(self, start_time: float, n_symbols: int,
              symbol_time: float) -> np.ndarray:
        """Per-(symbol, subcarrier) complex gains.

        Returns an ``(n_symbols, n_subcarriers)`` array with unit
        average power (over tap realisations).
        """
        h = np.stack([
            amplitude * tap.symbol_gains(start_time, n_symbols,
                                         symbol_time)
            for amplitude, tap in zip(self._amplitudes, self._taps)
        ])                                   # (n_taps, n_symbols)
        return h.T @ self._ramps             # (n_symbols, n_subcarriers)

    def coherence_bandwidth_subcarriers(self) -> float:
        """Approximate notch width in subcarriers."""
        return self.n_subcarriers / self.n_taps
