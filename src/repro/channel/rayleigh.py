"""Rayleigh fading via the Zheng-Xiao sum-of-sinusoids model.

This is the "Jakes simulator model" the paper's GNU Radio fading
channel simulator implements (reference [26]: Zheng & Xiao, *Simulation
Models With Correct Statistical Properties for Rayleigh Fading
Channels*, IEEE Trans. Communications, 2003).  The model sums ``M``
sinusoids with randomised angles of arrival and phases, producing a
complex gain process with the classic Jakes Doppler spectrum and
Rayleigh-distributed envelope.

The Doppler spread ``f_d`` sets the channel coherence time
``T_c ~= 0.423 / f_d`` (the paper uses the ``0.4 / f`` rule of thumb
from Tse & Viswanath): 40 Hz is walking speed (tens of ms), 4 kHz is
train speed (about 100 us).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RayleighFadingProcess", "coherence_time", "doppler_for_coherence"]

_COHERENCE_FACTOR = 0.423


def coherence_time(doppler_hz: float) -> float:
    """Channel coherence time for a given Doppler spread."""
    if doppler_hz <= 0:
        raise ValueError("Doppler spread must be positive")
    return _COHERENCE_FACTOR / doppler_hz


def doppler_for_coherence(coherence_s: float) -> float:
    """Doppler spread producing a given coherence time."""
    if coherence_s <= 0:
        raise ValueError("coherence time must be positive")
    return _COHERENCE_FACTOR / coherence_s


class RayleighFadingProcess:
    """A stationary Rayleigh fading gain process h(t).

    Args:
        doppler_hz: maximum Doppler frequency (spread) of the channel.
        rng: random source for the sinusoid angles/phases (one draw per
            process; the process itself is then deterministic in t,
            which lets different bit rates observe the *same* fading
            realisation, as the paper's trace collection requires).
        n_sinusoids: number of summed sinusoids; 16 is ample for
            statistical convergence (Zheng & Xiao recommend >= 8).

    The process has unit average power: ``E[|h(t)|^2] = 1``.
    """

    def __init__(self, doppler_hz: float, rng: np.random.Generator,
                 n_sinusoids: int = 16):
        if doppler_hz <= 0:
            raise ValueError("Doppler spread must be positive")
        if n_sinusoids < 4:
            raise ValueError("need at least 4 sinusoids")
        self.doppler_hz = doppler_hz
        self.n_sinusoids = n_sinusoids
        m = np.arange(1, n_sinusoids + 1)
        theta = rng.uniform(-np.pi, np.pi)
        self._alpha = (2.0 * np.pi * m - np.pi + theta) / (4.0 * n_sinusoids)
        self._phi = rng.uniform(-np.pi, np.pi, size=n_sinusoids)
        self._psi = rng.uniform(-np.pi, np.pi, size=n_sinusoids)

    def gains(self, times: np.ndarray) -> np.ndarray:
        """Complex channel gains at the given times (seconds)."""
        t = np.atleast_1d(np.asarray(times, dtype=np.float64))
        wd = 2.0 * np.pi * self.doppler_hz
        arg = wd * t[:, None]
        real = np.cos(arg * np.cos(self._alpha)[None, :]
                      + self._phi[None, :]).sum(axis=1)
        imag = np.cos(arg * np.sin(self._alpha)[None, :]
                      + self._psi[None, :]).sum(axis=1)
        return (real + 1j * imag) / np.sqrt(self.n_sinusoids)

    @property
    def coherence_time(self) -> float:
        """Approximate coherence time of this process."""
        return coherence_time(self.doppler_hz)

    def symbol_gains(self, start_time: float, n_symbols: int,
                     symbol_time: float) -> np.ndarray:
        """Gains sampled once per OFDM symbol starting at ``start_time``."""
        times = start_time + np.arange(n_symbols) * symbol_time
        return self.gains(times)
