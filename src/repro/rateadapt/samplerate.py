"""SampleRate [Bicket 2005] — the frame-level baseline.

SampleRate picks the bit rate minimising the *average transmission
time per successfully delivered frame*, estimated over a sliding
window, and spends 10% of frames sampling other rates to discover
channel changes.  Its window makes it robust to collisions (losses
inflate all rates' averages roughly equally) but slow to react to
fades — the paper measures ~600 ms convergence (Fig. 15).

The paper uses a one-second averaging window instead of Bicket's ten
seconds because it performed better in their experiments (section
6.1); we default to the same.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.core.feedback import Feedback
from repro.phy.rates import RateTable
from repro.rateadapt.base import RateAdapter

__all__ = ["SampleRate"]


class SampleRate(RateAdapter):
    """Minimise windowed average transmission time per delivery.

    Args:
        rates: available bit rates.
        window: averaging window in seconds (paper's tuned value: 1 s).
        sample_every: one in this many frames probes a different rate.
    """

    name = "SampleRate"

    def __init__(self, rates: RateTable, window: float = 1.0,
                 sample_every: int = 10, initial_rate: int = None):
        super().__init__(rates, initial_rate)
        if window <= 0:
            raise ValueError("window must be positive")
        if sample_every < 2:
            raise ValueError("sample_every must be at least 2")
        self.window = window
        self.sample_every = sample_every
        # Per rate: deque of (time, airtime_spent, delivered).
        self._history: Tuple[Deque, ...] = tuple(
            deque() for _ in range(len(rates)))
        self._frames_sent = 0
        self._sample_cursor = 0
        # Smallest airtime ever seen per rate ~ its lossless frame time.
        self._lossless = [float("inf")] * len(rates)

    def _expire(self, now: float) -> None:
        for dq in self._history:
            while dq and dq[0][0] < now - self.window:
                dq.popleft()

    def _avg_tx_time(self, rate_index: int) -> float:
        """Average airtime per successful delivery; inf if none."""
        dq = self._history[rate_index]
        if not dq:
            return float("inf")
        spent = sum(item[1] for item in dq)
        delivered = sum(1 for item in dq if item[2])
        if delivered == 0:
            return float("inf")
        return spent / delivered

    def _best_rate(self) -> int:
        times = [self._avg_tx_time(r) for r in range(len(self.rates))]
        best = min(range(len(times)), key=lambda r: times[r])
        if times[best] == float("inf"):
            return self.current_rate
        return best

    def _lossless_estimate(self, rate_index: int) -> float:
        """Estimated retry-free airtime of one frame at ``rate_index``.

        Uses the smallest airtime observed at that rate, or scales a
        neighbour's observation by the nominal throughput ratio.
        """
        if self._lossless[rate_index] < float("inf"):
            return self._lossless[rate_index]
        for r, seen in enumerate(self._lossless):
            if seen < float("inf"):
                return seen * self.rates[r].mbps / self.rates[
                    rate_index].mbps
        return 0.0   # nothing observed: everything is fair game

    def _pick_sample_rate(self, best: int) -> int:
        """Round-robin over rates that could plausibly beat the best.

        Bicket's heuristic: never sample a rate whose *lossless*
        transmission time already exceeds the current best average —
        such a rate cannot win even with zero losses.
        """
        best_time = self._avg_tx_time(best)
        candidates = [
            r for r in range(len(self.rates))
            if r != best and self._lossless_estimate(r) < best_time
        ]
        if not candidates:
            return best
        self._sample_cursor = (self._sample_cursor + 1) % len(candidates)
        return candidates[self._sample_cursor]

    def choose_rate(self, now: float) -> int:
        self._expire(now)
        best = self._best_rate()
        self._frames_sent += 1
        if self._frames_sent % self.sample_every == 0:
            rate = self._pick_sample_rate(best)
        else:
            rate = best
        self.current_rate = best
        return rate

    def _record(self, now: float, rate_index: int, airtime: float,
                delivered: bool) -> None:
        self._history[rate_index].append((now, airtime, delivered))
        if airtime > 0:
            self._lossless[rate_index] = min(self._lossless[rate_index],
                                             airtime)

    def on_feedback(self, now: float, rate_index: int,
                    feedback: Feedback, airtime: float) -> None:
        self._record(now, rate_index, airtime, feedback.frame_ok)

    def on_silent_loss(self, now: float, rate_index: int,
                       airtime: float) -> None:
        self._record(now, rate_index, airtime, False)
