"""Bit rate adaptation protocols.

:class:`~repro.rateadapt.softrate.SoftRate` is the paper's protocol;
the rest are the baselines of its evaluation (section 6.1):

* :class:`~repro.rateadapt.samplerate.SampleRate` — Bicket's
  transmission-time minimiser (the MadWifi/Atheros default);
* :class:`~repro.rateadapt.rraa.Rraa` — Robust Rate Adaptation
  Algorithm with short-window loss ratios and adaptive RTS;
* :class:`~repro.rateadapt.snr_based.SnrBasedAdapter` — RBAR-style
  instantaneous-SNR thresholds (trained or untrained) and the
  CHARM-style averaged-SNR variant;
* :class:`~repro.rateadapt.omniscient.OmniscientAdapter` — the oracle
  that reads the trace;
* :class:`~repro.rateadapt.fixed.FixedRate` — a constant rate.

All protocols implement the :class:`~repro.rateadapt.base.RateAdapter`
interface consumed by the MAC simulator.
"""

from repro.rateadapt.base import RateAdapter
from repro.rateadapt.fixed import FixedRate
from repro.rateadapt.omniscient import OmniscientAdapter
from repro.rateadapt.rraa import Rraa
from repro.rateadapt.samplerate import SampleRate
from repro.rateadapt.snr_based import (SnrBasedAdapter,
                                       theoretical_snr_thresholds,
                                       train_snr_thresholds)
from repro.rateadapt.softrate import SoftRate

__all__ = [
    "RateAdapter",
    "FixedRate",
    "OmniscientAdapter",
    "Rraa",
    "SampleRate",
    "SnrBasedAdapter",
    "theoretical_snr_thresholds",
    "train_snr_thresholds",
    "SoftRate",
]
