"""SNR-threshold rate adaptation (RBAR / CHARM style).

The sender maps the receiver's reported SNR to the fastest rate whose
SNR threshold it clears.  Two ways to obtain the thresholds:

* :func:`train_snr_thresholds` — in-situ training on a trace from the
  operating environment (the paper's "SNR (trained)" baseline): for
  each rate, the lowest SNR at which the delivery probability observed
  in the trace exceeds a target.
* :func:`theoretical_snr_thresholds` — textbook AWGN waterfalls from
  the analytic model (the "untrained" baseline).  In a fading channel
  the preamble SNR overstates what the frame body experiences, so
  untrained thresholds overselect — the effect behind the paper's 4x
  fast-fading result (Fig. 16).

``averaging=None`` reacts to the latest SNR report (RBAR-like);
``averaging=tau`` applies an EWMA with time constant ``tau`` seconds
(CHARM-like), which the paper finds *hurts* under fast variation
(section 6.2).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.feedback import Feedback
from repro.phy.rates import RateTable
from repro.phy.snr import db_to_linear
from repro.rateadapt.base import RateAdapter
from repro.traces.analytic import frame_loss_probability
from repro.traces.format import LinkTrace

__all__ = ["SnrBasedAdapter", "train_snr_thresholds",
           "theoretical_snr_thresholds"]


def theoretical_snr_thresholds(rates: RateTable,
                               payload_bits: int = 11200,
                               target_loss: float = 0.1) -> List[float]:
    """AWGN SNR thresholds: lowest SNR with loss below ``target_loss``.

    These are the "untrained" thresholds: correct over a static AWGN
    link, optimistic over fading links.
    """
    if not 0 < target_loss < 1:
        raise ValueError("target loss must be in (0, 1)")
    grid = np.arange(-5.0, 40.0, 0.1)
    thresholds = []
    for rate in rates:
        threshold = float("inf")
        for snr_db in grid:
            loss = frame_loss_probability(
                rate, np.array([db_to_linear(snr_db)]), payload_bits)
            if loss <= target_loss:
                threshold = float(snr_db)
                break
        thresholds.append(threshold)
    return thresholds


def train_snr_thresholds(trace: LinkTrace, target_loss: float = 0.1,
                         bin_width_db: float = 1.0) -> List[float]:
    """In-situ thresholds measured from a trace (paper section 6.1:
    "the SNR-BER relationships for both protocols are computed from the
    traces used for evaluation").

    For each rate, delivery statistics are binned by reported SNR and
    the threshold set at the lowest bin (with all higher bins) whose
    empirical delivery rate meets the target.
    """
    if not 0 < target_loss < 1:
        raise ValueError("target loss must be in (0, 1)")
    lo = math.floor(trace.snr_db.min())
    hi = math.ceil(trace.snr_db.max())
    edges = np.arange(lo, hi + bin_width_db, bin_width_db)
    thresholds = []
    for r in range(trace.n_rates):
        ok = trace.delivered[r] & trace.detected
        # Per-bin empirical delivery rates, scanned from the top bin
        # downward; the threshold is the lowest edge of the contiguous
        # run of acceptable bins.
        threshold = float("inf")
        for edge in edges[::-1]:
            mask = (trace.snr_db >= edge) & \
                (trace.snr_db < edge + bin_width_db)
            if mask.sum() < 10:
                continue         # too little evidence: skip the bin
            if ok[mask].mean() >= 1.0 - target_loss:
                threshold = float(edge)
            else:
                break            # acceptable run ends here
        thresholds.append(threshold)
    # Enforce monotonicity (a higher rate can never need less SNR).
    for i in range(1, len(thresholds)):
        thresholds[i] = max(thresholds[i], thresholds[i - 1])
    return thresholds


class SnrBasedAdapter(RateAdapter):
    """Threshold-on-reported-SNR rate selection.

    Args:
        rates: available bit rates.
        thresholds: per-rate minimum SNR in dB (same length as
            ``rates``); from :func:`train_snr_thresholds` or
            :func:`theoretical_snr_thresholds`.
        averaging: ``None`` for instantaneous SNR (RBAR-like) or an
            EWMA time constant in seconds (CHARM-like).
    """

    name = "SNR"

    def __init__(self, rates: RateTable, thresholds: Sequence[float],
                 averaging: Optional[float] = None,
                 initial_rate: int = None):
        super().__init__(rates, initial_rate)
        if len(thresholds) != len(rates):
            raise ValueError("one threshold per rate required")
        if sorted(thresholds) != list(thresholds):
            raise ValueError("thresholds must be non-decreasing in rate")
        if averaging is not None and averaging <= 0:
            raise ValueError("averaging time constant must be positive")
        self.thresholds = list(thresholds)
        self.averaging = averaging
        self.name = "CHARM" if averaging is not None else "SNR"
        self._snr_estimate: Optional[float] = None
        self._last_update: Optional[float] = None

    def _rate_for_snr(self, snr_db: float) -> int:
        best = 0
        for r, threshold in enumerate(self.thresholds):
            if snr_db >= threshold:
                best = r
        return best

    def choose_rate(self, now: float) -> int:
        if self._snr_estimate is not None:
            self.current_rate = self._rate_for_snr(self._snr_estimate)
        return self.current_rate

    def on_feedback(self, now: float, rate_index: int,
                    feedback: Feedback, airtime: float) -> None:
        snr = feedback.snr_db
        if snr != snr:          # NaN: feedback without SNR measurement
            return
        if self.averaging is None or self._snr_estimate is None:
            if self.averaging is None:
                self._snr_estimate = snr
            else:
                self._snr_estimate = snr
                self._last_update = now
            return
        dt = max(now - (self._last_update or now), 0.0)
        weight = math.exp(-dt / self.averaging)
        self._snr_estimate = weight * self._snr_estimate + \
            (1.0 - weight) * snr
        self._last_update = now

    def on_silent_loss(self, now: float, rate_index: int,
                       airtime: float) -> None:
        # No SNR information arrives on a silent loss; fall back one
        # rate if silence persists (mirrors driver implementations).
        if self._snr_estimate is not None:
            self._snr_estimate -= 1.0
