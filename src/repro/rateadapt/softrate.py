"""The SoftRate algorithm (paper section 3.3).

Per received feedback frame, the sender:

1. reads the interference-free BER estimate ``b_i`` measured at the
   current rate ``R_i``;
2. if ``b_i < alpha_i`` moves up, if ``b_i > beta_i`` moves down, else
   stays — implemented as a bounded search for the
   throughput-maximising rate using the cross-rate BER prediction
   heuristic, which naturally performs the paper's multi-level jumps
   (our implementation, like the paper's, jumps at most two rates at a
   time);
3. if feedback carried an interference verdict, the BER already
   excludes the collided portion, so collisions do not reduce the rate.

Silent losses (no feedback at all) cannot be attributed: a weak signal
and a collision that destroyed preamble and postamble look identical.
Following the measurement in section 3.2 (Table 1 / Fig. 4: runs of 3+
silent losses are very uncommon under collisions alone), SoftRate drops
the rate after ``silent_loss_limit = 3`` consecutive silent losses.
"""

from __future__ import annotations

from typing import Optional

from repro.core.feedback import Feedback
from repro.core.thresholds import (FrameLevelArq, ThresholdTable,
                                   compute_thresholds)
from repro.phy.rates import RateTable
from repro.rateadapt.base import RateAdapter

__all__ = ["SoftRate"]


class SoftRate(RateAdapter):
    """BER-driven rate adaptation using SoftPHY feedback.

    Args:
        rates: available bit rates.
        thresholds: precomputed optimal thresholds; defaults to
            frame-level ARQ with 10000-bit frames (the paper's worked
            example).  Pass a table built from
            :class:`repro.core.thresholds.PartialBitArq` to pair
            SoftRate with a smarter recovery layer — nothing else
            changes.
        max_jump: maximum rates skipped per adjustment (paper: 2).
        silent_loss_limit: consecutive silent losses before stepping
            down (paper: 3).
    """

    name = "SoftRate"

    def __init__(self, rates: RateTable,
                 thresholds: Optional[ThresholdTable] = None,
                 initial_rate: int = None, max_jump: int = 2,
                 silent_loss_limit: int = 3):
        super().__init__(rates, initial_rate)
        if thresholds is None:
            thresholds = compute_thresholds(rates, FrameLevelArq(10000))
        if len(thresholds) != len(rates):
            raise ValueError("threshold table does not match rate table")
        if max_jump < 1:
            raise ValueError("max jump must be at least 1")
        if silent_loss_limit < 1:
            raise ValueError("silent loss limit must be at least 1")
        self.thresholds = thresholds
        self.max_jump = max_jump
        self.silent_loss_limit = silent_loss_limit
        self._consecutive_silent = 0

    def choose_rate(self, now: float) -> int:
        return self.current_rate

    def on_feedback(self, now: float, rate_index: int,
                    feedback: Feedback, airtime: float) -> None:
        self._consecutive_silent = 0
        # The feedback BER is already interference-free: the receiver
        # excised collided symbols before reporting.  Reacting to it
        # therefore never punishes collisions (design goal 2).
        ber = feedback.ber
        self.current_rate = self.thresholds.best_rate(
            rate_index, ber, max_jump=self.max_jump)

    def on_silent_loss(self, now: float, rate_index: int,
                       airtime: float) -> None:
        self._consecutive_silent += 1
        if self._consecutive_silent >= self.silent_loss_limit:
            # Persistent silence means the receiver cannot even detect
            # our preamble/postamble: a weak-signal regime, not a
            # collision (section 3.2).
            self.current_rate = self._clamped(self.current_rate - 1)
            self._consecutive_silent = 0
