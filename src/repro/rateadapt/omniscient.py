"""The omniscient oracle (paper section 6.1, algorithm 3).

"An 'omniscient' algorithm that always picks the highest rate
guaranteed to succeed, which a simulator with a priori knowledge of
channel characteristics computes from the traces."  It upper-bounds
every realisable protocol and normalises the fast-fading results
(Fig. 16).
"""

from __future__ import annotations

from repro.phy.rates import RateTable
from repro.rateadapt.base import RateAdapter
from repro.traces.format import LinkTrace

__all__ = ["OmniscientAdapter"]


class OmniscientAdapter(RateAdapter):
    """Reads the trace to pick the best rate that will succeed."""

    name = "Omniscient"

    def __init__(self, rates: RateTable, trace: LinkTrace,
                 initial_rate: int = None):
        super().__init__(rates, initial_rate)
        if trace.n_rates != len(rates):
            raise ValueError("trace does not cover the rate table")
        self.trace = trace

    def choose_rate(self, now: float) -> int:
        best = self.trace.best_rate_at(now)
        if best is None:
            # Nothing gets through: send at the most robust rate (the
            # frame is lost either way; this minimises wasted airtime
            # relative to losing a longer high-rate frame... the lowest
            # rate maximises the chance the trace is pessimistic).
            best = 0
        self.current_rate = best
        return best
