"""The rate adapter interface.

A rate adapter lives at a sender's link layer.  Before each frame the
MAC asks :meth:`RateAdapter.choose_rate`; after each transmission it
reports the outcome through exactly one of:

* :meth:`on_feedback` — a link-layer feedback frame (ACK) arrived.
  For SoftRate it carries the interference-free BER; the simulator
  piggybacks an SNR estimate for the SNR-based protocols, as the
  paper's modified ns-3 does (section 6.1).
* :meth:`on_silent_loss` — no feedback of any kind (the receiver never
  detected the frame, or the feedback was lost).

Adapters are passive: they never schedule events themselves, which
keeps them trivially portable between the trace-driven simulator and
unit tests.
"""

from __future__ import annotations

import abc

from repro.core.feedback import Feedback
from repro.phy.rates import RateTable

__all__ = ["RateAdapter"]


class RateAdapter(abc.ABC):
    """Base class for all rate adaptation protocols.

    Args:
        rates: the available bit rates.
        initial_rate: starting rate index (defaults to the middle of
            the table, like common driver implementations).

    Example — the full life of one transmission::

        adapter = SoftRate(RATE_TABLE.prototype_subset())
        rate = adapter.choose_rate(now)
        ...                        # MAC transmits at `rate`
        adapter.on_feedback(now, rate, feedback, airtime)   # ACKed
        # or, when no feedback of any kind arrived:
        adapter.on_silent_loss(now, rate, airtime)
    """

    #: Human-readable protocol name (overridden by subclasses).
    name = "base"

    def __init__(self, rates: RateTable, initial_rate: int = None):
        self.rates = rates
        if initial_rate is None:
            initial_rate = len(rates) // 2
        self.current_rate = rates.clamp(initial_rate)

    @abc.abstractmethod
    def choose_rate(self, now: float) -> int:
        """The rate index to use for the next frame sent at ``now``."""

    def on_feedback(self, now: float, rate_index: int,
                    feedback: Feedback, airtime: float) -> None:
        """Link-layer feedback for a frame sent at ``rate_index``.

        Args:
            now: current simulation time.
            rate_index: the rate the reported frame was sent at.
            feedback: the receiver's feedback (BER, ACK bit, SNR).
            airtime: how long the frame transmission took.
        """

    def on_silent_loss(self, now: float, rate_index: int,
                       airtime: float) -> None:
        """The frame drew no feedback at all (silent loss)."""

    def wants_rts(self, now: float) -> bool:
        """Whether the next frame should be protected by RTS/CTS.

        Only RRAA's adaptive-RTS machinery ever returns True.
        """
        return False

    def _clamped(self, rate_index: int) -> int:
        return self.rates.clamp(rate_index)
