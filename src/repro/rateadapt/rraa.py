"""RRAA — Robust Rate Adaptation Algorithm [Wong et al. 2006].

RRAA estimates the short-term frame loss ratio ``P`` over a window of
the most recent transmissions at the current rate, and compares it to
two per-rate thresholds:

* ``P_MTL`` (maximum tolerable loss): above it, the next-lower rate
  would yield more throughput — step down.
* ``P_ORI`` (opportunistic rate increase): below it, probe the
  next-higher rate — step up.

With per-frame airtime ``tau_i`` (inversely proportional to the
nominal rate for fixed frame size), the critical loss ratio at which
rate ``i`` ties with rate ``i-1`` is ``P* = 1 - tau_i / tau_{i-1}``;
RRAA uses ``P_MTL = P*`` and ``P_ORI = P_MTL(i+1) / theta`` with
``theta ~ 2`` (we follow the published constants).

RRAA's A-RTS (adaptive RTS) filter turns RTS/CTS on when losses look
collision-like: the RTS window grows on a loss that followed an
unprotected transmission and shrinks on successes.  The paper finds
A-RTS largely ineffective under unpredictable interference
(section 6.4) — a result our Fig. 17 bench reproduces.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.core.feedback import Feedback
from repro.phy.rates import RateTable
from repro.rateadapt.base import RateAdapter

__all__ = ["Rraa"]


class Rraa(RateAdapter):
    """Short-term loss-ratio rate adaptation with adaptive RTS.

    Args:
        rates: available bit rates.
        window: loss estimation window in frames (paper: tens of
            frames; published RRAA uses ~40 at mid rates).
        theta: divisor relating P_ORI to the next rate's P_MTL.
    """

    name = "RRAA"

    def __init__(self, rates: RateTable, window: int = 40,
                 theta: float = 2.0, initial_rate: int = None):
        super().__init__(rates, initial_rate)
        if window < 5:
            raise ValueError("window must be at least 5 frames")
        if theta <= 1.0:
            raise ValueError("theta must exceed 1")
        self.window = window
        self.theta = theta
        self._losses: Deque[bool] = deque(maxlen=window)
        # Adaptive RTS state.
        self._rts_window = 0
        self._rts_counter = 0
        self._last_frame_used_rts = False

    # -- thresholds ----------------------------------------------------

    def _p_mtl(self, rate_index: int) -> float:
        """Maximum tolerable loss ratio at ``rate_index``."""
        if rate_index == 0:
            return 1.0        # nothing below the lowest rate
        tau_i = 1.0 / self.rates[rate_index].mbps
        tau_lower = 1.0 / self.rates[rate_index - 1].mbps
        return 1.0 - tau_i / tau_lower

    def _p_ori(self, rate_index: int) -> float:
        """Opportunistic rate increase threshold at ``rate_index``."""
        if rate_index >= len(self.rates) - 1:
            return 0.0        # nothing above the highest rate
        return self._p_mtl(rate_index + 1) / self.theta

    # -- rate selection -------------------------------------------------

    def _loss_ratio(self) -> float:
        if not self._losses:
            return 0.0
        return sum(self._losses) / len(self._losses)

    def choose_rate(self, now: float) -> int:
        # Decisions happen once per window's worth of evidence — but
        # RRAA also reacts immediately when the loss ratio already
        # exceeds P_MTL with the evidence gathered so far (its
        # "aggressive" short-term behaviour).
        if len(self._losses) >= self.window // 2:
            p = self._loss_ratio()
            if p > self._p_mtl(self.current_rate):
                self.current_rate = self._clamped(self.current_rate - 1)
                self._losses.clear()
            elif len(self._losses) >= self.window and \
                    p < self._p_ori(self.current_rate):
                self.current_rate = self._clamped(self.current_rate + 1)
                self._losses.clear()
        return self.current_rate

    # -- adaptive RTS ---------------------------------------------------

    def wants_rts(self, now: float) -> bool:
        use = self._rts_counter > 0
        if use:
            self._rts_counter -= 1
        self._last_frame_used_rts = use
        return use

    def _update_rts(self, delivered: bool) -> None:
        if delivered:
            if self._last_frame_used_rts:
                self._rts_window += 1      # RTS seemed to help
            else:
                self._rts_window = max(0, self._rts_window - 1)
        else:
            if not self._last_frame_used_rts:
                self._rts_window = max(1, self._rts_window * 2)
            else:
                self._rts_window = max(0, self._rts_window // 2)
        self._rts_window = min(self._rts_window, 60)
        self._rts_counter = self._rts_window

    # -- outcome reporting ----------------------------------------------

    def on_feedback(self, now: float, rate_index: int,
                    feedback: Feedback, airtime: float) -> None:
        if rate_index == self.current_rate:
            self._losses.append(not feedback.frame_ok)
        self._update_rts(feedback.frame_ok)

    def on_silent_loss(self, now: float, rate_index: int,
                       airtime: float) -> None:
        if rate_index == self.current_rate:
            self._losses.append(True)
        self._update_rts(False)
