"""A fixed-rate "adapter" — the null baseline and a testing aid."""

from __future__ import annotations

from repro.phy.rates import RateTable
from repro.rateadapt.base import RateAdapter

__all__ = ["FixedRate"]


class FixedRate(RateAdapter):
    """Always transmits at one configured rate."""

    name = "Fixed"

    def __init__(self, rates: RateTable, rate_index: int):
        super().__init__(rates, initial_rate=rate_index)
        if not 0 <= rate_index < len(rates):
            raise ValueError(f"rate index {rate_index} outside the table")
        self.name = f"Fixed({rates[rate_index].name})"

    def choose_rate(self, now: float) -> int:
        return self.current_rate
