"""Committed performance baselines: measure, record, and gate.

``repro bench`` measures the two throughput numbers the toolkit's
scale story rests on and writes them to repo-root JSON files:

* ``BENCH_phy.json`` — raw PHY frames/sec three ways (scalar full
  decode, batched full decode, surrogate synthesis) plus the derived
  speedup ratios.
* ``BENCH_campaigns.json`` — campaign engine throughput: smoke-tiny
  scenarios/hour, plus the orchestration-efficiency ratio (campaign
  wall time vs the same cells run bare), the supervision series (the
  same pooled campaign with and without the per-scenario watchdog,
  gated as ``supervision_efficiency`` — fault tolerance must stay
  near-free on the happy path), plus the MAC-engine series:
  station-seconds simulated per wall second for the event-driven
  oracle and the slot-synchronous engine on the same saturated
  50-station cell, and their ratio (``slot_vs_event_speedup``), and
  the video series: fountain symbols accepted per wall second by the
  rateless-over-PPR pipeline on a tiny video workload
  (``video_symbols_per_sec``, gated — the one absolute rate in the
  gate, kept honest by the re-measure retry below).

``repro bench --check`` re-measures using each committed file's *own*
embedded config (the golden-fixture pattern: the baseline carries the
recipe that produced it) and fails when any **gate metric** drops by
more than ``--tolerance`` (default 10%).  Gate metrics are
deliberately ratios — batched/scalar speedup, surrogate/scalar
speedup, orchestration efficiency — because ratios compare within one
machine and survive CI hardware churn, where absolute frames/sec
would not.  The absolute numbers are recorded for humans, not gated.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

__all__ = ["PHY_BENCH_FILE", "CAMPAIGN_BENCH_FILE", "DEFAULT_TOLERANCE",
           "measure_phy", "measure_campaigns", "write_benchmarks",
           "check_benchmarks", "compare_gate"]

PHY_BENCH_FILE = "BENCH_phy.json"
CAMPAIGN_BENCH_FILE = "BENCH_campaigns.json"

#: Allowed one-sided drop in a gate metric before --check fails.
DEFAULT_TOLERANCE = 0.10

_PHY_SCHEMA = "repro-bench-phy/1"
_CAMPAIGN_SCHEMA = "repro-bench-campaigns/5"

#: Measurement recipe embedded in BENCH_phy.json.
DEFAULT_PHY_CONFIG = {
    "rate_index": 3,            # QPSK 3/4, the fig07 reference rate
    "payload_bits": 800,
    "n_frames": 16,             # full-decode stack size
    "snr_db": [4.0, 12.0],      # the rate's waterfall region
    "surrogate_frames": 4000,
    "repeats": 3,               # best-of wall times
    "seed": 2009,
}

#: Measurement recipe embedded in BENCH_campaigns.json.  The
#: ``engine_*`` keys pin the MAC-engine comparison cell: 50 saturated
#: stations with the traces' precomputed frame fates
#: (``phy_backend=None``), which isolates the MAC engines themselves
#: — the quantity ``slot_vs_event_speedup`` claims to measure.  The
#: 0.5 s horizon matters: the event engine's per-conclude history
#: scans grow with simulated time while the slot engine's cost per
#: transmission stays flat, so short horizons understate the gap a
#: campaign-scale run sees.
DEFAULT_CAMPAIGN_CONFIG = {
    "campaign": "smoke-tiny",
    "jobs": 1,
    "repeats": 3,               # best-of wall times
    "engine_protocol": "softrate",
    "engine_channel": "fading",
    "engine_n_clients": 50,
    "engine_duration": 0.5,
    "engine_trace_pool": 8,
    # Supervision series: the same pooled campaign with and without
    # the per-scenario watchdog (timeouts + retry bookkeeping).
    "supervised_jobs": 2,
    "supervised_timeout_s": 120.0,
    "supervised_retries": 2,
    # Ingestion series: one synthesized record stream appended
    # through the JSONL writer and the columnar WAL-tail writer
    # (``chunk_records`` rows per sealed npz chunk), then aggregated
    # off each store.
    "ingest_records": 512,
    "ingest_chunk_records": 128,
    # Video series: the rateless half of the ``video`` experiment on
    # a tiny generated workload — fountain symbols accepted by the
    # decoder per wall second, the encode/salvage/row-reduce path.
    "video_duration": 0.8,
    "video_bitrate_bps": 1.2e5,
    "video_snr_db": 8.0,
    "video_seed": 1,
}


def _best_of(repeats: int, fn: Callable) -> float:
    """Best wall-clock seconds of ``repeats`` runs of ``fn``.

    Taking the minimum shields the committed ratios from one-off
    scheduler noise, same as the pytest benchmarks do.
    """
    best = float("inf")
    for _ in range(max(int(repeats), 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_phy(config: Optional[dict] = None) -> Dict[str, float]:
    """Measure PHY frames/sec: scalar vs batched vs surrogate.

    The scalar and batched paths BCJR-decode the same stack of frames
    (bit-identical outputs, asserted elsewhere); the surrogate
    synthesizes outcomes for the same rate/SNR region.  Returns the
    three absolute rates plus the two speedup ratios that get gated.
    """
    from repro.channel.awgn import apply_channel
    from repro.phy.backend import get_backend
    from repro.phy.snr import db_to_linear
    from repro.phy.transceiver import Transceiver

    cfg = dict(DEFAULT_PHY_CONFIG, **(config or {}))
    n_frames = int(cfg["n_frames"])
    rate_index = int(cfg["rate_index"])
    lo, hi = (float(s) for s in cfg["snr_db"])
    rng = np.random.default_rng(int(cfg["seed"]))

    phy = Transceiver()
    payload = rng.integers(0, 2, int(cfg["payload_bits"])) \
        .astype(np.uint8)
    tx = phy.transmit(payload, rate_index=rate_index)
    snrs = np.linspace(lo, hi, n_frames)
    gains = np.ones((n_frames, tx.layout.n_symbols), complex)
    rx = np.empty((n_frames, tx.layout.n_symbols,
                   phy.mode.n_subcarriers), complex)
    for i in range(n_frames):
        rx[i], _ = apply_channel(tx.symbols, gains[i],
                                 float(db_to_linear(-snrs[i])), rng)

    # Warm lazy imports and caches outside the timed regions.
    phy.receive(rx[0], gains[0], tx.layout, tx_frame=tx)
    phy.receive_batch(rx[:1], gains[:1], tx.layout, tx=tx)

    repeats = int(cfg["repeats"])
    scalar_s = _best_of(repeats, lambda: [
        phy.receive(rx[i], gains[i], tx.layout, tx_frame=tx)
        for i in range(n_frames)])
    batched_s = _best_of(repeats, lambda: phy.receive_batch(
        rx, gains, tx.layout, tx=tx))

    surrogate = get_backend("surrogate")
    n_sur = int(cfg["surrogate_frames"])
    sur_snrs = np.linspace(lo, hi, n_sur)
    sur_rng = np.random.default_rng(int(cfg["seed"]) + 1)

    def run_surrogate() -> None:
        for snr in sur_snrs:
            surrogate.frame_outcome(rate_index, np.array([snr]),
                                    int(cfg["payload_bits"]), sur_rng,
                                    need_hints=False)

    run_surrogate()                         # warm calibration tables
    surrogate_s = _best_of(repeats, run_surrogate)

    scalar_fps = n_frames / scalar_s
    batched_fps = n_frames / batched_s
    surrogate_fps = n_sur / surrogate_s
    return {
        "full_scalar_fps": scalar_fps,
        "full_batched_fps": batched_fps,
        "surrogate_fps": surrogate_fps,
        "batched_speedup": batched_fps / scalar_fps,
        "surrogate_speedup": surrogate_fps / scalar_fps,
    }


def _ingest_stream(n_records: int) -> List[Dict[str, Any]]:
    """Synthesize ``n_records`` checkpoint records for the result-
    store ingestion series.

    Deterministic stand-ins with the shape of real scenario records
    (a few params, a handful of float metrics, embedded CRC) so both
    backends pay their genuine per-record serialization and
    durability costs.
    """
    from types import SimpleNamespace

    from repro.campaigns.checkpoint import make_record

    records = []
    for i in range(int(n_records)):
        scenario = SimpleNamespace(
            scenario_id=f"bench-ingest-{i:06d}", index=i,
            seed=0x5EED0000 + i,
            params={"protocol": "softrate", "n_clients": 1 + i % 8,
                    "duration": 0.5, "trial": i})
        metrics = {"mbps": 1.0 + (i % 97) / 97.0,
                   "loss_rate": (i % 13) / 13.0,
                   "retry_rate": (i % 7) / 7.0,
                   "fairness": 1.0 - (i % 29) / 290.0}
        records.append(make_record(scenario, metrics,
                                   elapsed_s=0.001 * (1 + i % 5)))
    return records


def measure_campaigns(config: Optional[dict] = None
                      ) -> Dict[str, float]:
    """Measure campaign-engine throughput on a stock smoke matrix.

    Runs the configured campaign start-to-finish in a throwaway cache
    directory and reports scenarios/hour plus *orchestration
    efficiency*: the summed wall time of the same cells executed bare
    (no runner, no checkpoints) divided by the campaign wall time.  An
    efficiency near 1.0 means checkpointing/dispatch overhead is
    negligible; this ratio, not the machine-bound scenarios/hour, is
    what the regression gate watches.

    Also measures the *supervision series* (``supervised_*`` config
    keys): the same campaign over a worker pool with and without the
    per-scenario watchdog (``timeout_s``/retries).  The gated ratio
    ``supervision_efficiency`` — unwatched pool wall time over
    supervised wall time — pins that fault tolerance stays near-free
    when nothing faults.

    Also measures the MAC-engine series (see the ``engine_*`` config
    keys): wall time for the same saturated cell on the event-driven
    oracle vs the slot-synchronous engine, reported as
    station-seconds-simulated per wall second plus their gated ratio
    ``slot_vs_event_speedup``.

    Also measures the result-store series (``ingest_*`` config keys):
    the same synthesized record stream appended through the JSONL
    writer and the columnar WAL-tail writer, then fully aggregated
    off each store.  The gated ratio ``colstore_ingest_ratio`` —
    columnar records/sec over JSONL records/sec — pins the columnar
    backend's per-record durability cost (tail fsync + periodic npz
    seal) relative to the plain JSONL baseline on the same machine.

    Also measures the video series (``video_*`` config keys): the
    rateless half of the ``video`` experiment on a tiny generated
    workload, reported as fountain symbols accepted by the decoder
    per wall second (``video_symbols_per_sec``, gated) — fountain
    encode, surrogate PHY round trip, chunk salvage and incremental
    GF(2) row reduction all on the hot path.
    """
    import tempfile

    from repro.campaigns.runner import CampaignRunner
    from repro.campaigns.stock import get_campaign
    from repro.experiments.api import execute_task

    cfg = dict(DEFAULT_CAMPAIGN_CONFIG, **(config or {}))
    matrix = get_campaign(str(cfg["campaign"]))
    scenarios = matrix.expand()

    def bare_pass() -> None:
        for scenario in scenarios:
            execute_task(scenario.experiment, scenario.module,
                         scenario.params)

    # Untimed warm-up: fills the in-process trace pool and lazy
    # imports, so the bare and campaign measurements below see the
    # same warm caches (otherwise whichever runs first pays the
    # one-time costs and the efficiency ratio is meaningless).
    bare_pass()
    repeats = int(cfg.get("repeats", cfg.get("reference_repeats", 1)))

    def campaign_pass() -> float:
        # Fresh cache per repeat: resuming a completed campaign would
        # time checkpoint reads, not scenario execution.
        with tempfile.TemporaryDirectory() as cache:
            runner = CampaignRunner(jobs=int(cfg["jobs"]),
                                    cache_dir=cache)
            start = time.perf_counter()
            status = runner.run(matrix)
            elapsed = time.perf_counter() - start
        if status.completed != len(scenarios):
            raise RuntimeError(
                f"benchmark campaign incomplete: {status.completed}/"
                f"{len(scenarios)} scenarios")
        return elapsed

    # Pair the bare and orchestrated passes within each repeat and
    # gate on the median paired ratio — scheduler load drifts across
    # the run, and a ratio of two minima taken in different windows
    # flaps where the within-window ratio does not.
    orch_pairs = []
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        bare_pass()
        orch_pairs.append((time.perf_counter() - start,
                           campaign_pass()))
    bare_s = min(b for b, _ in orch_pairs)
    campaign_s = min(c for _, c in orch_pairs)
    orch_ratios = sorted(b / c for b, c in orch_pairs)
    orchestration_ratio = orch_ratios[len(orch_ratios) // 2]

    # Supervision series: identical pooled runs, watchdog off vs on.
    def pooled_run(timeout_s: Optional[float]) -> float:
        import tempfile as _tempfile
        with _tempfile.TemporaryDirectory() as cache:
            runner = CampaignRunner(
                jobs=int(cfg.get("supervised_jobs", 2)),
                cache_dir=cache, timeout_s=timeout_s,
                max_retries=int(cfg.get("supervised_retries", 2)))
            start = time.perf_counter()
            result = runner.run(matrix)
            elapsed = time.perf_counter() - start
        if result.completed != len(scenarios):
            raise RuntimeError(
                f"benchmark campaign incomplete: {result.completed}/"
                f"{len(scenarios)} scenarios")
        return elapsed

    # Pair the plain-pool and supervised runs within each repeat and
    # gate on the median paired ratio: pool wall times jitter with
    # scheduler load, and the ratio of two minima taken in different
    # windows flaps where the ratio within one window does not.
    pool_pairs = [
        (pooled_run(None),
         pooled_run(float(cfg.get("supervised_timeout_s", 120.0))))
        for _ in range(max(repeats, 1))]
    pool_s = min(p for p, _ in pool_pairs)
    supervised_s = min(s for _, s in pool_pairs)
    pool_ratios = sorted(p / s for p, s in pool_pairs)
    supervision_ratio = pool_ratios[len(pool_ratios) // 2]

    # MAC-engine series: the same saturated cell on the event-driven
    # oracle and the slot-synchronous engine.  The digests must match
    # — a speedup over an engine computing something different would
    # be meaningless.
    from repro.experiments.cell import run_cell

    n_stations = int(cfg["engine_n_clients"])
    horizon = float(cfg["engine_duration"])
    digests: Dict[str, float] = {}

    def engine_pass(mac_engine: str) -> None:
        out = run_cell(protocol=str(cfg["engine_protocol"]),
                       channel=str(cfg["engine_channel"]),
                       n_clients=n_stations, duration=horizon,
                       trace_pool=int(cfg["engine_trace_pool"]),
                       phy_backend=None, workload="mac",
                       mac_engine=mac_engine)
        digests[mac_engine] = out["frame_log_digest"]

    engine_pass("event")            # warm the trace pool + imports
    engine_pass("slot")
    if digests["event"] != digests["slot"]:
        raise RuntimeError(
            "MAC-engine benchmark invalid: frame-log digests differ "
            f"between engines ({digests['event']:.0f} vs "
            f"{digests['slot']:.0f})")
    event_s = _best_of(repeats, lambda: engine_pass("event"))
    slot_s = _best_of(repeats, lambda: engine_pass("slot"))
    station_seconds = n_stations * horizon

    # Result-store series: identical synthesized records through each
    # backend's writer, then a full aggregation pass off each store.
    from repro.campaigns.checkpoint import (CampaignStore, make_record,
                                            scan_jsonl)
    from repro.campaigns.colstore import ColumnStore, StreamingSummary

    n_records = int(cfg.get("ingest_records", 512))
    chunk_records = int(cfg.get("ingest_chunk_records", 128))
    stream = _ingest_stream(n_records)

    def store_pass(columnar: bool, aggregate: bool) -> float:
        """Wall seconds to ingest (or, with ``aggregate``, to ingest
        untimed and then aggregate) the stream on one backend."""
        with tempfile.TemporaryDirectory() as cache:
            if columnar:
                store = ColumnStore(matrix, cache_dir=cache,
                                    chunk_records=chunk_records)
            else:
                store = CampaignStore(matrix, cache_dir=cache)
            store.ensure()
            start = time.perf_counter()
            with store.writer("bench") as writer:
                for record in stream:
                    writer.append(record)
            if not aggregate:
                return time.perf_counter() - start
            start = time.perf_counter()
            if columnar:
                summary = store.stream_aggregates()
            else:
                summary = StreamingSummary()
                for record in scan_jsonl(store.directory)[0].values():
                    summary.update(record["metrics"])
            if summary.count != n_records:
                raise RuntimeError(
                    f"benchmark store incomplete: {summary.count}/"
                    f"{n_records} records aggregated")
            return time.perf_counter() - start

    def best_store(columnar: bool, aggregate: bool) -> float:
        # store_pass times its own measured section (ingest or
        # aggregation), excluding tempdir setup — so take the min of
        # its return values rather than wrapping it in _best_of.
        return min(store_pass(columnar, aggregate)
                   for _ in range(max(repeats, 1)))

    store_pass(True, False)                     # warm lazy imports
    # Ingest is fsync-per-record on both backends, so its wall time
    # tracks disk latency, which drifts minute to minute.  Measure
    # the two backends back to back within each repeat and gate on
    # the median paired ratio — a slow I/O window then hits both
    # sides of one pair instead of skewing the ratio of two minima
    # taken in different windows.
    ingest_pairs = [(store_pass(False, False), store_pass(True, False))
                    for _ in range(max(repeats, 1))]
    jsonl_ingest_s = min(j for j, _ in ingest_pairs)
    colstore_ingest_s = min(c for _, c in ingest_pairs)
    paired_ratios = sorted(j / c for j, c in ingest_pairs)
    ingest_ratio = paired_ratios[len(paired_ratios) // 2]
    jsonl_aggregate_s = best_store(False, True)
    colstore_aggregate_s = best_store(True, True)

    # Video series: the rateless-over-PPR pipeline end to end on the
    # surrogate backend.  Symbols/sec covers fountain encode, the
    # PHY round trip, chunk salvage and the incremental GF(2) row
    # reduction — the whole per-symbol cost of the video workload.
    from repro.experiments.video import run_video

    video_symbols = {"n": 0.0}

    def video_pass() -> None:
        out = run_video(
            scheme="rateless", workload="generated",
            video_duration=float(cfg.get("video_duration", 0.8)),
            video_bitrate_bps=float(cfg.get("video_bitrate_bps",
                                            1.2e5)),
            mean_snr_db=float(cfg.get("video_snr_db", 8.0)),
            seed=int(cfg.get("video_seed", 1)))
        video_symbols["n"] = out["rateless/symbols_received"]

    video_pass()                        # warm trace caches + imports
    video_s = _best_of(repeats, video_pass)

    return {
        "video_wall_s": video_s,
        "video_symbols_per_sec": video_symbols["n"] / video_s,
        "scenarios_per_hour": 3600.0 * len(scenarios) / campaign_s,
        "campaign_wall_s": campaign_s,
        "bare_cells_wall_s": bare_s,
        "orchestration_efficiency": orchestration_ratio,
        "pool_wall_s": pool_s,
        "supervised_wall_s": supervised_s,
        "supervision_efficiency": supervision_ratio,
        "event_station_seconds_per_sec": station_seconds / event_s,
        "slot_station_seconds_per_sec": station_seconds / slot_s,
        "slot_vs_event_speedup": event_s / slot_s,
        "jsonl_ingest_records_per_sec": n_records / jsonl_ingest_s,
        "colstore_ingest_records_per_sec":
            n_records / colstore_ingest_s,
        "colstore_ingest_ratio": ingest_ratio,
        "jsonl_aggregate_records_per_sec":
            n_records / jsonl_aggregate_s,
        "colstore_aggregate_records_per_sec":
            n_records / colstore_aggregate_s,
        "colstore_aggregate_speedup":
            jsonl_aggregate_s / colstore_aggregate_s,
    }


_SUITES = {
    "phy": (PHY_BENCH_FILE, _PHY_SCHEMA, DEFAULT_PHY_CONFIG,
            measure_phy, ("batched_speedup", "surrogate_speedup")),
    "campaigns": (CAMPAIGN_BENCH_FILE, _CAMPAIGN_SCHEMA,
                  DEFAULT_CAMPAIGN_CONFIG, measure_campaigns,
                  ("colstore_ingest_ratio",
                   "orchestration_efficiency",
                   "supervision_efficiency",
                   "slot_vs_event_speedup",
                   "video_symbols_per_sec")),
}


def write_benchmarks(output_dir: str = ".",
                     only: Optional[str] = None,
                     echo: Callable[[str], None] = print) -> List[str]:
    """Measure and (re)write the committed baseline files.

    Returns the paths written.  ``only`` restricts to one suite
    (``"phy"`` or ``"campaigns"``).
    """
    paths = []
    for name, (filename, schema, config, measure, gate) in \
            _SUITES.items():
        if only is not None and name != only:
            continue
        echo(f"bench {name}: measuring...")
        metrics = measure(config)
        payload = {"schema": schema, "config": config,
                   "gate": sorted(gate), "metrics": metrics}
        path = os.path.join(output_dir, filename)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        for key, value in sorted(metrics.items()):
            echo(f"  {key}: {value:.4g}")
        echo(f"bench {name}: wrote {path}")
        paths.append(path)
    return paths


def compare_gate(baseline: dict, metrics: Dict[str, float],
                 tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """One-sided gate comparison; returns failure messages.

    Only *drops* fail: a gate metric may improve without limit, but
    falling more than ``tolerance`` below the committed baseline is a
    regression.
    """
    failures = []
    for key in baseline.get("gate", ()):
        old = float(baseline["metrics"][key])
        new = float(metrics[key])
        floor = old * (1.0 - tolerance)
        if new < floor:
            failures.append(
                f"{key}: {new:.4g} < {floor:.4g} "
                f"(baseline {old:.4g}, tolerance {tolerance:.0%})")
    return failures


def check_benchmarks(output_dir: str = ".",
                     only: Optional[str] = None,
                     tolerance: float = DEFAULT_TOLERANCE,
                     echo: Callable[[str], None] = print) -> int:
    """Re-measure with each committed baseline's embedded config and
    gate the ratios.  Returns a process exit code (0 = pass).
    """
    status = 0
    for name, (filename, schema, _default, measure, _gate) in \
            _SUITES.items():
        if only is not None and name != only:
            continue
        path = os.path.join(output_dir, filename)
        if not os.path.exists(path):
            echo(f"bench {name}: MISSING baseline {path} "
                 f"(run `repro bench` to create it)")
            status = 1
            continue
        with open(path) as fh:
            baseline = json.load(fh)
        if baseline.get("schema") != schema:
            echo(f"bench {name}: unknown schema "
                 f"{baseline.get('schema')!r} in {path}")
            status = 1
            continue
        echo(f"bench {name}: re-measuring with committed config...")
        metrics = measure(baseline.get("config"))
        failures = compare_gate(baseline, metrics, tolerance)
        if failures:
            # One retry before failing: wall-clock benches on shared
            # CI runners see transient noise beyond the tolerance; a
            # real regression fails both measurements.
            echo(f"bench {name}: below floor, re-measuring once to "
                 f"rule out machine noise...")
            retry = measure(baseline.get("config"))
            metrics = {key: max(metrics[key], retry[key])
                       for key in metrics}
            failures = compare_gate(baseline, metrics, tolerance)
        for key in baseline.get("gate", ()):
            echo(f"  {key}: baseline "
                 f"{float(baseline['metrics'][key]):.4g} -> measured "
                 f"{float(metrics[key]):.4g}")
        if failures:
            for failure in failures:
                echo(f"bench {name}: FAIL {failure}")
            status = 1
        else:
            echo(f"bench {name}: ok")
    return status
