"""Tests for the SampleRate baseline."""

import pytest

from repro.core.feedback import Feedback
from repro.phy.rates import RATE_TABLE
from repro.rateadapt.samplerate import SampleRate

RATES = RATE_TABLE.prototype_subset()


def _ok(ber=1e-6):
    return Feedback(src=1, dest=0, seq=0, ber=ber, frame_ok=True)


def _fail():
    return Feedback(src=1, dest=0, seq=0, ber=0.1, frame_ok=False)


def _airtime(rate_index, bits=11200):
    return bits / (RATES[rate_index].mbps * 1e6)


class TestSelection:
    def test_picks_minimum_avg_tx_time(self):
        adapter = SampleRate(RATES, sample_every=1000)
        # Rate 5 succeeds always; rate 3 also succeeds but is slower.
        for i in range(10):
            adapter.on_feedback(i * 1e-3, 5, _ok(), _airtime(5))
            adapter.on_feedback(i * 1e-3, 3, _ok(), _airtime(3))
        assert adapter.choose_rate(0.02) == 5

    def test_losses_inflate_avg_time(self):
        adapter = SampleRate(RATES, sample_every=1000)
        now = 0.0
        for i in range(10):
            now = i * 1e-3
            adapter.on_feedback(now, 4, _ok(), _airtime(4))
            # rate 5: one success, then constant failures
            if i == 0:
                adapter.on_feedback(now, 5, _ok(), _airtime(5))
            else:
                adapter.on_feedback(now, 5, _fail(), _airtime(5))
        assert adapter.choose_rate(now) == 4

    def test_window_expires_old_evidence(self):
        adapter = SampleRate(RATES, window=1.0, sample_every=1000)
        adapter.on_feedback(0.0, 5, _fail(), _airtime(5))
        adapter.on_feedback(0.0, 4, _ok(), _airtime(4))
        # Two seconds later the old failure is forgotten; with no data
        # the adapter holds its current choice.
        adapter.on_feedback(2.0, 5, _ok(), _airtime(5))
        assert adapter.choose_rate(2.1) == 5

    def test_silent_losses_count_as_failures(self):
        adapter = SampleRate(RATES, sample_every=1000)
        adapter.on_feedback(0.0, 3, _ok(), _airtime(3))
        for _ in range(5):
            adapter.on_silent_loss(0.0, 5, _airtime(5))
        assert adapter.choose_rate(0.01) == 3


class TestSampling:
    def test_samples_periodically(self):
        adapter = SampleRate(RATES, sample_every=10)
        for i in range(3):
            adapter.on_feedback(i * 1e-3, 4, _ok(), _airtime(4))
        chosen = [adapter.choose_rate(0.01 + i * 1e-3)
                  for i in range(30)]
        assert any(rate != 4 for rate in chosen)
        assert sum(rate == 4 for rate in chosen) > len(chosen) // 2

    def test_hopeless_rates_not_sampled(self):
        # A rate whose lossless airtime exceeds the current average
        # can never win and must not be probed.
        adapter = SampleRate(RATES, sample_every=2)
        for i in range(20):
            adapter.on_feedback(i * 1e-4, 5, _ok(), _airtime(5))
        chosen = {adapter.choose_rate(0.01 + i * 1e-4)
                  for i in range(40)}
        assert 0 not in chosen      # 6 Mbps can't beat clean 36 Mbps


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            SampleRate(RATES, window=0.0)
        with pytest.raises(ValueError):
            SampleRate(RATES, sample_every=1)
