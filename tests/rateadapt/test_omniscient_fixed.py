"""Tests for the omniscient oracle and fixed-rate adapters."""

import pytest

from repro.phy.rates import RATE_TABLE
from repro.rateadapt.fixed import FixedRate
from repro.rateadapt.omniscient import OmniscientAdapter
from repro.traces.synthetic import alternating_trace, constant_trace

RATES = RATE_TABLE.prototype_subset()


class TestOmniscient:
    def test_reads_the_trace(self):
        trace = alternating_trace(good_rate=5, bad_rate=4, period=1.0,
                                  duration=4.0)
        adapter = OmniscientAdapter(RATES, trace)
        assert adapter.choose_rate(0.5) == 4
        assert adapter.choose_rate(1.5) == 5

    def test_blackout_falls_back_to_lowest(self):
        trace = constant_trace(best_rate=3, duration=1.0)
        trace.delivered[:, :] = False
        adapter = OmniscientAdapter(RATES, trace)
        assert adapter.choose_rate(0.1) == 0

    def test_rate_table_must_match(self):
        from repro.phy.rates import RateTable
        trace = constant_trace(best_rate=1, duration=1.0)
        with pytest.raises(ValueError):
            OmniscientAdapter(RateTable([RATES[0]]), trace)


class TestFixed:
    def test_never_moves(self):
        adapter = FixedRate(RATES, 2)
        adapter.on_silent_loss(0.0, 2, 1e-3)
        adapter.on_silent_loss(0.0, 2, 1e-3)
        adapter.on_silent_loss(0.0, 2, 1e-3)
        assert adapter.choose_rate(1.0) == 2

    def test_name_includes_rate(self):
        assert "QPSK 1/2" in FixedRate(RATES, 2).name

    def test_range_validated(self):
        with pytest.raises(ValueError):
            FixedRate(RATES, 17)
