"""Tests for the RRAA baseline."""

import pytest

from repro.core.feedback import Feedback
from repro.phy.rates import RATE_TABLE
from repro.rateadapt.rraa import Rraa

RATES = RATE_TABLE.prototype_subset()


def _ok():
    return Feedback(src=1, dest=0, seq=0, ber=1e-6, frame_ok=True)


def _fail():
    return Feedback(src=1, dest=0, seq=0, ber=0.1, frame_ok=False)


class TestThresholds:
    def test_p_mtl_matches_rate_ratio(self):
        adapter = Rraa(RATES)
        # P_MTL(i) = 1 - tau_i / tau_{i-1} = 1 - mbps_{i-1}/mbps_i.
        expected = 1.0 - RATES[2].mbps / RATES[3].mbps * \
            (RATES[3].mbps / RATES[3].mbps)
        assert adapter._p_mtl(3) == pytest.approx(
            1.0 - (1 / RATES[3].mbps) / (1 / RATES[2].mbps))
        assert 0 < adapter._p_mtl(3) < 1

    def test_edges(self):
        adapter = Rraa(RATES)
        assert adapter._p_mtl(0) == 1.0
        assert adapter._p_ori(len(RATES) - 1) == 0.0

    def test_ori_below_mtl(self):
        adapter = Rraa(RATES)
        for i in range(1, len(RATES) - 1):
            assert adapter._p_ori(i) < adapter._p_mtl(i)


class TestAdaptation:
    def test_heavy_loss_steps_down(self):
        adapter = Rraa(RATES, window=20, initial_rate=3)
        for _ in range(15):
            adapter.on_feedback(0.0, 3, _fail(), 1e-3)
        assert adapter.choose_rate(0.1) == 2

    def test_clean_window_steps_up(self):
        adapter = Rraa(RATES, window=20, initial_rate=3)
        for _ in range(20):
            adapter.on_feedback(0.0, 3, _ok(), 1e-3)
        assert adapter.choose_rate(0.1) == 4

    def test_needs_evidence_before_moving(self):
        adapter = Rraa(RATES, window=20, initial_rate=3)
        for _ in range(3):
            adapter.on_feedback(0.0, 3, _fail(), 1e-3)
        assert adapter.choose_rate(0.1) == 3

    def test_other_rate_outcomes_ignored(self):
        adapter = Rraa(RATES, window=20, initial_rate=3)
        for _ in range(20):
            adapter.on_feedback(0.0, 5, _fail(), 1e-3)
        assert adapter.choose_rate(0.1) == 3

    def test_moderate_loss_holds(self):
        adapter = Rraa(RATES, window=20, initial_rate=3)
        # Alternate ok/fail: 50% loss exceeds P_MTL(3) (~33%), so this
        # actually steps down; use a loss ratio between ORI and MTL.
        outcomes = [_ok()] * 16 + [_fail()] * 4   # 20% loss
        for fb in outcomes:
            adapter.on_feedback(0.0, 3, fb, 1e-3)
        assert adapter.choose_rate(0.1) == 3


class TestAdaptiveRts:
    def test_rts_off_initially(self):
        adapter = Rraa(RATES)
        assert not adapter.wants_rts(0.0)

    def test_losses_enable_rts(self):
        adapter = Rraa(RATES, initial_rate=3)
        adapter.wants_rts(0.0)
        adapter.on_silent_loss(0.0, 3, 1e-3)     # unprotected loss
        assert adapter.wants_rts(0.0)

    def test_successes_wind_rts_down(self):
        adapter = Rraa(RATES, initial_rate=3)
        adapter.wants_rts(0.0)
        for _ in range(4):
            adapter.on_silent_loss(0.0, 3, 1e-3)
            adapter.wants_rts(0.0)
        # A run of unprotected successes shrinks the window to zero.
        for _ in range(80):
            used = adapter.wants_rts(0.0)
            adapter.on_feedback(0.0, 3, _ok(), 1e-3)
        assert not adapter.wants_rts(0.0)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            Rraa(RATES, window=2)
        with pytest.raises(ValueError):
            Rraa(RATES, theta=1.0)
