"""Tests for the SoftRate algorithm."""

import numpy as np
import pytest

from repro.core.feedback import Feedback
from repro.core.thresholds import FrameLevelArq, compute_thresholds
from repro.phy.rates import RATE_TABLE
from repro.rateadapt.softrate import SoftRate

RATES = RATE_TABLE.prototype_subset()


def _feedback(ber, frame_ok=True, interference=False):
    return Feedback(src=1, dest=0, seq=0, ber=ber, frame_ok=frame_ok,
                    interference_detected=interference)


@pytest.fixture()
def softrate():
    return SoftRate(RATES, initial_rate=3)


class TestRateWalk:
    def test_stays_in_sweet_spot(self, softrate):
        t = softrate.thresholds[3]
        mid = np.sqrt(t.alpha * t.beta)
        softrate.on_feedback(0.0, 3, _feedback(mid), 1e-3)
        assert softrate.choose_rate(0.1) == 3

    def test_moves_up_on_low_ber(self, softrate):
        softrate.on_feedback(0.0, 3, _feedback(1e-12), 1e-3)
        assert softrate.choose_rate(0.1) > 3

    def test_moves_down_on_high_ber(self, softrate):
        softrate.on_feedback(0.0, 3, _feedback(0.05, frame_ok=False),
                             1e-3)
        assert softrate.choose_rate(0.1) < 3

    def test_jump_capped_at_two(self):
        adapter = SoftRate(RATES, initial_rate=5, max_jump=2)
        adapter.on_feedback(0.0, 5, _feedback(0.4, frame_ok=False), 1e-3)
        assert adapter.choose_rate(0.1) >= 3

    def test_single_jump_configuration(self):
        adapter = SoftRate(RATES, initial_rate=5, max_jump=1)
        adapter.on_feedback(0.0, 5, _feedback(0.4, frame_ok=False), 1e-3)
        assert adapter.choose_rate(0.1) == 4

    def test_collision_does_not_reduce_rate(self, softrate):
        # Interference-detected feedback carries the clean-portion BER,
        # so a collided-but-channel-good frame must not drop the rate.
        t = softrate.thresholds[3]
        mid = np.sqrt(t.alpha * t.beta)
        softrate.on_feedback(0.0, 3,
                             _feedback(mid, frame_ok=False,
                                       interference=True), 1e-3)
        assert softrate.choose_rate(0.1) == 3


class TestSilentLosses:
    def test_three_silent_losses_drop_rate(self, softrate):
        for _ in range(2):
            softrate.on_silent_loss(0.0, 3, 1e-3)
            assert softrate.choose_rate(0.0) == 3
        softrate.on_silent_loss(0.0, 3, 1e-3)
        assert softrate.choose_rate(0.0) == 2

    def test_feedback_resets_silence_counter(self, softrate):
        t = softrate.thresholds[3]
        mid = np.sqrt(t.alpha * t.beta)
        softrate.on_silent_loss(0.0, 3, 1e-3)
        softrate.on_silent_loss(0.0, 3, 1e-3)
        softrate.on_feedback(0.0, 3, _feedback(mid), 1e-3)
        softrate.on_silent_loss(0.0, 3, 1e-3)
        softrate.on_silent_loss(0.0, 3, 1e-3)
        assert softrate.choose_rate(0.0) == 3

    def test_counter_resets_after_drop(self, softrate):
        for _ in range(3):
            softrate.on_silent_loss(0.0, 3, 1e-3)
        assert softrate.choose_rate(0.0) == 2
        softrate.on_silent_loss(0.0, 2, 1e-3)
        assert softrate.choose_rate(0.0) == 2    # needs 3 again

    def test_floor_at_lowest_rate(self):
        adapter = SoftRate(RATES, initial_rate=0)
        for _ in range(9):
            adapter.on_silent_loss(0.0, 0, 1e-3)
        assert adapter.choose_rate(0.0) == 0

    def test_custom_limit(self):
        adapter = SoftRate(RATES, initial_rate=3, silent_loss_limit=1)
        adapter.on_silent_loss(0.0, 3, 1e-3)
        assert adapter.choose_rate(0.0) == 2


class TestRecoveryModelModularity:
    def test_harq_thresholds_tolerate_more_ber(self):
        # The architectural claim of section 3.3: swapping the error
        # recovery model changes only the thresholds.  With H-ARQ-like
        # thresholds a BER that frame-ARQ SoftRate flees from is kept.
        from repro.core.thresholds import PartialBitArq
        ber = 3e-4
        frame_arq = SoftRate(RATES, initial_rate=3)
        harq = SoftRate(RATES, initial_rate=3,
                        thresholds=compute_thresholds(
                            RATES, PartialBitArq(500.0)))
        frame_arq.on_feedback(0.0, 3, _feedback(ber), 1e-3)
        harq.on_feedback(0.0, 3, _feedback(ber), 1e-3)
        assert frame_arq.choose_rate(0.1) < 3
        assert harq.choose_rate(0.1) >= 3


class TestValidation:
    def test_mismatched_thresholds_rejected(self):
        from repro.phy.rates import RateTable
        table = compute_thresholds(RATES, FrameLevelArq(1000))
        two_rates = RateTable([RATES[0], RATES[1]])
        with pytest.raises(ValueError):
            SoftRate(two_rates, thresholds=table)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            SoftRate(RATES, max_jump=0)
        with pytest.raises(ValueError):
            SoftRate(RATES, silent_loss_limit=0)
