"""Tests for SNR-threshold adaptation (trained / untrained / CHARM)."""

import numpy as np
import pytest

from repro.core.feedback import Feedback
from repro.phy.rates import RATE_TABLE
from repro.rateadapt.snr_based import (SnrBasedAdapter,
                                       theoretical_snr_thresholds,
                                       train_snr_thresholds)
from repro.traces.generate import generate_fading_trace

RATES = RATE_TABLE.prototype_subset()


def _feedback(snr_db):
    return Feedback(src=1, dest=0, seq=0, ber=0.0, frame_ok=True,
                    snr_db=snr_db)


class TestTheoreticalThresholds:
    def test_monotone(self):
        thresholds = theoretical_snr_thresholds(RATES)
        assert thresholds == sorted(thresholds)

    def test_sane_range(self):
        thresholds = theoretical_snr_thresholds(RATES)
        assert 0.0 <= thresholds[0] <= 6.0       # BPSK 1/2
        assert 10.0 <= thresholds[5] <= 18.0     # QAM16 3/4

    def test_validation(self):
        with pytest.raises(ValueError):
            theoretical_snr_thresholds(RATES, target_loss=0.0)


class TestTrainedThresholds:
    def test_trained_on_fading_exceed_awgn(self):
        # Fading within frames means a given preamble SNR delivers less
        # than AWGN theory says, so in-situ thresholds sit higher.
        rng = np.random.default_rng(5)
        trace = generate_fading_trace(rng, duration=5.0,
                                      mean_snr_db=lambda t: 14.0,
                                      doppler_hz=40.0)
        trained = train_snr_thresholds(trace)
        theory = theoretical_snr_thresholds(RATES)
        pairs = [(a, b) for a, b in zip(trained, theory)
                 if a < float("inf")]
        assert len(pairs) >= 3
        mean_gap = np.mean([a - b for a, b in pairs])
        assert mean_gap > -1.0

    def test_monotone(self):
        rng = np.random.default_rng(6)
        trace = generate_fading_trace(rng, duration=3.0,
                                      mean_snr_db=lambda t: 12.0)
        thresholds = train_snr_thresholds(trace)
        finite = [t for t in thresholds if t < float("inf")]
        assert finite == sorted(finite)


class TestAdapter:
    def test_picks_rate_by_threshold(self):
        adapter = SnrBasedAdapter(RATES, [0, 3, 6, 9, 12, 15])
        adapter.on_feedback(0.0, 2, _feedback(10.0), 1e-3)
        assert adapter.choose_rate(0.1) == 3     # >= 9, < 12

    def test_below_all_thresholds_uses_lowest(self):
        adapter = SnrBasedAdapter(RATES, [5, 8, 11, 14, 17, 20])
        adapter.on_feedback(0.0, 2, _feedback(1.0), 1e-3)
        assert adapter.choose_rate(0.1) == 0

    def test_instantaneous_tracks_latest(self):
        adapter = SnrBasedAdapter(RATES, [0, 3, 6, 9, 12, 15])
        adapter.on_feedback(0.0, 0, _feedback(16.0), 1e-3)
        adapter.on_feedback(0.1, 5, _feedback(1.0), 1e-3)
        assert adapter.choose_rate(0.2) == 0

    def test_charm_averages(self):
        adapter = SnrBasedAdapter(RATES, [0, 3, 6, 9, 12, 15],
                                  averaging=1.0)
        adapter.on_feedback(0.0, 0, _feedback(15.0), 1e-3)
        # A single transient dip barely moves the EWMA.
        adapter.on_feedback(0.01, 5, _feedback(0.0), 1e-3)
        assert adapter.choose_rate(0.02) >= 4
        assert adapter.name == "CHARM"

    def test_nan_snr_ignored(self):
        adapter = SnrBasedAdapter(RATES, [0, 3, 6, 9, 12, 15])
        adapter.on_feedback(0.0, 2, _feedback(10.0), 1e-3)
        adapter.on_feedback(0.1, 2, _feedback(float("nan")), 1e-3)
        assert adapter.choose_rate(0.2) == 3

    def test_silent_losses_decay_estimate(self):
        adapter = SnrBasedAdapter(RATES, [0, 3, 6, 9, 12, 15])
        adapter.on_feedback(0.0, 3, _feedback(9.5), 1e-3)
        for _ in range(5):
            adapter.on_silent_loss(0.0, 3, 1e-3)
        assert adapter.choose_rate(0.1) < 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SnrBasedAdapter(RATES, [0, 3, 6])          # wrong length
        with pytest.raises(ValueError):
            SnrBasedAdapter(RATES, [5, 3, 6, 9, 12, 15])  # not sorted
        with pytest.raises(ValueError):
            SnrBasedAdapter(RATES, [0, 3, 6, 9, 12, 15], averaging=0.0)
