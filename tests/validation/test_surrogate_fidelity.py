"""Surrogate-backend fidelity: how closely the calibrated tables
reproduce the full bit-exact PHY.

Three layers of validation, from static curves to protocol behaviour:

1. **BER waterfalls vs the golden fixtures** — the surrogate's
   calibrated BER curve must reproduce the pinned fig07 golden points
   within the tolerances documented in ``docs/reproducing.md``
   (0.5 decades where the golden Monte Carlo resolves the BER; golden
   zero-error groups must be *likely* under the surrogate's delivery
   hazard, because frame errors near the waterfall are bimodal).

2. **Trajectory-matched outcomes** — identical fig08-style fading
   trajectories through both backends: delivery rates, estimator
   tracking (Fig. 7a), clean-frame estimator floor, and preamble-SNR
   error statistics must agree.

3. **SoftRate throughput** — a saturated MAC-level SoftRate flow over
   the same fading trace, frame fates computed by each backend; the
   delivered throughput must agree within 30%.

``REPRO_SMOKE_BENCH=1`` shrinks the Monte Carlo sizes for CI smoke
runs (bounds unchanged except where noted).
"""

from __future__ import annotations

import json
import os
from collections import defaultdict

import numpy as np
import pytest

from repro.channel.rayleigh import RayleighFadingProcess
from repro.phy.backend import FullPhyBackend, SurrogatePhyBackend
from repro.phy.calibration import default_table
from repro.phy.snr import db_to_linear

_SMOKE = os.environ.get("REPRO_SMOKE_BENCH", "") not in ("", "0")
_GOLDEN_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "golden", "phy_ber_points.json")

#: Documented tolerances (docs/reproducing.md, "Surrogate fidelity").
MEASURABLE_BER_TOL_DECADES = 0.5    # golden aggregate BER >= 1e-2
SPARSE_BER_TOL_DECADES = 1.0        # golden aggregate BER in (0, 1e-2)
ZERO_GOLDEN_MIN_LIKELIHOOD = 0.01   # P(observed all-clean | surrogate)


def _golden_fig07_groups():
    """Aggregate the fig07 golden fixture per (rate, snr) point.

    Returns ``(n_info_bits, {(rate, snr): (errors, bits, frames)})``.
    """
    with open(_GOLDEN_PATH) as fh:
        golden = json.load(fh)["fig07"]
    cfg, arrays = golden["config"], golden["arrays"]
    n_info = cfg["payload_bits"] + 32
    groups = defaultdict(lambda: [0, 0, 0])
    i = 0
    for rate in cfg["rate_indices"]:
        for snr in cfg["snr_grid_db"]:
            for _ in range(cfg["frames_per_point"]):
                groups[(rate, float(snr))][0] += \
                    arrays["error_counts"][i]
                groups[(rate, float(snr))][1] += n_info
                groups[(rate, float(snr))][2] += 1
                i += 1
    assert i == len(arrays["error_counts"])
    return n_info, dict(groups)


class TestGoldenBerCurve:
    """Acceptance criterion: surrogate reproduces the fig07 goldens."""

    def test_measurable_points_within_tolerance(self):
        table = default_table()
        _n_info, groups = _golden_fig07_groups()
        checked = 0
        for (rate, snr), (errors, bits, _frames) in groups.items():
            golden_ber = errors / bits
            if golden_ber <= 0:
                continue
            surrogate = float(table.bit_error_rate(rate, snr))
            deviation = abs(np.log10(surrogate / golden_ber))
            tol = MEASURABLE_BER_TOL_DECADES if golden_ber >= 1e-2 \
                else SPARSE_BER_TOL_DECADES
            assert deviation <= tol, (
                f"rate {rate} @ {snr} dB: golden BER {golden_ber:.3g} "
                f"vs surrogate {surrogate:.3g} "
                f"({deviation:.2f} decades, tol {tol})")
            checked += 1
        assert checked >= 8      # the fixture must keep exercising this

    def test_zero_error_points_are_likely(self):
        """Golden groups with zero bit errors must be plausible under
        the surrogate's delivery hazard (bimodal waterfall: a clean
        800-bit sample near the waterfall is luck, not BER ~ 0)."""
        table = default_table()
        n_info, groups = _golden_fig07_groups()
        for (rate, snr), (errors, _bits, frames) in groups.items():
            if errors > 0:
                continue
            lam = float(table.hazard(rate, snr))
            p_all_clean = float(np.exp(-lam * n_info) ** frames)
            assert p_all_clean >= ZERO_GOLDEN_MIN_LIKELIHOOD, (
                f"rate {rate} @ {snr} dB: golden saw {frames} clean "
                f"frames but the surrogate gives that probability "
                f"{p_all_clean:.2e}")


class TestTrajectoryMatchedOutcomes:
    """Identical fading trajectories through both backends."""

    N_FRAMES = 16 if _SMOKE else 48
    PAYLOAD_BITS = 368
    RATE_INDEX = 3

    @pytest.fixture(scope="class")
    def outcomes(self):
        full = FullPhyBackend()
        surrogate = SurrogatePhyBackend(default_table())
        traj_rng = np.random.default_rng(88)
        trajectories = []
        for _ in range(self.N_FRAMES):
            mean_snr = traj_rng.uniform(4.0, 14.0)
            fading = RayleighFadingProcess(40.0, traj_rng)
            amp = np.sqrt(db_to_linear(mean_snr))
            gains = amp * fading.symbol_gains(0.0, 40, 8e-6)
            trajectories.append(10.0 * np.log10(
                np.maximum(np.abs(gains) ** 2, 1e-12)))
        rng_f = np.random.default_rng(1)
        rng_s = np.random.default_rng(2)
        full_outs = [full.frame_outcome(self.RATE_INDEX, t,
                                        self.PAYLOAD_BITS, rng_f)
                     for t in trajectories]
        sur_outs = [surrogate.frame_outcome(self.RATE_INDEX, t,
                                            self.PAYLOAD_BITS, rng_s)
                    for t in trajectories]
        return trajectories, full_outs, sur_outs

    def test_delivery_rates_agree(self, outcomes):
        _trajs, full_outs, sur_outs = outcomes
        full_rate = np.mean([o.delivered for o in full_outs])
        sur_rate = np.mean([o.delivered for o in sur_outs])
        assert abs(full_rate - sur_rate) <= 0.25, (
            f"delivery {full_rate:.2f} (full) vs {sur_rate:.2f} "
            "(surrogate)")

    def test_estimator_tracks_truth_on_errored_frames(self, outcomes):
        _trajs, full_outs, sur_outs = outcomes
        for name, outs in (("full", full_outs),
                           ("surrogate", sur_outs)):
            devs = [abs(np.log10(max(o.ber_est, 1e-12) / o.ber_true))
                    for o in outs if o.ber_true > 0]
            if not devs:        # smoke run may draw no errored frames
                continue
            assert np.median(devs) <= 0.6, (
                f"{name}: estimator off by {np.median(devs):.2f} "
                "decades (median) on errored frames")

    def test_clean_frames_report_tiny_ber(self, outcomes):
        _trajs, full_outs, sur_outs = outcomes
        for outs in (full_outs, sur_outs):
            clean = [o.ber_est for o in outs if o.ber_true == 0]
            assert clean and np.median(clean) < 1e-6

    def test_snr_estimate_statistics_agree(self, outcomes):
        trajs, full_outs, sur_outs = outcomes
        err_f = [o.snr_db - t[0] for o, t in zip(full_outs, trajs)]
        err_s = [o.snr_db - t[0] for o, t in zip(sur_outs, trajs)]
        assert abs(np.mean(err_f) - np.mean(err_s)) <= 0.75
        assert np.std(err_s) <= max(3.0 * np.std(err_f), 1.0)


class TestSoftRateThroughputDeviation:
    """Saturated SoftRate flow, frame fates from each backend."""

    DURATION = 0.02 if _SMOKE else 0.05
    PAYLOAD_BITS = 368

    def _run(self, phy_backend):
        from repro.experiments.common import softrate_factory
        from repro.phy.rates import RATE_TABLE
        from repro.sim.eventsim import Simulator
        from repro.sim.mac import Station
        from repro.sim.topology import make_airtime_fn
        from repro.sim.wireless import WirelessChannel
        from repro.traces.generate import generate_fading_trace

        rates = RATE_TABLE.prototype_subset()
        trace = generate_fading_trace(
            np.random.default_rng(42), duration=1.0,
            mean_snr_db=lambda t: 14.0, doppler_hz=40.0,
            payload_bits=self.PAYLOAD_BITS)
        sim = Simulator()
        channel = WirelessChannel({(1, 0): trace},
                                  np.random.default_rng(3),
                                  phy_backend=phy_backend)
        airtime = make_airtime_fn(rates)
        stations = {}

        def refill():
            while stations[1].send(0, None, self.PAYLOAD_BITS):
                pass

        for sid, drain in ((0, None), (1, refill)):
            stations[sid] = Station(
                sim, channel, sid, np.random.default_rng(1000 + sid),
                adapter_factory=lambda peer: softrate_factory(rates),
                airtime_fn=airtime, on_queue_drain=drain)
        refill()
        sim.run_until(self.DURATION)
        sender = stations[1]
        mbps = sender.delivered_frames * self.PAYLOAD_BITS \
            / self.DURATION / 1e6
        return mbps, len(sender.frame_log)

    def test_throughput_within_30_percent(self):
        full_mbps, full_frames = self._run("full")
        sur_mbps, sur_frames = self._run("surrogate")
        assert full_frames > 10 and sur_frames > 10
        assert sur_mbps == pytest.approx(full_mbps, rel=0.30), (
            f"SoftRate throughput {full_mbps:.2f} Mbps (full) vs "
            f"{sur_mbps:.2f} Mbps (surrogate)")
