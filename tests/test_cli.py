"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestRates:
    def test_prints_table(self, capsys):
        assert main(["rates"]) == 0
        out = capsys.readouterr().out
        assert "QPSK" in out and "18 Mbps" in out
        assert "long_range" in out


class TestTraceRoundtrip:
    def test_generate_and_inspect(self, tmp_path, capsys):
        path = str(tmp_path / "link.npz")
        assert main(["trace", path, "--duration", "1.0",
                     "--snr", "14"]) == 0
        out = capsys.readouterr().out
        assert "200 slots" in out
        assert main(["inspect", path]) == 0
        out = capsys.readouterr().out
        assert "BPSK 1/2" in out
        assert "delivered" in out

    def test_walking_flag(self, tmp_path, capsys):
        path = str(tmp_path / "walk.npz")
        assert main(["trace", path, "--duration", "1.0",
                     "--walking"]) == 0
        from repro.traces.format import LinkTrace
        trace = LinkTrace.load(path)
        assert trace.n_slots == 200


class TestThresholds:
    def test_arq(self, capsys):
        assert main(["thresholds"]) == 0
        out = capsys.readouterr().out
        assert "QPSK 3/4" in out

    def test_harq_differs(self, capsys):
        main(["thresholds", "--recovery", "arq"])
        arq = capsys.readouterr().out
        main(["thresholds", "--recovery", "harq"])
        harq = capsys.readouterr().out
        assert arq != harq


class TestSimulate:
    def test_short_softrate_run(self, capsys):
        assert main(["simulate", "--duration", "1.0",
                     "--protocol", "softrate"]) == 0
        out = capsys.readouterr().out
        assert "softrate [tcp]:" in out
        assert "Mbps" in out

    def test_charm_protocol_reachable(self, capsys):
        assert main(["simulate", "--duration", "0.5",
                     "--protocol", "charm"]) == 0
        out = capsys.readouterr().out
        assert "charm [tcp]:" in out

    def test_snr_untrained_protocol_reachable(self, capsys):
        assert main(["simulate", "--duration", "0.5",
                     "--protocol", "snr-untrained"]) == 0
        out = capsys.readouterr().out
        assert "snr-untrained [tcp]:" in out

    def test_mac_workload_on_both_engines(self, capsys):
        outputs = {}
        for engine in ("event", "slot"):
            assert main(["simulate", "--workload", "mac",
                         "--engine", engine, "--clients", "3",
                         "--duration", "0.05",
                         "--protocol", "softrate"]) == 0
            out = capsys.readouterr().out
            assert f"softrate [mac/{engine}]:" in out
            outputs[engine] = out.split(":", 1)[1]
        # Same scenario, same numbers, whichever engine ran it.
        assert outputs["event"] == outputs["slot"]

    def test_slot_engine_requires_mac_workload(self, capsys):
        with pytest.raises(SystemExit, match="workload"):
            main(["simulate", "--engine", "slot",
                  "--duration", "0.05"])


class TestProtocolChoices:
    def test_cli_mirror_matches_common(self):
        from repro.cli import _PROTOCOL_CHOICES
        from repro.experiments.common import PROTOCOL_NAMES
        assert _PROTOCOL_CHOICES == PROTOCOL_NAMES


class TestList:
    def test_enumerates_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("cell", "fig01", "fig13", "tab01", "tab02"):
            assert name in out
        # 13 built-ins; test suites may have registered extras.
        import re
        count = int(re.search(r"(\d+) experiments registered",
                              out).group(1))
        assert count >= 13


class TestRun:
    def test_run_with_override_and_output(self, tmp_path, capsys):
        out_path = str(tmp_path / "result.json")
        assert main(["run", "fig01", "--set", "duration=0.5",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--output", out_path]) == 0
        out = capsys.readouterr().out
        assert "fade_depth_db" in out
        import json
        data = json.loads(open(out_path).read())
        assert data["experiment"] == "fig01"
        assert data["params"]["duration"] == 0.5

    def test_run_uses_cache_on_second_invocation(self, tmp_path,
                                                 capsys):
        args = ["run", "fig01", "--set", "duration=0.5",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "(cache)" in capsys.readouterr().out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99", "--no-cache"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_parameter_fails_cleanly(self, capsys):
        assert main(["run", "fig01", "--set", "bogus=1",
                     "--no-cache"]) == 2
        assert "bogus" in capsys.readouterr().err


class TestSweep:
    def test_sweep_prints_row_per_value(self, tmp_path, capsys):
        assert main(["sweep", "fig01", "--param", "seed",
                     "--values", "1,2",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "seed=1" in out and "seed=2" in out
        assert "fade_depth_db" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestListDeterminism:
    def test_output_sorted_by_experiment_id(self, capsys):
        """`repro list` must be deterministic: rows sorted by id."""
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        names = [line.split()[0] for line in out.splitlines()
                 if line.startswith(("cell", "fig", "tab"))]
        assert len(names) >= 13
        assert names == sorted(names)

    def test_two_invocations_identical(self, capsys):
        assert main(["list"]) == 0
        first = capsys.readouterr().out
        assert main(["list"]) == 0
        assert capsys.readouterr().out == first


class TestPhyBackendCli:
    def test_run_with_surrogate_backend(self, capsys):
        assert main(["run", "fig07", "--set", "payload_bits=256",
                     "--set", "frames_per_point=1",
                     "--phy-backend", "surrogate", "--no-cache"]) == 0
        assert "estimator_error_decades" in capsys.readouterr().out

    def test_unknown_backend_fails_cleanly(self, capsys):
        assert main(["run", "fig07", "--phy-backend", "warp",
                     "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "warp" in err and "surrogate" in err

    def test_simulate_with_surrogate_backend(self, capsys):
        assert main(["simulate", "--duration", "0.3",
                     "--phy-backend", "surrogate"]) == 0
        assert "Mbps" in capsys.readouterr().out

    def test_simulate_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--phy-backend", "warp"])


class TestCalibrateCommand:
    def test_writes_loadable_table(self, tmp_path, capsys):
        path = str(tmp_path / "cal.json")
        assert main(["calibrate", "--output", path,
                     "--frames-per-point", "1",
                     "--payload-bits", "104", "--batch-size", "1",
                     "--snr-min", "0", "--snr-max", "24",
                     "--snr-step", "8"]) == 0
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        from repro.phy.calibrate import CalibrationTable
        table = CalibrationTable.load(path)
        assert table.n_rates == 6
        assert table.snr_grid_db.size == 4

    def test_rejects_nonpositive_snr_step(self, tmp_path):
        with pytest.raises(SystemExit, match="snr-step"):
            main(["calibrate", "--output", str(tmp_path / "c.json"),
                  "--snr-step", "0"])
        with pytest.raises(SystemExit, match="snr-step"):
            main(["calibrate", "--output", str(tmp_path / "c.json"),
                  "--snr-step", "-1"])


class TestCampaign:
    def test_list_enumerates_stock_campaigns(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke-tiny", "paper-matrix", "contention-scale"):
            assert name in out
        assert "campaigns registered" in out

    def test_unknown_campaign_fails_cleanly(self, capsys):
        assert main(["campaign", "run", "nope"]) == 2
        assert "unknown campaign" in capsys.readouterr().err
        assert main(["campaign", "status", "nope"]) == 2
        assert main(["campaign", "report", "nope"]) == 2
        assert main(["campaign", "verify", "nope"]) == 2
        assert main(["campaign", "chaos", "nope"]) == 2

    def test_bad_shard_spec_fails_cleanly(self, tmp_path, capsys):
        assert main(["campaign", "run", "smoke-tiny",
                     "--cache-dir", str(tmp_path),
                     "--shard", "5/2"]) == 2
        assert "shard" in capsys.readouterr().err

    def test_run_status_report_roundtrip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        out_path = str(tmp_path / "summary.json")
        # A limited run leaves scenarios pending: partial exit code 3.
        assert main(["campaign", "run", "smoke-tiny",
                     "--cache-dir", cache, "--limit", "3"]) == 3
        out = capsys.readouterr().out
        assert "3/8 scenarios checkpointed" in out
        assert main(["campaign", "status", "smoke-tiny",
                     "--cache-dir", cache]) == 0
        assert "3/8 complete (5 pending)" in capsys.readouterr().out
        assert main(["campaign", "run", "smoke-tiny",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "smoke-tiny",
                     "--cache-dir", cache,
                     "--group-by", "protocol",
                     "--output", out_path]) == 0
        out = capsys.readouterr().out
        assert "8/8 scenarios summarized" in out
        assert "softrate" in out and "rraa" in out
        import json
        summary = json.loads(open(out_path).read())
        assert summary["completed"] == 8

    def test_report_bad_group_by_fails_cleanly(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", "smoke-tiny",
                     "--cache-dir", cache, "--limit", "1"]) == 3
        capsys.readouterr()
        assert main(["campaign", "report", "smoke-tiny",
                     "--cache-dir", cache,
                     "--group-by", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err


def _register_fragile_campaign():
    """A 3-scenario campaign whose x=2 scenario always fails."""
    from repro.campaigns import register_campaign
    from repro.campaigns.matrix import Axis, CampaignMatrix
    from repro.experiments.api import register_experiment

    def run_fragile(x=0, seed=1, replicate=0):
        if x == 2:
            raise RuntimeError("poison x=2")
        return {"value": float(x)}

    try:
        register_experiment(
            "cli-fragile",
            description="CLI test experiment with one poison scenario",
            params={"x": 0, "seed": 1, "replicate": 0})(run_fragile)
    except ValueError:
        pass                                # already registered
    return register_campaign(CampaignMatrix(
        name="cli-fragile-camp", experiment="cli-fragile",
        axes=(Axis("x", (1, 2, 3)),), seed=5))


class TestCampaignResilienceCLI:
    def test_quarantined_run_exits_4_and_verify_reports_it(
            self, tmp_path, capsys):
        _register_fragile_campaign()
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", "cli-fragile-camp",
                     "--cache-dir", cache, "--retries", "0"]) == 4
        captured = capsys.readouterr()
        assert "QUARANTINED" in captured.out
        assert "quarantine.jsonl" in captured.err
        assert main(["campaign", "status", "cli-fragile-camp",
                     "--cache-dir", cache]) == 0
        assert "1 quarantined" in capsys.readouterr().out
        assert main(["campaign", "verify", "cli-fragile-camp",
                     "--cache-dir", cache]) == 1
        out = capsys.readouterr().out
        assert "2/3 valid records" in out
        assert "[active] ExperimentExecutionError" in out
        assert "poison x=2" in out

    def test_verify_clean_store_exits_0(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", "smoke-tiny",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["campaign", "verify", "smoke-tiny",
                     "--cache-dir", cache]) == 0
        assert "8/8 valid records" in capsys.readouterr().out

    def test_verify_flags_corrupt_record(self, tmp_path, capsys):
        from repro.campaigns import CampaignStore, get_campaign
        from repro.campaigns.faults import FaultPlan, FaultSpec

        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", "smoke-tiny",
                     "--cache-dir", cache]) == 0
        store = CampaignStore(get_campaign("smoke-tiny"),
                              cache_dir=cache)
        plan = FaultPlan((FaultSpec("corrupt-record",
                                    scenario_index=0, seed=1),))
        plan.apply_store_faults(store.directory)
        capsys.readouterr()
        from repro.campaigns import CheckpointCorruptionWarning
        with pytest.warns(CheckpointCorruptionWarning):
            assert main(["campaign", "verify", "smoke-tiny",
                         "--cache-dir", cache]) == 1
        out = capsys.readouterr().out
        assert "7/8 valid records" in out
        assert "1 corrupt line(s)" in out and "[crc]" in out

    def test_chaos_rejects_unknown_fault_kind(self, capsys):
        assert main(["campaign", "chaos", "smoke-tiny",
                     "--faults", "meteor"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_chaos_smoke_single_fault(self, tmp_path, capsys):
        assert main(["campaign", "chaos", "smoke-tiny",
                     "--faults", "truncate-file", "--jobs", "1",
                     "--cache-root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "truncate-file: PASS" in out
        assert "chaos wall PASSED" in out


class TestCampaignServiceCLI:
    """serve/submit/results verbs + the not-started status fix."""

    def test_status_not_started_is_clean(self, tmp_path, capsys):
        import os
        cache = str(tmp_path / "cache")
        assert main(["campaign", "status", "smoke-tiny",
                     "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "not started" in out and "0/8" in out
        assert "campaign submit" in out
        # reporting on nothing must not create anything
        assert not os.path.exists(cache)

    def test_run_with_columnar_store(self, tmp_path, capsys):
        from repro.campaigns import CampaignStore, get_campaign
        from repro.campaigns.colstore import chunk_paths

        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", "smoke-tiny",
                     "--cache-dir", cache, "--store", "columnar"]) == 0
        store = CampaignStore(get_campaign("smoke-tiny"),
                              cache_dir=cache)
        assert chunk_paths(store.directory), "no chunks sealed"
        capsys.readouterr()
        # report and verify read chunks through the union scan
        assert main(["campaign", "report", "smoke-tiny",
                     "--cache-dir", cache]) == 0
        assert "8/8 scenarios summarized" in capsys.readouterr().out
        assert main(["campaign", "verify", "smoke-tiny",
                     "--cache-dir", cache]) == 0
        assert "8/8 valid records" in capsys.readouterr().out

    def test_submit_without_server_exits_1(self, tmp_path, capsys):
        assert main(["campaign", "submit", "smoke-tiny",
                     "--cache-dir", str(tmp_path)]) == 1
        assert "no campaign service" in capsys.readouterr().err

    def test_results_without_server_reads_local_store(self, tmp_path,
                                                      capsys):
        cache = str(tmp_path / "cache")
        # nothing run anywhere: not-started counts as partial (3)
        assert main(["campaign", "results", "smoke-tiny",
                     "--cache-dir", cache]) == 3
        assert "(not-started)" in capsys.readouterr().out
        assert main(["campaign", "results", "nope",
                     "--cache-dir", cache]) == 2
        assert "unknown campaign" in capsys.readouterr().err
        assert main(["campaign", "run", "smoke-tiny",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["campaign", "results", "smoke-tiny",
                     "--cache-dir", cache]) == 0
        assert "8/8 scenarios (complete)" in capsys.readouterr().out

    @staticmethod
    def _serve(cache):
        """A quiet in-process server for CLI round-trip tests."""
        import os
        import threading
        import time
        from contextlib import contextmanager

        from repro.campaigns.service import CampaignService, request

        @contextmanager
        def running():
            service = CampaignService(cache_dir=cache, port=0,
                                      jobs=1, retry_backoff_s=0.001,
                                      chunk_records=2)
            thread = threading.Thread(target=service.serve,
                                      daemon=True)
            thread.start()
            deadline = time.time() + 30.0
            while not os.path.exists(service.endpoint_path):
                assert thread.is_alive() and time.time() < deadline
                time.sleep(0.01)
            try:
                yield service
            finally:
                try:
                    request(cache, {"op": "shutdown"})
                except Exception:
                    pass
                thread.join(timeout=60.0)

        return running()

    def test_submit_exit_code_contract(self, tmp_path, capsys):
        _register_fragile_campaign()
        cache = str(tmp_path / "cache")
        with self._serve(cache):
            assert main(["campaign", "submit", "nope",
                         "--cache-dir", cache]) == 2
            assert "unknown campaign" in capsys.readouterr().err

            assert main(["campaign", "submit", "smoke-tiny",
                         "--cache-dir", cache, "--limit", "3",
                         "--poll", "0.02"]) == 3
            out = capsys.readouterr().out
            assert "queued" in out and "partial (3/8" in out

            assert main(["campaign", "submit", "smoke-tiny",
                         "--cache-dir", cache, "--poll", "0.02"]) == 0
            assert "complete (8/8" in capsys.readouterr().out

            assert main(["campaign", "submit", "cli-fragile-camp",
                         "--cache-dir", cache, "--retries", "0",
                         "--poll", "0.02"]) == 4
            captured = capsys.readouterr()
            assert "quarantined" in captured.out
            assert "campaign verify" in captured.err

            assert main(["campaign", "results", "smoke-tiny",
                         "--cache-dir", cache]) == 0
            assert "8/8 scenarios (complete)" \
                in capsys.readouterr().out

    def test_submit_no_wait_returns_immediately(self, tmp_path,
                                                capsys):
        from repro.campaigns.service import wait_for_submission

        cache = str(tmp_path / "cache")
        with self._serve(cache):
            assert main(["campaign", "submit", "smoke-tiny",
                         "--cache-dir", cache, "--no-wait"]) == 0
            out = capsys.readouterr().out
            assert "queued" in out and "complete" not in out
            # the server still finishes it in the background
            final = wait_for_submission(cache, "sub-00001",
                                        poll_s=0.05, timeout=120.0)
            assert final["state"] == "complete"

    def test_serve_once_drains_queue_and_exits(self, tmp_path,
                                               capsys):
        import threading

        cache = str(tmp_path / "cache")
        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(
                main(["campaign", "serve", "--cache-dir", cache,
                      "--once", "--chunk-records", "2"])))
        thread.start()
        import os
        import time
        endpoint = os.path.join(cache, "service", "endpoint.json")
        deadline = time.time() + 30.0
        while not os.path.exists(endpoint):
            assert thread.is_alive() and time.time() < deadline
            time.sleep(0.01)
        code = main(["campaign", "submit", "smoke-tiny",
                     "--cache-dir", cache, "--poll", "0.02"])
        thread.join(timeout=120.0)
        assert not thread.is_alive() and codes == [0]
        assert code == 0
        out = capsys.readouterr().out
        assert "listening" in out and "service stopped" in out
