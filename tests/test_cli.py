"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestRates:
    def test_prints_table(self, capsys):
        assert main(["rates"]) == 0
        out = capsys.readouterr().out
        assert "QPSK" in out and "18 Mbps" in out
        assert "long_range" in out


class TestTraceRoundtrip:
    def test_generate_and_inspect(self, tmp_path, capsys):
        path = str(tmp_path / "link.npz")
        assert main(["trace", path, "--duration", "1.0",
                     "--snr", "14"]) == 0
        out = capsys.readouterr().out
        assert "200 slots" in out
        assert main(["inspect", path]) == 0
        out = capsys.readouterr().out
        assert "BPSK 1/2" in out
        assert "delivered" in out

    def test_walking_flag(self, tmp_path, capsys):
        path = str(tmp_path / "walk.npz")
        assert main(["trace", path, "--duration", "1.0",
                     "--walking"]) == 0
        from repro.traces.format import LinkTrace
        trace = LinkTrace.load(path)
        assert trace.n_slots == 200


class TestThresholds:
    def test_arq(self, capsys):
        assert main(["thresholds"]) == 0
        out = capsys.readouterr().out
        assert "QPSK 3/4" in out

    def test_harq_differs(self, capsys):
        main(["thresholds", "--recovery", "arq"])
        arq = capsys.readouterr().out
        main(["thresholds", "--recovery", "harq"])
        harq = capsys.readouterr().out
        assert arq != harq


class TestSimulate:
    def test_short_softrate_run(self, capsys):
        assert main(["simulate", "--duration", "1.0",
                     "--protocol", "softrate"]) == 0
        out = capsys.readouterr().out
        assert "softrate:" in out
        assert "Mbps" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
