#!/usr/bin/env python
"""Regenerate the golden PHY, MAC and mesh regression fixtures.

The PHY goldens (``phy_ber_points.json``) pin fig07/fig08-style BER
points at fixed seeds: small, fully deterministic Monte Carlo runs
whose per-frame BER estimates, ground truths, and SNR estimates are
committed as JSON.  The MAC goldens (``mac_throughput.json``) pin
per-protocol throughput points of a small fixed contention scenario
under both PHY backends — delivered frame counts, aggregate Mbps, and
an exact frame-log digest.  The mesh goldens (``mesh_chain.json``)
do the same for a fixed 2-hop relay chain.  The regression test
(``tests/test_golden_regression.py``) re-runs the same configurations
and asserts the numbers still match within a tight tolerance, so a
PHY *or MAC* refactor cannot silently shift the paper's curves.

Run from the repository root (only needed when a change is *supposed*
to alter PHY numerics — say so in the commit message):

    PYTHONPATH=src python tests/golden/regenerate.py

The configuration of each golden lives inside the fixture file itself;
the test replays whatever config it finds, so regenerating with a new
config here never desynchronises the two.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))
GOLDEN_PATH = os.path.join(GOLDEN_DIR, "phy_ber_points.json")
MAC_GOLDEN_PATH = os.path.join(GOLDEN_DIR, "mac_throughput.json")

#: The pinned configurations.  Small enough to run in seconds, broad
#: enough to cover every modulation, both puncturing rates, padded
#: tails, and (fig08) fading channels with per-frame noise estimates.
CONFIGS = {
    "fig07": {
        "seed": 7,
        "payload_bits": 368,
        "frames_per_point": 2,
        "snr_grid_db": [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0],
        "rate_indices": [0, 1, 2, 3, 4, 5],
    },
    "fig08": {
        "seed": 8,
        "payload_bits": 368,
        "n_frames": 8,
        "rate_index": 3,
    },
}


def compute_fig07(config):
    from repro.experiments.fig07_static import run_fig7

    data = run_fig7(seed=config["seed"],
                    payload_bits=config["payload_bits"],
                    frames_per_point=config["frames_per_point"],
                    snr_grid_db=np.asarray(config["snr_grid_db"]),
                    rate_indices=list(config["rate_indices"]))
    return {
        "estimates": data.estimates.tolist(),
        "truths": data.truths.tolist(),
        "snr_estimates": data.snr_estimates.tolist(),
        "error_counts": data.error_counts.astype(int).tolist(),
        "rate_indices": data.rate_indices.astype(int).tolist(),
    }


def compute_fig08(config):
    from repro.experiments.fig08_mobile import run_fig8

    data = run_fig8(seed=config["seed"],
                    payload_bits=config["payload_bits"],
                    n_frames=config["n_frames"],
                    rate_index=config["rate_index"])
    out = {}
    for label in sorted(data.estimates):
        out[label] = {
            "estimates": data.estimates[label].tolist(),
            "truths": data.truths[label].tolist(),
            "snrs": data.snrs[label].tolist(),
        }
    return out


COMPUTERS = {"fig07": compute_fig07, "fig08": compute_fig08}

#: The pinned MAC-level contention scenario: two clients flood the AP
#: with small frames for 20 ms over a static short-range channel —
#: the cheapest configuration that exercises contention, backoff and
#: rate adaptation under *both* PHY backends (the full backend decodes
#: every frame bit-exactly, so the run must stay tiny).
MAC_CONFIG = {
    "seed": 3,
    "trace_seed": 42,
    "payload_bits": 368,
    "duration": 0.02,
    "trace_duration": 0.12,
    "n_clients": 2,
    "mean_snr_db": 14.0,
    "protocols": ["softrate", "rraa", "samplerate"],
    "backends": ["surrogate", "full"],
    "engines": ["event", "slot"],
}


def compute_mac_point(config, backend, protocol, engine="event"):
    """One (backend, protocol, engine) point of the MAC golden."""
    from repro.analysis.metrics import frame_log_digest
    from repro.experiments.common import protocol_factory
    from repro.sim.slotmac import run_slot_contention
    from repro.sim.topology import run_mac_contention
    from repro.traces.workloads import static_short_range_traces

    traces = static_short_range_traces(
        config["n_clients"], duration=config["trace_duration"],
        mean_snr_db=config["mean_snr_db"], seed=config["trace_seed"],
        payload_bits=config["payload_bits"])
    run_contention = run_mac_contention if engine == "event" \
        else run_slot_contention
    result = run_contention(
        traces, protocol_factory(protocol),
        n_clients=config["n_clients"], duration=config["duration"],
        payload_bits=config["payload_bits"], seed=config["seed"],
        phy_backend=backend)
    return {
        "per_client_frames": list(result.per_client_frames),
        "aggregate_mbps": result.aggregate_mbps,
        "n_attempts": sum(len(log)
                          for log in result.frame_logs.values()),
        "frame_log_digest": frame_log_digest(result.frame_logs),
    }


def compute_mac(config):
    points = {}
    for backend in config["backends"]:
        for protocol in config["protocols"]:
            for engine in config.get("engines", ["event"]):
                print(f"  mac: {backend}/{protocol}/{engine} ...",
                      flush=True)
                points[f"{backend}/{protocol}/{engine}"] = \
                    compute_mac_point(config, backend, protocol,
                                      engine)
    return points


#: The pinned mesh scenario: a static client pushing small frames over
#: a fixed 2-hop relay chain (client -> AP1 -> AP2 sink) for 20 ms.
#: Every hop runs its own rate adapter, so this pins the geometry ->
#: SNR -> per-hop SoftPHY feedback path end to end under both PHY
#: backends.
MESH_CONFIG = {
    "seed": 5,
    "payload_bits": 368,
    "duration": 0.02,
    "n_relays": 2,
    "spacing_m": 9.0,
    "protocols": ["softrate", "rraa"],
    "backends": ["surrogate", "full"],
}


def compute_mesh_point(config, backend, protocol):
    """One (backend, protocol) point of the mesh relay-chain golden."""
    from repro.analysis.metrics import frame_log_digest
    from repro.experiments.common import protocol_factory
    from repro.sim.mesh import run_mesh_scenario

    result = run_mesh_scenario(
        protocol_factory(protocol), duration=config["duration"],
        n_relays=config["n_relays"], spacing_m=config["spacing_m"],
        payload_bits=config["payload_bits"], seed=config["seed"],
        phy_backend=backend)
    return {
        "originated": result.originated,
        "delivered": len(result.delivered),
        "hop_counts": sorted(hops for _, hops in result.delivered),
        "n_attempts": sum(len(log)
                          for log in result.frame_logs.values()),
        "goodput_mbps": result.goodput_mbps,
        "frame_log_digest": frame_log_digest(result.frame_logs),
    }


def compute_mesh(config):
    points = {}
    for backend in config["backends"]:
        for protocol in config["protocols"]:
            print(f"  mesh: {backend}/{protocol} ...", flush=True)
            points[f"{backend}/{protocol}"] = \
                compute_mesh_point(config, backend, protocol)
    return points


MESH_GOLDEN_PATH = os.path.join(GOLDEN_DIR, "mesh_chain.json")

#: The pinned video QoE scenario: a tiny generated GoP workload
#: streamed under both schemes over the fig16-style fading link —
#: the rateless-over-PPR vs plain-ARQ comparison the ``video``
#: experiment ships, under both PHY backends.  The per-frame decode-
#: time digest is exact, so any drift in the fountain codec, the
#: salvage rule, or the streaming loop shows up immediately.
VIDEO_CONFIG = {
    "seed": 1,
    "workload": "generated",
    "video_duration": 0.8,
    "video_bitrate_bps": 1.2e5,
    "mean_snr_db": 8.0,
    "backends": ["surrogate", "full"],
}


def compute_video_point(config, backend):
    """One backend's point of the video QoE golden."""
    from repro.experiments.video import run_video

    metrics = run_video(
        workload=config["workload"],
        video_duration=config["video_duration"],
        video_bitrate_bps=config["video_bitrate_bps"],
        mean_snr_db=config["mean_snr_db"], seed=config["seed"],
        phy_backend=backend)
    return {key: metrics[key] for key in sorted(metrics)}


def compute_video(config):
    points = {}
    for backend in config["backends"]:
        print(f"  video: {backend} ...", flush=True)
        points[backend] = compute_video_point(config, backend)
    return points


VIDEO_GOLDEN_PATH = os.path.join(GOLDEN_DIR, "video_qoe.json")


def main() -> int:
    goldens = {}
    for name, config in CONFIGS.items():
        print(f"computing {name} golden ...", flush=True)
        goldens[name] = {"config": config,
                         "arrays": COMPUTERS[name](config)}
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(goldens, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")
    print("computing mac golden ...", flush=True)
    mac = {"config": MAC_CONFIG, "points": compute_mac(MAC_CONFIG)}
    with open(MAC_GOLDEN_PATH, "w") as fh:
        json.dump(mac, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {MAC_GOLDEN_PATH}")
    print("computing mesh golden ...", flush=True)
    mesh = {"config": MESH_CONFIG, "points": compute_mesh(MESH_CONFIG)}
    with open(MESH_GOLDEN_PATH, "w") as fh:
        json.dump(mesh, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {MESH_GOLDEN_PATH}")
    print("computing video golden ...", flush=True)
    video = {"config": VIDEO_CONFIG,
             "points": compute_video(VIDEO_CONFIG)}
    with open(VIDEO_GOLDEN_PATH, "w") as fh:
        json.dump(video, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {VIDEO_GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
