#!/usr/bin/env python
"""Regenerate the golden PHY regression fixtures.

The goldens pin fig07/fig08-style BER points at fixed seeds: small,
fully deterministic Monte Carlo runs whose per-frame BER estimates,
ground truths, and SNR estimates are committed as JSON.  The
regression test (``tests/test_golden_regression.py``) re-runs the same
configurations and asserts the numbers still match within a tight
tolerance, so a PHY refactor cannot silently shift the paper's curves.

Run from the repository root (only needed when a change is *supposed*
to alter PHY numerics — say so in the commit message):

    PYTHONPATH=src python tests/golden/regenerate.py

The configuration of each golden lives inside the fixture file itself;
the test replays whatever config it finds, so regenerating with a new
config here never desynchronises the two.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))
GOLDEN_PATH = os.path.join(GOLDEN_DIR, "phy_ber_points.json")

#: The pinned configurations.  Small enough to run in seconds, broad
#: enough to cover every modulation, both puncturing rates, padded
#: tails, and (fig08) fading channels with per-frame noise estimates.
CONFIGS = {
    "fig07": {
        "seed": 7,
        "payload_bits": 368,
        "frames_per_point": 2,
        "snr_grid_db": [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0],
        "rate_indices": [0, 1, 2, 3, 4, 5],
    },
    "fig08": {
        "seed": 8,
        "payload_bits": 368,
        "n_frames": 8,
        "rate_index": 3,
    },
}


def compute_fig07(config):
    from repro.experiments.fig07_static import run_fig7

    data = run_fig7(seed=config["seed"],
                    payload_bits=config["payload_bits"],
                    frames_per_point=config["frames_per_point"],
                    snr_grid_db=np.asarray(config["snr_grid_db"]),
                    rate_indices=list(config["rate_indices"]))
    return {
        "estimates": data.estimates.tolist(),
        "truths": data.truths.tolist(),
        "snr_estimates": data.snr_estimates.tolist(),
        "error_counts": data.error_counts.astype(int).tolist(),
        "rate_indices": data.rate_indices.astype(int).tolist(),
    }


def compute_fig08(config):
    from repro.experiments.fig08_mobile import run_fig8

    data = run_fig8(seed=config["seed"],
                    payload_bits=config["payload_bits"],
                    n_frames=config["n_frames"],
                    rate_index=config["rate_index"])
    out = {}
    for label in sorted(data.estimates):
        out[label] = {
            "estimates": data.estimates[label].tolist(),
            "truths": data.truths[label].tolist(),
            "snrs": data.snrs[label].tolist(),
        }
    return out


COMPUTERS = {"fig07": compute_fig07, "fig08": compute_fig08}


def main() -> int:
    goldens = {}
    for name, config in CONFIGS.items():
        print(f"computing {name} golden ...", flush=True)
        goldens[name] = {"config": config,
                         "arrays": COMPUTERS[name](config)}
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(goldens, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
