"""Chaos wall: every fault class recovers to byte-identical output.

Each test injects one fault class through :class:`FaultPlan`, runs the
campaign (supervised where the fault kills or wedges workers), resumes
fault-free, and asserts the resumed summary is byte-for-byte identical
to a never-faulted reference run.  Process faults (crash/hang) use a
real worker pool with short watchdog deadlines, so these are the
slowest tests in the campaign suite — keep the matrix tiny.
"""

import pytest

from repro.campaigns import (CampaignError, CampaignRunner,
                             CampaignStore,
                             CheckpointCorruptionWarning, FaultPlan,
                             FaultSpec, chaos_wall)
from repro.campaigns.matrix import Axis, CampaignMatrix

MATRIX = CampaignMatrix(
    name="chaos-mini", experiment="camp-fast",
    axes=(Axis("x", (1, 2, 3)), Axis("y", (0.5, 1.5))), seed=42)

FAST = dict(retry_backoff_s=0.001)
SUPERVISED = dict(jobs=2, timeout_s=5.0, retry_backoff_s=0.001)


def _summary(cache_dir):
    store = CampaignStore(MATRIX, cache_dir=str(cache_dir))
    with open(store.summary_path, "rb") as fh:
        return fh.read()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """Fault-free reference summary bytes."""
    cache = tmp_path_factory.mktemp("reference")
    runner = CampaignRunner(cache_dir=str(cache))
    assert runner.run(MATRIX).done
    runner.report(MATRIX)
    return _summary(cache)


def _run_fault_then_resume(cache, plan, reference, **kw):
    """Shared skeleton: faulted run, fault-free resume, byte compare."""
    faulted = CampaignRunner(cache_dir=str(cache), fault_plan=plan,
                             **kw)
    first = faulted.run(MATRIX)
    resumed = CampaignRunner(cache_dir=str(cache), **kw)
    final = resumed.run(MATRIX)
    assert final.done and final.quarantined == 0
    resumed.report(MATRIX)
    assert _summary(cache) == reference
    return first


class TestExecutionFaults:
    def test_persistent_raise_quarantines_then_recovers(
            self, tmp_path, reference):
        plan = FaultPlan((FaultSpec("raise", scenario_index=3,
                                    times=0),))
        first = _run_fault_then_resume(tmp_path, plan, reference,
                                       max_retries=1, **FAST)
        assert first.quarantined == 1 and first.failed
        entries = CampaignStore(
            MATRIX, cache_dir=str(tmp_path)).load_quarantine()
        assert [e["index"] for e in entries] == [3]
        assert entries[0]["attempts"] == 2
        assert "FaultInjectedError" in entries[0]["traceback"]

    def test_transient_raise_retries_to_success(self, tmp_path,
                                                reference):
        plan = FaultPlan((FaultSpec("raise", scenario_index=0,
                                    times=1),))
        runner = CampaignRunner(cache_dir=str(tmp_path),
                                fault_plan=plan, **FAST)
        status = runner.run(MATRIX)
        assert status.done and status.quarantined == 0
        runner.report(MATRIX)
        assert _summary(tmp_path) == reference

    def test_slow_fault_cannot_change_summary(self, tmp_path,
                                              reference):
        plan = FaultPlan((FaultSpec("slow", scenario_index=2,
                                    times=1, delay_s=0.05),))
        runner = CampaignRunner(cache_dir=str(tmp_path),
                                fault_plan=plan, **FAST)
        assert runner.run(MATRIX).done
        runner.report(MATRIX)
        assert _summary(tmp_path) == reference


class TestProcessFaults:
    def test_crash_is_retried_under_supervision(self, tmp_path,
                                                reference):
        plan = FaultPlan((FaultSpec("crash", scenario_index=1,
                                    times=1),))
        runner = CampaignRunner(cache_dir=str(tmp_path),
                                fault_plan=plan, **SUPERVISED)
        status = runner.run(MATRIX)
        assert status.done and status.quarantined == 0
        runner.report(MATRIX)
        assert _summary(tmp_path) == reference

    def test_persistent_crash_quarantines_then_recovers(
            self, tmp_path, reference):
        plan = FaultPlan((FaultSpec("crash", scenario_index=4,
                                    times=0),))
        first = _run_fault_then_resume(tmp_path, plan, reference,
                                       max_retries=1, **SUPERVISED)
        assert first.quarantined == 1
        entries = CampaignStore(
            MATRIX, cache_dir=str(tmp_path)).load_quarantine()
        assert [e["index"] for e in entries] == [4]
        assert entries[0]["kind"] == "crash"

    def test_hang_hits_watchdog_then_succeeds_on_retry(
            self, tmp_path, reference):
        plan = FaultPlan((FaultSpec("hang", scenario_index=5,
                                    times=1, delay_s=60.0),))
        runner = CampaignRunner(cache_dir=str(tmp_path),
                                fault_plan=plan, jobs=2,
                                timeout_s=1.0,
                                retry_backoff_s=0.001)
        status = runner.run(MATRIX)
        assert status.done and status.quarantined == 0
        runner.report(MATRIX)
        assert _summary(tmp_path) == reference

    def test_process_faults_rejected_without_supervision(self):
        plan = FaultPlan((FaultSpec("crash", scenario_index=0),))
        with pytest.raises(CampaignError, match="supervised"):
            CampaignRunner(fault_plan=plan)


class TestStoreFaultRecovery:
    def test_corrupt_record_is_recomputed(self, tmp_path, reference):
        plan = FaultPlan((FaultSpec("corrupt-record",
                                    scenario_index=2, seed=5),))
        with pytest.warns(CheckpointCorruptionWarning,
                          match=r"\[crc\]"):
            _run_fault_then_resume(tmp_path, plan, reference, **FAST)

    def test_truncated_file_is_recomputed(self, tmp_path, reference):
        plan = FaultPlan((FaultSpec("truncate-file", seed=5),))
        _run_fault_then_resume(tmp_path, plan, reference, **FAST)


class TestDeterminism:
    def test_quarantine_listing_is_deterministic(self, tmp_path):
        plan = FaultPlan((FaultSpec("raise", scenario_index=1,
                                    times=0),
                          FaultSpec("raise", scenario_index=4,
                                    times=0)))
        listings = []
        for sub in ("a", "b"):
            cache = tmp_path / sub
            CampaignRunner(cache_dir=str(cache), fault_plan=plan,
                           max_retries=1, **FAST).run(MATRIX)
            listings.append(CampaignStore(
                MATRIX, cache_dir=str(cache)).load_quarantine())
        assert listings[0] == listings[1]
        assert [e["index"] for e in listings[0]] == [1, 4]

    def test_chaos_wall_passes_on_fault_subset(self, tmp_path):
        report = chaos_wall(MATRIX,
                            kinds=("raise", "truncate-file"),
                            jobs=1, timeout_s=30.0,
                            retry_backoff_s=0.001,
                            cache_root=str(tmp_path))
        assert report["passed"]
        by_kind = {r["kind"]: r for r in report["results"]}
        assert set(by_kind) == {"raise", "truncate-file"}
        assert all(r["identical"] and r["resumed_complete"]
                   for r in report["results"])
        # seeded raise plans are quarantine-forcing (times=0)
        assert by_kind["raise"]["quarantined_during_fault"]
