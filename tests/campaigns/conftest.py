"""Shared fixtures for the campaign engine tests.

Registers two tiny throwaway experiments so matrix/runner semantics
can be tested without paying for real simulations:

* ``camp-fast`` — milliseconds per cell, seed-sensitive metrics (the
  serial runner/checkpoint tests).
* ``camp-prop`` — a wide parameter space for hypothesis to draw axes
  from (the expansion property tests).

The determinism wall and the kill-and-resume integration test use the
real ``cell`` experiment instead: they exist to pin the behaviour of
the production path.
"""

import numpy as np

from repro.experiments.api import register_experiment


@register_experiment(
    "camp-fast",
    description="fast deterministic cell for campaign runner tests",
    params={"x": 0, "y": 0.0, "seed": 1, "replicate": 0})
def run_camp_fast(x=0, y=0.0, seed=1, replicate=0):
    """Cheap seed-sensitive metrics (runs in microseconds)."""
    rng = np.random.default_rng(seed)
    return {"value": float(x) + float(y) + float(rng.integers(1000)),
            "seed_echo": float(seed % 1000003)}


@register_experiment(
    "camp-prop",
    description="wide parameter space for matrix property tests",
    params={"a": 0, "b": 0, "c": 0, "d": 0, "seed": 1,
            "replicate": 0})
def run_camp_prop(a=0, b=0, c=0, d=0, seed=1, replicate=0):
    """Never executed by the property tests; expansion only."""
    return {"value": float(a + b + c + d)}
