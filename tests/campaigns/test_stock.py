"""Stock campaign registry invariants."""

import pytest

from repro.campaigns import (campaign_names, get_campaign,
                             list_campaigns, register_campaign)
from repro.campaigns.matrix import Axis, CampaignMatrix
from repro.campaigns.stock import UnknownCampaignError


class TestRegistry:
    def test_stock_names(self):
        assert set(campaign_names()) >= {"smoke-tiny", "paper-matrix",
                                         "contention-scale"}

    def test_unknown_campaign_lists_available(self):
        with pytest.raises(UnknownCampaignError, match="smoke-tiny"):
            get_campaign("nope")

    def test_list_matches_names(self):
        assert [m.name for m in list_campaigns()] == campaign_names()

    def test_reregister_same_definition_is_idempotent(self):
        register_campaign(get_campaign("smoke-tiny"))

    def test_reregister_different_definition_rejected(self):
        with pytest.raises(ValueError, match="different"):
            register_campaign(CampaignMatrix(
                name="smoke-tiny", experiment="cell",
                axes=(Axis("n_clients", (1,)),)))


class TestStockDefinitions:
    def test_all_stock_campaigns_expand(self):
        for matrix in list_campaigns():
            scenarios = matrix.expand()
            assert len(scenarios) == matrix.total_scenarios()
            assert matrix.description

    def test_smoke_tiny_is_eight_scenarios(self):
        assert get_campaign("smoke-tiny").total_scenarios() == 8

    def test_contention_scale_exceeds_one_thousand(self):
        matrix = get_campaign("contention-scale")
        assert matrix.total_scenarios() >= 1000
        assert matrix.base["phy_backend"] == "surrogate"
        n_axis = {a.name: a for a in matrix.axes}["n_clients"]
        assert max(n_axis.values) >= 50

    def test_paper_matrix_covers_all_regimes(self):
        matrix = get_campaign("paper-matrix")
        axes = {a.name: set(a.values) for a in matrix.axes}
        assert axes["channel"] == {"walking", "static", "fading"}
        assert len(axes["protocol"]) >= 5
        assert len(axes["carrier_sense_prob"]) >= 2

    def test_stock_campaigns_are_surrogate_backed(self):
        for matrix in list_campaigns():
            if matrix.name in ("smoke-tiny", "paper-matrix",
                               "contention-scale", "contention-xl"):
                assert matrix.base["phy_backend"] == "surrogate"

    def test_contention_xl_rides_the_slot_engine(self):
        matrix = get_campaign("contention-xl")
        assert matrix.base["mac_engine"] == "slot"
        assert matrix.base["workload"] == "mac"
        n_axis = {a.name: a for a in matrix.axes}["n_clients"]
        assert max(n_axis.values) >= 1000
        assert matrix.total_scenarios() >= 16

    def test_contention_xl_scenarios_expand_runnable(self):
        """Every expanded scenario carries the engine/workload keys a
        worker needs — and the first one actually runs end to end."""
        from repro.experiments.api import execute_task

        matrix = get_campaign("contention-xl")
        scenarios = matrix.expand()
        for scenario in scenarios:
            assert scenario.params["mac_engine"] == "slot"
            assert scenario.params["workload"] == "mac"
        small = dict(scenarios[0].params)
        small["n_clients"] = 3    # keep CI cheap; same code path
        result = execute_task(scenarios[0].experiment,
                              scenarios[0].module, small)
        assert result["n_frames"] > 0
