"""The campaign determinism wall.

Same campaign seed => identical per-scenario results — including the
exact frame-log digest, i.e. every MAC transmission at every
timestamp — no matter how the campaign is executed: serially, over a
process pool, or split across any number of shard invocations.  This
is the property that makes checkpoints trustworthy (a resumed run
can't diverge from the uninterrupted one) and shards composable.
"""

import pytest

from repro.campaigns import CampaignRunner, CampaignStore
from repro.campaigns.matrix import Axis, CampaignMatrix

#: A real-cell matrix small enough for four full executions: 6 tiny
#: contention sims on the surrogate backend, sharing one trace pool.
MATRIX = CampaignMatrix(
    name="det-wall", experiment="cell",
    axes=(Axis("protocol", ("softrate", "rraa")),
          Axis("mean_snr_db", (12.0, 22.0))),
    base={"channel": "static", "duration": 0.04, "n_clients": 2,
          "trace_pool": 1, "phy_backend": "surrogate"},
    seed=77)


def _metrics_by_id(cache_dir):
    store = CampaignStore(MATRIX, cache_dir=str(cache_dir))
    return {sid: record["metrics"]
            for sid, record in store.load_records().items()}


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    cache = tmp_path_factory.mktemp("serial")
    runner = CampaignRunner(jobs=1, cache_dir=str(cache))
    assert runner.run(MATRIX).done
    return cache


def _norm(metrics):
    """NaN-tolerant comparison form (NaN == NaN when comparing)."""
    import math
    return {k: None if isinstance(v, float) and math.isnan(v) else v
            for k, v in metrics.items()}


def _assert_identical(metrics_a, metrics_b):
    assert set(metrics_a) == set(metrics_b)
    for sid in metrics_a:
        assert _norm(metrics_a[sid]) == _norm(metrics_b[sid]), \
            f"scenario {sid} diverged"


def test_pool_matches_serial(serial_run, tmp_path):
    runner = CampaignRunner(jobs=2, cache_dir=str(tmp_path))
    assert runner.run(MATRIX).done
    _assert_identical(_metrics_by_id(serial_run),
                      _metrics_by_id(tmp_path))


@pytest.mark.parametrize("shards", [2, 3])
def test_sharded_matches_serial(serial_run, tmp_path, shards):
    for index in range(shards):
        CampaignRunner(jobs=1, cache_dir=str(tmp_path),
                       shard=(index, shards)).run(MATRIX)
    _assert_identical(_metrics_by_id(serial_run),
                      _metrics_by_id(tmp_path))


def test_frame_logs_pinned_exactly(serial_run, tmp_path):
    """The digest metric really is the frame log: rerunning one
    scenario in-process reproduces the checkpointed digest."""
    from repro.experiments.api import execute_task

    store = CampaignStore(MATRIX, cache_dir=str(serial_run))
    scenario = MATRIX.expand()[0]
    record = store.load_records()[scenario.scenario_id]
    fresh = execute_task(scenario.experiment, scenario.module,
                         scenario.params)
    assert fresh["frame_log_digest"] == \
        record["metrics"]["frame_log_digest"]
    assert fresh["mbps"] == record["metrics"]["mbps"]


def test_reports_byte_identical_across_execution_modes(
        serial_run, tmp_path):
    runner = CampaignRunner(jobs=2, cache_dir=str(tmp_path))
    runner.run(MATRIX)
    a = CampaignRunner(cache_dir=str(serial_run)).report(
        MATRIX, write=False)
    b = runner.report(MATRIX, write=False)
    import json
    assert json.dumps(a, sort_keys=True) == \
        json.dumps(b, sort_keys=True)
