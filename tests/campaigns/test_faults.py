"""Unit tests for the deterministic fault-injection harness."""

import json
import os

import pytest

from repro.campaigns.checkpoint import CampaignStore, make_record
from repro.campaigns.faults import (EXECUTION_KINDS, FAULT_KINDS,
                                    PROCESS_KINDS, STORE_KINDS,
                                    FaultInjectedError, FaultPlan,
                                    FaultSpec)
from repro.campaigns.matrix import Axis, CampaignMatrix


def _matrix():
    return CampaignMatrix(name="faults", experiment="camp-fast",
                          axes=(Axis("x", (1, 2, 3)),), seed=3)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("segfault", scenario_index=0)

    def test_execution_kinds_need_target(self):
        for kind in sorted(EXECUTION_KINDS):
            with pytest.raises(ValueError, match="scenario_index"):
                FaultSpec(kind)
        FaultSpec("truncate-file")           # file fault needs none

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec("raise", scenario_index=0, times=-1)

    def test_fires_semantics(self):
        once = FaultSpec("raise", scenario_index=0, times=1)
        assert once.fires(0) and not once.fires(1)
        always = FaultSpec("raise", scenario_index=0, times=0)
        assert all(always.fires(a) for a in range(5))

    def test_raise_fault_raises(self):
        spec = FaultSpec("raise", scenario_index=2, times=1)
        with pytest.raises(FaultInjectedError, match="#2"):
            spec.fire(0)
        spec.fire(1)                         # spent: no-op

    def test_slow_fault_sleeps_then_returns(self):
        FaultSpec("slow", scenario_index=0, delay_s=0.0).fire(0)

    def test_kind_partition_is_complete(self):
        assert EXECUTION_KINDS | STORE_KINDS == set(FAULT_KINDS)
        assert not EXECUTION_KINDS & STORE_KINDS
        assert PROCESS_KINDS <= EXECUTION_KINDS


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(100, seed=9)
        b = FaultPlan.seeded(100, seed=9)
        assert a == b
        assert a != FaultPlan.seeded(100, seed=10)

    def test_seeded_targets_in_range(self):
        plan = FaultPlan.seeded(7, seed=1)
        for spec in plan.faults:
            if spec.kind in EXECUTION_KINDS:
                assert 0 <= spec.scenario_index < 7

    def test_seeded_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(0)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.seeded(5, kinds=("meteor",))

    def test_transient_kinds(self):
        plan = FaultPlan.seeded(5, seed=0)
        by_kind = {s.kind: s for s in plan.faults}
        assert by_kind["slow"].times == 1
        assert by_kind["hang"].times == 1
        assert by_kind["raise"].times == 0   # quarantine-forcing

    def test_execution_fault_lookup(self):
        plan = FaultPlan((FaultSpec("raise", scenario_index=4),))
        assert plan.execution_fault(4).kind == "raise"
        assert plan.execution_fault(0) is None

    def test_requires_supervision(self):
        assert FaultPlan((FaultSpec("crash", 1),)).requires_supervision
        assert FaultPlan((FaultSpec("hang", 1),)).requires_supervision
        assert not FaultPlan(
            (FaultSpec("raise", 1),)).requires_supervision
        assert not FaultPlan(
            (FaultSpec("truncate-file"),)).requires_supervision


def _store_with_records(tmp_path):
    matrix = _matrix()
    store = CampaignStore(matrix, cache_dir=str(tmp_path))
    scenarios = matrix.expand()
    with store.writer("0of1") as out:
        for s in scenarios:
            out.append(make_record(s, {"value": 1.0 + s.index}, 0.1))
    return matrix, store, scenarios


class TestStoreFaults:
    def test_corrupt_record_keeps_json_valid_but_breaks_crc(
            self, tmp_path):
        matrix, store, scenarios = _store_with_records(tmp_path)
        plan = FaultPlan((FaultSpec("corrupt-record",
                                    scenario_index=1, seed=7),))
        notes = plan.apply_store_faults(store.directory)
        assert "flipped byte" in notes[0]
        path = os.path.join(store.directory, "results-0of1.jsonl")
        with open(path) as fh:
            lines = [ln for ln in fh if ln.strip()]
        for line in lines:
            json.loads(line)                 # all still valid JSON
        records, issues = store.scan()
        assert [i.kind for i in issues] == ["crc"]
        assert scenarios[1].scenario_id not in records
        assert len(records) == 2

    def test_corrupt_record_missing_target_is_noop(self, tmp_path):
        matrix, store, _ = _store_with_records(tmp_path)
        plan = FaultPlan((FaultSpec("corrupt-record",
                                    scenario_index=99),))
        notes = plan.apply_store_faults(store.directory)
        assert "nothing corrupted" in notes[0]
        _, issues = store.scan()
        assert issues == []

    def test_truncate_file_leaves_torn_tail(self, tmp_path):
        matrix, store, scenarios = _store_with_records(tmp_path)
        plan = FaultPlan((FaultSpec("truncate-file", seed=3),))
        notes = plan.apply_store_faults(store.directory)
        assert "torn tail" in notes[0]
        records, issues = store.scan()
        assert len(records) == 2             # one record lost
        assert [i.kind for i in issues] == ["torn"]

    def test_truncate_empty_store_is_noop(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        store.ensure()
        plan = FaultPlan((FaultSpec("truncate-file"),))
        assert "nothing truncated" in \
            plan.apply_store_faults(store.directory)[0]

    def test_store_faults_deterministic(self, tmp_path):
        plan = FaultPlan((FaultSpec("corrupt-record",
                                    scenario_index=0, seed=11),))
        damage = []
        for sub in ("a", "b"):
            matrix, store, _ = _store_with_records(tmp_path / sub)
            plan.apply_store_faults(store.directory)
            path = os.path.join(store.directory,
                                "results-0of1.jsonl")
            with open(path, "rb") as fh:
                damage.append(fh.read())
        assert damage[0] == damage[1]
