"""Checkpoint store: durability, torn writes, dedupe, integrity."""

import json
import math
import os

import pytest

from repro.campaigns.checkpoint import (CampaignStore,
                                        CheckpointCorruptionWarning,
                                        make_record, record_crc)
from repro.campaigns.matrix import Axis, CampaignMatrix


def _matrix():
    return CampaignMatrix(name="ck", experiment="camp-fast",
                          axes=(Axis("x", (1, 2, 3)),), seed=1)


class TestStoreBasics:
    def test_manifest_written_once(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        store.ensure()
        with open(store.manifest_path) as fh:
            manifest = json.load(fh)
        assert manifest["name"] == "ck"
        assert manifest["total_scenarios"] == 3
        assert manifest["digest"] == _matrix().digest()
        before = os.path.getmtime(store.manifest_path)
        store.ensure()
        assert os.path.getmtime(store.manifest_path) == before

    def test_directory_keyed_by_digest(self, tmp_path):
        a = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        edited = CampaignMatrix(name="ck", experiment="camp-fast",
                                axes=(Axis("x", (1, 2, 4)),), seed=1)
        b = CampaignStore(edited, cache_dir=str(tmp_path))
        assert a.directory != b.directory

    def test_empty_store_reads_cleanly(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        assert store.load_records() == {}
        assert store.completed_ids() == set()


class TestRecords:
    def test_roundtrip_with_nan_metrics(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        scenario = _matrix().expand()[0]
        with store.writer("0of1") as out:
            out.append(make_record(
                scenario, {"mbps": 1.5, "conv": float("nan")}, 0.2))
        record = store.load_records()[scenario.scenario_id]
        assert record["metrics"]["mbps"] == 1.5
        assert math.isnan(record["metrics"]["conv"])
        assert record["index"] == scenario.index
        assert record["seed"] == scenario.seed

    def test_torn_trailing_line_skipped(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        scenarios = _matrix().expand()
        with store.writer("0of1") as out:
            out.append(make_record(scenarios[0], {"m": 1.0}, 0.1))
        path = os.path.join(store.directory, "results-0of1.jsonl")
        with open(path, "a") as fh:
            fh.write('{"scenario_id": "deadbeef", "metr')   # killed
        assert store.completed_ids() == {scenarios[0].scenario_id}

    def test_append_after_torn_line_preserves_new_record(self,
                                                         tmp_path):
        """Resuming over a torn trailing line must not let the
        fragment swallow the first record the resumed run appends."""
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        scenarios = _matrix().expand()
        with store.writer("0of1") as out:
            out.append(make_record(scenarios[0], {"m": 1.0}, 0.1))
        path = os.path.join(store.directory, "results-0of1.jsonl")
        with open(path, "a") as fh:
            fh.write('{"scenario_id": "dead')       # killed mid-write
        with store.writer("0of1") as out:           # resume
            out.append(make_record(scenarios[1], {"m": 2.0}, 0.1))
        assert store.completed_ids() == {scenarios[0].scenario_id,
                                         scenarios[1].scenario_id}

    def test_duplicate_ids_deduped_across_files(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        scenario = _matrix().expand()[0]
        for label in ("0of2", "1of2"):
            with store.writer(label) as out:
                out.append(make_record(scenario, {"m": 2.0}, 0.1))
        assert len(store.load_records()) == 1

    def test_append_survives_reopen(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        scenarios = _matrix().expand()
        with store.writer("0of1") as out:
            out.append(make_record(scenarios[0], {"m": 1.0}, 0.1))
        with store.writer("0of1") as out:
            out.append(make_record(scenarios[1], {"m": 2.0}, 0.1))
        assert len(store.load_records()) == 2

    def test_reopen_truncates_torn_tail(self, tmp_path):
        """A torn trailing fragment is removed (not newline-sealed) on
        the next writer open, so it never becomes permanent interior
        garbage that warns on every later read."""
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        scenarios = _matrix().expand()
        with store.writer("0of1") as out:
            out.append(make_record(scenarios[0], {"m": 1.0}, 0.1))
        path = os.path.join(store.directory, "results-0of1.jsonl")
        with open(path, "a") as fh:
            fh.write('{"scenario_id": "dead')
        with store.writer("0of1") as out:
            out.append(make_record(scenarios[1], {"m": 2.0}, 0.1))
        _, issues = store.scan()
        assert issues == []
        with open(path) as fh:
            assert "dead" not in fh.read()


def _write_three(tmp_path):
    store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
    scenarios = _matrix().expand()
    with store.writer("0of1") as out:
        for s in scenarios:
            out.append(make_record(s, {"m": float(s.index)}, 0.1))
    return store, scenarios, os.path.join(store.directory,
                                          "results-0of1.jsonl")


def _rewrite_line(path, line_no, new_text):
    with open(path) as fh:
        lines = fh.readlines()
    lines[line_no - 1] = new_text
    with open(path, "w") as fh:
        fh.writelines(lines)


class TestIntegrity:
    """Satellite: corrupt interior lines skip-and-warn, never crash."""

    def test_interior_garbage_line_skipped_with_warning(self,
                                                        tmp_path):
        store, scenarios, path = _write_three(tmp_path)
        _rewrite_line(path, 2, "@@not json at all@@\n")
        with pytest.warns(CheckpointCorruptionWarning,
                          match=r"\[json\]"):
            records = store.load_records()
        assert set(records) == {scenarios[0].scenario_id,
                                scenarios[2].scenario_id}

    def test_non_dict_line_skipped_as_schema(self, tmp_path):
        store, scenarios, path = _write_three(tmp_path)
        _rewrite_line(path, 1, "[1, 2, 3]\n")
        with pytest.warns(CheckpointCorruptionWarning,
                          match=r"\[schema\]"):
            records = store.load_records()
        assert len(records) == 2

    def test_missing_key_and_bad_metrics_are_schema_issues(
            self, tmp_path):
        store, scenarios, path = _write_three(tmp_path)
        record = make_record(scenarios[0], {"m": 0.0}, 0.1)
        del record["metrics"]
        _rewrite_line(path, 1, json.dumps(record) + "\n")
        bad = make_record(scenarios[1], {"m": 1.0}, 0.1)
        bad["metrics"] = "oops"
        _rewrite_line(path, 2, json.dumps(bad) + "\n")
        _, issues = store.scan()                # scan itself is quiet
        assert [i.kind for i in issues] == ["schema", "schema"]
        with pytest.warns(CheckpointCorruptionWarning,
                          match="2 corrupt"):
            records = store.load_records()
        assert len(records) == 1

    def test_crc_tamper_detected(self, tmp_path):
        store, scenarios, path = _write_three(tmp_path)
        with open(path) as fh:
            lines = fh.readlines()
        tampered = json.loads(lines[1])
        tampered["metrics"]["m"] += 1.0        # silent bit-flip
        _rewrite_line(path, 2, json.dumps(tampered) + "\n")
        with pytest.warns(CheckpointCorruptionWarning,
                          match=r"\[crc\]"):
            records = store.load_records()
        assert scenarios[1].scenario_id not in records

    def test_legacy_record_without_crc_accepted(self, tmp_path):
        store, scenarios, path = _write_three(tmp_path)
        legacy = json.loads(open(path).readline())
        del legacy["crc"]
        _rewrite_line(path, 1, json.dumps(legacy) + "\n")
        records, issues = store.scan()
        assert issues == []
        assert len(records) == 3

    def test_record_crc_is_stable_under_key_order(self, tmp_path):
        record = make_record(_matrix().expand()[0], {"m": 1.0}, 0.1)
        shuffled = dict(reversed(list(record.items())))
        assert record_crc(record) == record_crc(shuffled)


class TestQuarantine:
    def test_roundtrip_dedupe_and_sort(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        store.ensure()
        assert store.load_quarantine() == []
        store.append_quarantine({"scenario_id": "b", "index": 2,
                                 "kind": "raise", "attempts": 1})
        store.append_quarantine({"scenario_id": "a", "index": 0,
                                 "kind": "raise", "attempts": 1})
        store.append_quarantine({"scenario_id": "b", "index": 2,
                                 "kind": "crash", "attempts": 3})
        entries = store.load_quarantine()
        assert [e["index"] for e in entries] == [0, 2]
        assert entries[1]["kind"] == "crash"    # keep-last wins
        assert store.quarantined_ids() == {"a", "b"}

    def test_clear_quarantine(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        store.ensure()
        store.append_quarantine({"scenario_id": "a", "index": 0})
        store.clear_quarantine()
        assert store.load_quarantine() == []
        store.clear_quarantine()                # idempotent

    def test_quarantine_tolerates_torn_tail(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        store.ensure()
        store.append_quarantine({"scenario_id": "a", "index": 1})
        with open(store.quarantine_path, "a") as fh:
            fh.write('{"scenario_id": "torn')
        assert [e["index"] for e in store.load_quarantine()] == [1]
