"""Checkpoint store: durability, torn writes, dedupe, manifests."""

import json
import math
import os

from repro.campaigns.checkpoint import CampaignStore, make_record
from repro.campaigns.matrix import Axis, CampaignMatrix


def _matrix():
    return CampaignMatrix(name="ck", experiment="camp-fast",
                          axes=(Axis("x", (1, 2, 3)),), seed=1)


class TestStoreBasics:
    def test_manifest_written_once(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        store.ensure()
        with open(store.manifest_path) as fh:
            manifest = json.load(fh)
        assert manifest["name"] == "ck"
        assert manifest["total_scenarios"] == 3
        assert manifest["digest"] == _matrix().digest()
        before = os.path.getmtime(store.manifest_path)
        store.ensure()
        assert os.path.getmtime(store.manifest_path) == before

    def test_directory_keyed_by_digest(self, tmp_path):
        a = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        edited = CampaignMatrix(name="ck", experiment="camp-fast",
                                axes=(Axis("x", (1, 2, 4)),), seed=1)
        b = CampaignStore(edited, cache_dir=str(tmp_path))
        assert a.directory != b.directory

    def test_empty_store_reads_cleanly(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        assert store.load_records() == {}
        assert store.completed_ids() == set()


class TestRecords:
    def test_roundtrip_with_nan_metrics(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        scenario = _matrix().expand()[0]
        with store.writer("0of1") as out:
            out.append(make_record(
                scenario, {"mbps": 1.5, "conv": float("nan")}, 0.2))
        record = store.load_records()[scenario.scenario_id]
        assert record["metrics"]["mbps"] == 1.5
        assert math.isnan(record["metrics"]["conv"])
        assert record["index"] == scenario.index
        assert record["seed"] == scenario.seed

    def test_torn_trailing_line_skipped(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        scenarios = _matrix().expand()
        with store.writer("0of1") as out:
            out.append(make_record(scenarios[0], {"m": 1.0}, 0.1))
        path = os.path.join(store.directory, "results-0of1.jsonl")
        with open(path, "a") as fh:
            fh.write('{"scenario_id": "deadbeef", "metr')   # killed
        assert store.completed_ids() == {scenarios[0].scenario_id}

    def test_append_after_torn_line_preserves_new_record(self,
                                                         tmp_path):
        """Resuming over a torn trailing line must not let the
        fragment swallow the first record the resumed run appends."""
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        scenarios = _matrix().expand()
        with store.writer("0of1") as out:
            out.append(make_record(scenarios[0], {"m": 1.0}, 0.1))
        path = os.path.join(store.directory, "results-0of1.jsonl")
        with open(path, "a") as fh:
            fh.write('{"scenario_id": "dead')       # killed mid-write
        with store.writer("0of1") as out:           # resume
            out.append(make_record(scenarios[1], {"m": 2.0}, 0.1))
        assert store.completed_ids() == {scenarios[0].scenario_id,
                                         scenarios[1].scenario_id}

    def test_duplicate_ids_deduped_across_files(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        scenario = _matrix().expand()[0]
        for label in ("0of2", "1of2"):
            with store.writer(label) as out:
                out.append(make_record(scenario, {"m": 2.0}, 0.1))
        assert len(store.load_records()) == 1

    def test_append_survives_reopen(self, tmp_path):
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        scenarios = _matrix().expand()
        with store.writer("0of1") as out:
            out.append(make_record(scenarios[0], {"m": 1.0}, 0.1))
        with store.writer("0of1") as out:
            out.append(make_record(scenarios[1], {"m": 2.0}, 0.1))
        assert len(store.load_records()) == 2
