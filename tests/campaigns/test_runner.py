"""Campaign runner semantics: resume, sharding, limits, reports.

These tests use the microsecond-scale ``camp-fast`` experiment so
runner logic is exercised without simulation cost; the determinism
wall over the real ``cell`` experiment lives in
``test_determinism.py``.
"""

import json
import os

import pytest

from repro.campaigns import (CampaignRunner, CampaignStore,
                             get_campaign)
from repro.campaigns.matrix import Axis, CampaignMatrix
from repro.campaigns.runner import CampaignStatus, parse_shard


def _matrix(replicates=2):
    return CampaignMatrix(
        name="rt", experiment="camp-fast",
        axes=(Axis("x", (1, 2, 3)), Axis("y", (0.0, 0.5))),
        replicates=replicates, seed=11)


class TestParseShard:
    def test_parses(self):
        assert parse_shard("0/1") == (0, 1)
        assert parse_shard("2/8") == (2, 8)
        assert parse_shard("0") == (0, 1)

    def test_rejects_bad_specs(self):
        for bad in ("x/2", "2/x", "-1/2", "2/2", "0/0", "3"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_rejects_malformed_separators(self):
        for bad in ("", "/", "1/", "/2", "1/2/3", " "):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_tolerates_whitespace_around_numbers(self):
        assert parse_shard("1 / 2") == (1, 2)   # int() strips spaces


class TestCampaignStatus:
    def test_pending_and_done_arithmetic(self, tmp_path):
        status = CampaignStatus(name="s", digest="d", total=8,
                                completed=3, directory=str(tmp_path))
        assert status.pending == 5
        assert not status.done and not status.failed
        full = CampaignStatus(name="s", digest="d", total=8,
                              completed=8, directory=str(tmp_path))
        assert full.pending == 0 and full.done and not full.failed

    def test_quarantined_counts_as_failed_until_completed(
            self, tmp_path):
        stuck = CampaignStatus(name="s", digest="d", total=8,
                               completed=6, directory=str(tmp_path),
                               quarantined=2)
        assert stuck.pending == 2 and stuck.failed and not stuck.done


class TestRunnerValidation:
    def test_rejects_bad_supervision_parameters(self):
        with pytest.raises(ValueError, match="timeout_s"):
            CampaignRunner(timeout_s=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            CampaignRunner(max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff_s"):
            CampaignRunner(retry_backoff_s=-0.1)

    def test_timeout_alone_forces_supervised_pool(self):
        assert not CampaignRunner()._pooled
        assert CampaignRunner(jobs=2)._pooled
        assert CampaignRunner(timeout_s=10.0)._pooled


class TestRunAndResume:
    def test_full_run_checkpoints_everything(self, tmp_path):
        runner = CampaignRunner(cache_dir=str(tmp_path))
        status = runner.run(_matrix())
        assert status.done
        assert status.completed == status.total == 12
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        assert len(store.load_records()) == 12

    def test_limit_then_resume(self, tmp_path):
        runner = CampaignRunner(cache_dir=str(tmp_path))
        partial = runner.run(_matrix(), limit=5)
        assert partial.completed == 5
        assert not partial.done
        resumed = runner.run(_matrix())
        assert resumed.done

    def test_resume_skips_completed_scenarios(self, tmp_path):
        lines = []
        runner = CampaignRunner(cache_dir=str(tmp_path),
                                progress=lines.append)
        runner.run(_matrix())
        lines.clear()
        status = runner.run(_matrix())
        assert status.done
        assert any("0 to run" in line for line in lines)

    def test_status_without_running(self, tmp_path):
        status = CampaignRunner(
            cache_dir=str(tmp_path)).status(_matrix())
        assert status.total == 12
        assert status.completed == 0
        assert status.pending == 12

    def test_status_ignores_stale_records(self, tmp_path):
        """Scenario ids can go stale (experiment defaults or the
        calibration fingerprint change) without the matrix digest
        moving; status must count only records matching the current
        expansion."""
        from repro.campaigns.checkpoint import make_record
        runner = CampaignRunner(cache_dir=str(tmp_path))
        runner.run(_matrix(), limit=3)
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        stale = _matrix().expand()[5]
        stale = type(stale)(index=stale.index,
                            scenario_id="feedfacefeedface",
                            experiment=stale.experiment,
                            module=stale.module, params=stale.params,
                            seed=stale.seed)
        with store.writer("stale") as out:
            out.append(make_record(stale, {"value": 1.0}, 0.1))
        status = runner.status(_matrix())
        assert status.completed == 3
        resumed = runner.run(_matrix())
        assert resumed.completed == resumed.total == 12


class TestSharding:
    def test_shards_partition_the_matrix(self, tmp_path):
        matrix = _matrix()
        for index in range(3):
            CampaignRunner(cache_dir=str(tmp_path),
                           shard=(index, 3)).run(matrix)
        store = CampaignStore(matrix, cache_dir=str(tmp_path))
        records = store.load_records()
        assert len(records) == 12
        indices = sorted(r["index"] for r in records.values())
        assert indices == list(range(12))

    def test_one_shard_owns_only_its_indices(self, tmp_path):
        matrix = _matrix()
        CampaignRunner(cache_dir=str(tmp_path),
                       shard=(1, 3)).run(matrix)
        store = CampaignStore(matrix, cache_dir=str(tmp_path))
        indices = {r["index"] for r in store.load_records().values()}
        assert indices == {i for i in range(12) if i % 3 == 1}

    def test_invalid_shard_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignRunner(cache_dir=str(tmp_path), shard=(3, 3))


class TestReport:
    def test_rows_follow_canonical_order(self, tmp_path):
        runner = CampaignRunner(cache_dir=str(tmp_path))
        runner.run(_matrix())
        summary = runner.report(_matrix())
        assert summary["completed"] == 12
        assert [r["index"] for r in summary["rows"]] == list(range(12))
        assert summary["varied"] == ["replicate", "x", "y"]
        for row in summary["rows"]:
            assert {"x", "y", "replicate", "value",
                    "seed_echo"} <= set(row)

    def test_partial_report_covers_completed_only(self, tmp_path):
        runner = CampaignRunner(cache_dir=str(tmp_path))
        runner.run(_matrix(), limit=4)
        summary = runner.report(_matrix())
        assert summary["completed"] == 4
        assert summary["total_scenarios"] == 12

    def test_group_by_unknown_parameter_rejected(self, tmp_path):
        runner = CampaignRunner(cache_dir=str(tmp_path))
        runner.run(_matrix(), limit=2)
        with pytest.raises(ValueError, match="protocol"):
            runner.report(_matrix(), group_by=["protocol"])

    def test_grouped_means(self, tmp_path):
        runner = CampaignRunner(cache_dir=str(tmp_path))
        runner.run(_matrix())
        summary = runner.report(_matrix(), group_by=["x"])
        groups = summary["groups"]
        assert [g["x"] for g in groups] == [1, 2, 3]
        assert all(g["n"] == 4 for g in groups)

    def test_digest_metrics_kept_out_of_means(self, tmp_path):
        """Identity hashes stay in per-scenario rows but never enter
        aggregates or grouped means."""
        matrix = get_campaign("smoke-tiny")
        runner = CampaignRunner(cache_dir=str(tmp_path))
        runner.run(matrix)
        summary = runner.report(matrix, group_by=["protocol"])
        assert "frame_log_digest" not in summary["metrics"]
        assert "frame_log_digest" not in summary["aggregates"]
        assert all("frame_log_digest" not in g
                   for g in summary["groups"])
        assert all("frame_log_digest" in r for r in summary["rows"])

    def test_summary_written_to_store(self, tmp_path):
        runner = CampaignRunner(cache_dir=str(tmp_path))
        runner.run(_matrix())
        runner.report(_matrix())
        store = CampaignStore(_matrix(), cache_dir=str(tmp_path))
        with open(store.summary_path) as fh:
            assert json.load(fh)["completed"] == 12

    def test_seed_fans_affect_metrics(self, tmp_path):
        """Replicates differ only in derived seed — and still produce
        different metrics, proving the seed actually lands."""
        runner = CampaignRunner(cache_dir=str(tmp_path))
        runner.run(_matrix())
        summary = runner.report(_matrix())
        by_cell = {}
        for row in summary["rows"]:
            by_cell.setdefault((row["x"], row["y"]),
                               []).append(row["seed_echo"])
        for echoes in by_cell.values():
            assert len(set(echoes)) == len(echoes)


class TestStockSmokeCampaign:
    def test_smoke_tiny_runs_and_reports(self, tmp_path):
        matrix = get_campaign("smoke-tiny")
        runner = CampaignRunner(cache_dir=str(tmp_path))
        status = runner.run(matrix)
        assert status.done and status.total == 8
        summary = runner.report(matrix, group_by=["protocol"])
        assert {g["protocol"] for g in summary["groups"]} == \
            {"softrate", "rraa"}
        assert all(g["mbps"] is not None for g in summary["groups"])
