"""Determinism wall for the mesh campaign family.

The mesh experiment runs a different simulator stack (geometry-driven
channel, per-hop adapters, roaming scans) than the single-cell
experiments the campaign engine was built around, so it gets its own
serial == pooled digest check: every scheduled scan, handoff and
per-link fading draw must be a pure function of the scenario params.
"""

import math

import pytest

from repro.campaigns import CampaignRunner, CampaignStore
from repro.campaigns.matrix import Axis, CampaignMatrix
from repro.campaigns.stock import get_campaign

#: Four tiny mesh cells: both a static and a roaming-with-shadowing
#: column so handoff scheduling is inside the determinism wall.
MATRIX = CampaignMatrix(
    name="mesh-det", experiment="mesh",
    axes=(Axis("protocol", ("softrate", "rraa")),
          Axis("speed_mps", (0.0, 30.0))),
    base={"n_relays": 2, "duration": 0.03,
          "shadowing_sigma_db": 4.0, "phy_backend": "surrogate"},
    seed=41)


def _metrics_by_id(cache_dir):
    store = CampaignStore(MATRIX, cache_dir=str(cache_dir))
    return {sid: record["metrics"]
            for sid, record in store.load_records().items()}


def _norm(metrics):
    return {k: None if isinstance(v, float) and math.isnan(v) else v
            for k, v in metrics.items()}


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    cache = tmp_path_factory.mktemp("mesh-serial")
    runner = CampaignRunner(jobs=1, cache_dir=str(cache))
    assert runner.run(MATRIX).done
    return cache


def test_pool_matches_serial(serial_run, tmp_path):
    runner = CampaignRunner(jobs=2, cache_dir=str(tmp_path))
    assert runner.run(MATRIX).done
    serial = _metrics_by_id(serial_run)
    pooled = _metrics_by_id(tmp_path)
    assert set(serial) == set(pooled)
    for sid in serial:
        assert _norm(serial[sid]) == _norm(pooled[sid]), \
            f"scenario {sid} diverged"


def test_digests_vary_across_scenarios(serial_run):
    """Distinct cells really simulate distinct worlds."""
    digests = [m["frame_log_digest"]
               for m in _metrics_by_id(serial_run).values()]
    assert len(set(digests)) == len(digests)


def test_stock_mesh_matrices_expand():
    assert len(get_campaign("mesh-smoke").expand()) == 8
    matrix = get_campaign("mesh-matrix")
    scenarios = matrix.expand()
    assert len(scenarios) == 4 * 3 * 3 * 3 * 3
    params = scenarios[0].params
    assert params["protocol"] in ("softrate", "samplerate", "rraa",
                                  "snr-untrained")
    assert {"n_relays", "shadowing_sigma_db",
            "speed_mps"} <= set(params)
