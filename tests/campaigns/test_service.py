"""Service-mode wall: protocol, durable queue, chaos, kill-resume.

The in-thread tests drive a real :class:`CampaignService` (asyncio
server on an ephemeral localhost port) through the documented JSON
protocol.  The chaos wall extends ``test_chaos.py`` to service mode:
every fault class is injected into a *served* submission, the
campaign is resubmitted fault-free, and the committed summary must
be byte-identical to the batch runner's fault-free reference.  The
subprocess test is the PR's acceptance gate: a served campaign
SIGKILLed mid-run, recovered by a fresh server, ends byte-identical
to ``repro campaign run``.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager

import pytest

from repro.campaigns import (CampaignRunner, CampaignStore,
                             get_campaign, register_campaign)
from repro.campaigns.faults import FAULT_KINDS
from repro.campaigns.matrix import Axis, CampaignMatrix
from repro.campaigns.service import (CampaignService, ServiceError,
                                     Submission, SubmissionQueue,
                                     TERMINAL_STATES, read_endpoint,
                                     request, state_exit_code,
                                     wait_for_submission)

_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

# Served submissions resolve campaigns from the stock registry, so
# the fast test campaigns register there (idempotent by digest).
MINI = register_campaign(CampaignMatrix(
    name="svc-mini", experiment="camp-fast",
    axes=(Axis("x", (1, 2, 3)),), seed=11,
    description="3-scenario matrix for service-mode tests"))
CHAOS = register_campaign(CampaignMatrix(
    name="svc-chaos", experiment="camp-fast",
    axes=(Axis("x", (1, 2, 3)), Axis("y", (0.5, 1.5))), seed=12,
    description="6-scenario matrix for the service chaos wall"))


@contextmanager
def serve_in_thread(cache_dir, **kw):
    """A live server on an ephemeral port, shut down on exit."""
    kw.setdefault("retry_backoff_s", 0.001)
    service = CampaignService(cache_dir=str(cache_dir), port=0, **kw)
    thread = threading.Thread(target=service.serve, daemon=True)
    thread.start()
    deadline = time.time() + 30.0
    while not os.path.exists(service.endpoint_path):
        assert thread.is_alive(), "server thread died during startup"
        assert time.time() < deadline, "server never bound"
        time.sleep(0.01)
    try:
        yield service
    finally:
        try:
            request(str(cache_dir), {"op": "shutdown"})
        except ServiceError:
            pass                        # already stopping or gone
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "server failed to stop"


def _summary_bytes(matrix, cache_dir):
    store = CampaignStore(matrix, cache_dir=str(cache_dir))
    with open(store.summary_path, "rb") as fh:
        return fh.read()


class TestProtocol:
    def test_ping_status_results_and_errors(self, tmp_path):
        with serve_in_thread(tmp_path):
            pong = request(str(tmp_path), {"op": "ping"})
            assert pong["ok"] and pong["pid"] == os.getpid()
            assert read_endpoint(str(tmp_path)) is not None

            bad = request(str(tmp_path), {"op": "frobnicate"})
            assert not bad["ok"] and "unknown op" in bad["error"]

            missing = request(str(tmp_path), {"op": "status",
                                              "id": "sub-99999"})
            assert not missing["ok"]
            assert "no such submission" in missing["error"]

            unknown = request(str(tmp_path), {"op": "submit",
                                              "campaign": "nope"})
            assert not unknown["ok"] and unknown["unknown_campaign"]
            unknown = request(str(tmp_path), {"op": "results",
                                              "campaign": "nope"})
            assert not unknown["ok"] and unknown["unknown_campaign"]

            fresh = request(str(tmp_path), {"op": "results",
                                            "campaign": "svc-mini"})
            assert fresh["ok"] and fresh["state"] == "not-started"
            assert fresh["completed"] == 0 and fresh["total"] == 3

            bad_opts = request(str(tmp_path), {
                "op": "submit", "campaign": "svc-mini",
                "options": "fast please"})
            assert not bad_opts["ok"]
            assert "options" in bad_opts["error"]

    def test_unparseable_line_is_a_bad_request(self, tmp_path):
        import socket as socketlib
        with serve_in_thread(tmp_path):
            endpoint = read_endpoint(str(tmp_path))
            with socketlib.create_connection(endpoint,
                                             timeout=10) as conn:
                conn.sendall(b"this is not json\n")
                data = b""
                while not data.endswith(b"\n"):
                    data += conn.recv(65536)
            response = json.loads(data)
            assert not response["ok"]
            assert "bad request" in response["error"]

    def test_request_without_server_raises_unavailable(self, tmp_path):
        from repro.campaigns.service import ServiceUnavailable
        with pytest.raises(ServiceUnavailable, match="no campaign"):
            request(str(tmp_path), {"op": "ping"})
        assert read_endpoint(str(tmp_path)) is None

    def test_exit_code_contract(self):
        assert [state_exit_code(s) for s in TERMINAL_STATES] \
            == [0, 3, 4, 1]
        assert state_exit_code("definitely-not-a-state") == 1


class TestSubmissionLifecycle:
    def test_submit_runs_to_complete_with_results(self, tmp_path):
        with serve_in_thread(tmp_path, store="columnar",
                             chunk_records=2) as service:
            accepted = request(str(tmp_path), {
                "op": "submit", "campaign": "svc-mini"})
            assert accepted["ok"] and accepted["state"] == "queued"
            states = []
            final = wait_for_submission(
                str(tmp_path), accepted["id"], poll_s=0.02,
                timeout=120.0, emit=states.append)
            assert final["state"] == "complete"
            assert final["completed"] == 3 and final["total"] == 3

            results = request(str(tmp_path), {"op": "results",
                                              "campaign": "svc-mini"})
            assert results["ok"] and results["state"] == "complete"
            assert results["summary"]["completed"] == 3

            # status by campaign name resolves the latest submission
            by_name = request(str(tmp_path), {
                "op": "status", "campaign": "svc-mini"})
            assert by_name["ok"] and by_name["id"] == accepted["id"]

            # the durable log holds the full lifecycle
            events = [json.loads(line) for line in
                      open(service.queue_path)]
            kinds = [(e["event"], e.get("state")) for e in events]
            assert kinds == [("submit", None), ("state", "running"),
                             ("state", "complete")]

    def test_resubmission_resumes_from_checkpoints(self, tmp_path):
        with serve_in_thread(tmp_path) as service:
            first = request(str(tmp_path), {
                "op": "submit", "campaign": "svc-mini",
                "options": {"limit": 1}})
            partial = wait_for_submission(str(tmp_path), first["id"],
                                          poll_s=0.02, timeout=120.0)
            assert partial["state"] == "partial"
            assert partial["completed"] == 1

            lines = []
            service.emit = lines.append
            second = request(str(tmp_path), {
                "op": "submit", "campaign": "svc-mini"})
            final = wait_for_submission(str(tmp_path), second["id"],
                                        poll_s=0.02, timeout=120.0)
            assert final["state"] == "complete"
            assert any("2 to run" in line for line in lines), lines
        assert _summary_bytes(MINI, tmp_path)

    def test_error_submission_does_not_kill_the_service(self,
                                                        tmp_path):
        with serve_in_thread(tmp_path):
            broken = request(str(tmp_path), {
                "op": "submit", "campaign": "svc-mini",
                "options": {"store": "parquet"}})    # unknown backend
            final = wait_for_submission(str(tmp_path), broken["id"],
                                        poll_s=0.02, timeout=120.0)
            assert final["state"] == "error"
            assert "parquet" in final["error"]
            # the worker loop survived: the next submission runs
            ok = request(str(tmp_path), {"op": "submit",
                                         "campaign": "svc-mini"})
            final = wait_for_submission(str(tmp_path), ok["id"],
                                        poll_s=0.02, timeout=120.0)
            assert final["state"] == "complete"


class TestDurableQueue:
    def test_replay_rebuilds_lifecycle(self, tmp_path):
        queue = SubmissionQueue(str(tmp_path / "queue.jsonl"))
        assert queue.replay() == {}
        queue.append({"event": "submit", "id": "sub-00001",
                      "campaign": "svc-mini", "options": {"jobs": 2}})
        queue.append({"event": "state", "id": "sub-00001",
                      "state": "running"})
        queue.append({"event": "state", "id": "sub-00001",
                      "state": "complete", "completed": 3,
                      "total": 3})
        subs = queue.replay()
        assert list(subs) == ["sub-00001"]
        sub = subs["sub-00001"]
        assert sub.state == "complete" and sub.completed == 3
        assert sub.options == {"jobs": 2}

    def test_replay_skips_damaged_and_orphan_lines(self, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        queue = SubmissionQueue(path)
        queue.append({"event": "submit", "id": "sub-00001",
                      "campaign": "svc-mini"})
        with open(path, "a") as fh:
            fh.write("@@garbage@@\n")
            fh.write('[1, 2]\n')
            fh.write(json.dumps({"event": "state", "id": "sub-00099",
                                 "state": "complete"}) + "\n")
            fh.write('{"event": "state", "id": "sub-00001", "sta')
        subs = queue.replay()
        assert list(subs) == ["sub-00001"]
        assert subs["sub-00001"].state == "queued"

    def test_restart_requeues_unfinished_submission(self, tmp_path):
        # A previous server accepted work and died mid-run: the log
        # has no terminal state.  A fresh server must requeue and
        # finish it without a new submit.
        queue = SubmissionQueue(os.path.join(str(tmp_path), "service",
                                             "queue.jsonl"))
        queue.append({"event": "submit", "id": "sub-00001",
                      "campaign": "svc-mini", "options": {}})
        queue.append({"event": "state", "id": "sub-00001",
                      "state": "running"})
        lines = []
        with serve_in_thread(tmp_path, emit=lines.append):
            final = wait_for_submission(str(tmp_path), "sub-00001",
                                        poll_s=0.02, timeout=120.0)
            assert final["state"] == "complete"
        assert any("recovered unfinished submission sub-00001"
                   in line for line in lines)
        assert json.loads(
            _summary_bytes(MINI, tmp_path))["completed"] == 3

    def test_submission_payload_roundtrip(self):
        sub = Submission(id="sub-00001", campaign="svc-mini",
                         options={"jobs": 2}, state="partial",
                         completed=1, total=3)
        payload = sub.to_payload()
        assert payload["id"] == "sub-00001"
        assert payload["state"] == "partial"
        assert payload["options"] == {"jobs": 2}


class TestEmptyStatusRegression:
    def test_status_on_never_started_store_is_clean(self, tmp_path):
        """Satellite fix: status on an empty store reports cleanly
        and creates nothing on disk."""
        runner = CampaignRunner(cache_dir=str(tmp_path / "cache"))
        status = runner.status(MINI)
        assert not status.started
        assert status.completed == 0 and status.total == 3
        assert not status.done and not status.failed
        assert not os.path.exists(str(tmp_path / "cache"))


SUPERVISED = dict(jobs=2, timeout_s=10.0, max_retries=1,
                  retry_backoff_s=0.001)


class TestServiceChaosWall:
    """Satellite: the batch chaos wall, through a live server."""

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("reference")
        runner = CampaignRunner(cache_dir=str(cache))
        assert runner.run(CHAOS).done
        runner.report(CHAOS)
        return _summary_bytes(CHAOS, cache)

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_fault_then_resubmit_is_byte_identical(self, tmp_path,
                                                   kind, reference):
        options = dict(SUPERVISED, fault=kind, fault_seed=3,
                       hang_s=60.0)
        if kind == "hang":
            options["timeout_s"] = 1.0      # watchdog must fire
        with serve_in_thread(tmp_path, store="columnar",
                             chunk_records=2, **SUPERVISED):
            faulted = request(str(tmp_path), {
                "op": "submit", "campaign": "svc-chaos",
                "options": options})
            assert faulted["ok"], faulted
            first = wait_for_submission(str(tmp_path), faulted["id"],
                                        poll_s=0.02, timeout=300.0)
            assert first["state"] in TERMINAL_STATES
            assert first["state"] != "error", first

            resumed = request(str(tmp_path), {
                "op": "submit", "campaign": "svc-chaos",
                "options": dict(SUPERVISED)})
            final = wait_for_submission(str(tmp_path), resumed["id"],
                                        poll_s=0.02, timeout=300.0)
            assert final["state"] == "complete", final
            assert final["quarantined"] == 0
        assert _summary_bytes(CHAOS, tmp_path) == reference, \
            f"summary diverged after served {kind!r} fault"


def _spawn_server(cache_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "serve",
         "--cache-dir", str(cache_dir), "--chunk-records", "2",
         *extra],
        cwd=_ROOT, env=env, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)


def _wait_for_endpoint(cache_dir, proc):
    deadline = time.time() + 60.0
    path = os.path.join(str(cache_dir), "service", "endpoint.json")
    while time.time() < deadline:
        assert proc.poll() is None, "server process died"
        if os.path.exists(path):
            endpoint = read_endpoint(str(cache_dir))
            if endpoint is not None and \
                    endpoint[1] != 0 and _pid_of(cache_dir) == proc.pid:
                return
        time.sleep(0.02)
    raise AssertionError("server never advertised an endpoint")


def _pid_of(cache_dir):
    path = os.path.join(str(cache_dir), "service", "endpoint.json")
    try:
        with open(path) as fh:
            return json.load(fh).get("pid")
    except (OSError, ValueError):
        return None


class TestServedKillResume:
    def test_sigkill_mid_run_then_recovery_is_byte_identical(
            self, tmp_path):
        """The PR acceptance gate: serve + submit, SIGKILL the server
        mid-campaign, restart it (recovery requeues the unfinished
        submission), and the final summary is byte-identical to
        ``repro campaign run`` in a pristine cache."""
        matrix = get_campaign("smoke-tiny")
        served = tmp_path / "served"
        store = CampaignStore(matrix, cache_dir=str(served))

        server = _spawn_server(served)
        try:
            _wait_for_endpoint(served, server)
            accepted = request(str(served), {
                "op": "submit", "campaign": "smoke-tiny"})
            assert accepted["ok"], accepted

            deadline = time.time() + 120.0
            while time.time() < deadline:
                if store.completed_ids():
                    server.send_signal(signal.SIGKILL)
                    server.wait(timeout=30)
                    break
                status = request(str(served), {
                    "op": "status", "id": accepted["id"]})
                if status.get("state") in TERMINAL_STATES:
                    break               # finished before the kill
                time.sleep(0.01)
            else:
                raise AssertionError("campaign made no progress")
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=30)

        # The killed server left a stale endpoint and a queue with no
        # terminal state; a fresh server recovers the submission.
        server = _spawn_server(served)
        try:
            _wait_for_endpoint(served, server)
            final = wait_for_submission(str(served), accepted["id"],
                                        poll_s=0.05, timeout=300.0)
            assert final["state"] == "complete", final
        finally:
            if server.poll() is None:
                server.send_signal(signal.SIGTERM)
                try:
                    server.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    server.kill()
                    server.wait(timeout=30)

        pristine = tmp_path / "pristine"
        reference = CampaignRunner(cache_dir=str(pristine))
        assert reference.run(matrix).done
        reference.report(matrix)
        assert _summary_bytes(matrix, served) \
            == _summary_bytes(matrix, pristine), \
            "served kill-and-recover summary diverged from batch run"
        assert json.loads(
            _summary_bytes(matrix, served))["completed"] == 8
