"""Kill-and-resume integration: checkpoints survive a SIGKILL.

A campaign run in a subprocess is killed mid-run (no cleanup, no
atexit — the hardest interruption), resumed to completion, and its
aggregate summary is asserted byte-identical to an uninterrupted run
in a pristine cache directory.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro.campaigns import CampaignRunner, CampaignStore, get_campaign

_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def _spawn_campaign(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run",
         "smoke-tiny", "--cache-dir", str(cache_dir)],
        cwd=_ROOT, env=env, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)


def test_sigkill_then_resume_is_byte_identical(tmp_path):
    matrix = get_campaign("smoke-tiny")
    interrupted = tmp_path / "interrupted"
    pristine = tmp_path / "pristine"

    # Start the campaign, wait for >= 1 checkpointed scenario, then
    # SIGKILL the process with work still pending.
    store = CampaignStore(matrix, cache_dir=str(interrupted))
    proc = _spawn_campaign(interrupted)
    try:
        deadline = time.time() + 120.0
        while time.time() < deadline:
            if proc.poll() is not None:
                break                       # finished before the kill
            if store.completed_ids():
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
                break
            time.sleep(0.02)
        else:
            raise AssertionError("campaign made no progress in 120 s")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    survived = len(store.completed_ids())
    assert survived >= 1, "no checkpoint survived the kill"

    # Resume in-process: only the missing scenarios may run.
    progress = []
    runner = CampaignRunner(cache_dir=str(interrupted),
                            progress=progress.append)
    status = runner.run(matrix)
    assert status.done
    header = progress[0]
    assert f"{8 - survived} to run" in header, \
        f"resume recomputed checkpointed work: {header!r}"
    runner.report(matrix)

    # Uninterrupted reference run in a pristine cache dir.
    reference = CampaignRunner(cache_dir=str(pristine))
    assert reference.run(matrix).done
    reference.report(matrix)

    resumed_store = CampaignStore(matrix, cache_dir=str(interrupted))
    pristine_store = CampaignStore(matrix, cache_dir=str(pristine))
    with open(resumed_store.summary_path, "rb") as fh:
        resumed_bytes = fh.read()
    with open(pristine_store.summary_path, "rb") as fh:
        pristine_bytes = fh.read()
    assert resumed_bytes == pristine_bytes, \
        "resumed aggregate differs from uninterrupted run"
    # Sanity: the summary is complete, not trivially empty.
    summary = json.loads(resumed_bytes)
    assert summary["completed"] == 8
